//! End-to-end tests of the distributed entailment-cache tier: a
//! cache server on a loopback socket, write-through engine clients,
//! degradation when the server dies, and anti-entropy sync. The tier
//! is an accelerator — every test also asserts the engines' formulas
//! stay identical to a local-only run.

use std::time::Duration;

use sling::{Engine, RemoteCache, RemoteLookup, RemoteQuery, Report};
use sling_serve::CacheServer;
use sling_suite::fixtures::ListCorpus;

fn corpus_engine(corpus: &ListCorpus) -> sling::EngineBuilder {
    Engine::builder()
        .program_source(&corpus.program())
        .expect("corpus program parses")
        .predicates_source(&corpus.predicates())
        .expect("corpus predicates parse")
        .parallelism(1)
}

/// Everything formula-relevant about a report (timing and cache deltas
/// legitimately differ between remote-backed and local-only runs).
fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{} runs={} traces={} declared={:?}\n",
        report.target, report.metrics.runs, report.metrics.traces, report.declared_locations
    );
    for loc in &report.locations {
        let _ = writeln!(
            out,
            "  {} models={} snaps={} tainted={}",
            loc.location, loc.models_used, loc.snapshots_seen, loc.tainted
        );
        for inv in &loc.invariants {
            let _ = writeln!(
                out,
                "    [{}|{}|{:?}] {} :: residues={:?} activations={:?}",
                inv.spurious, inv.grade, inv.stats, inv.formula, inv.residues, inv.activations
            );
        }
    }
    out
}

fn fingerprints(reports: &[Report]) -> Vec<String> {
    reports.iter().map(fingerprint).collect()
}

#[test]
fn second_engine_answers_from_the_cache_tier_with_identical_formulas() {
    let corpus = ListCorpus::new("CacheTierNode");
    let batch = corpus.batch(1);

    // Local-only reference run: the formulas every remote-backed run
    // must reproduce exactly.
    let reference = corpus_engine(&corpus)
        .build()
        .expect("engine builds")
        .analyze_all(&batch)
        .expect("local-only batch runs");

    let server = CacheServer::bind("127.0.0.1:0").expect("cache server binds");
    let addr = server.local_addr().to_string();

    // Engine A runs cold against an empty server: every remote lookup
    // misses, every fresh verdict rides the write-behind queue up.
    let engine_a = corpus_engine(&corpus)
        .remote_cache(&addr)
        .build()
        .expect("engine A builds");
    let batch_a = engine_a.analyze_all(&batch).expect("engine A batch runs");
    assert_eq!(
        fingerprints(&batch_a.reports),
        fingerprints(&reference.reports)
    );
    assert!(
        batch_a.cache.remote_misses > 0,
        "a cold engine against an empty server must record remote misses: {:?}",
        batch_a.cache
    );

    let client_a = engine_a.remote_cache().expect("engine A has a remote tier");
    assert!(
        client_a.flush(Duration::from_secs(10)),
        "write-behind queue must drain"
    );
    let stats = server.stats();
    assert!(stats.puts > 0, "server saw no puts: {stats:?}");
    assert!(stats.entries > 0, "server stored no entries: {stats:?}");
    assert_eq!(client_a.stats().dropped, 0, "{:?}", client_a.stats());

    // Engine B — fresh local cache, same predicate library — answers
    // part of its batch from A's published verdicts.
    let engine_b = corpus_engine(&corpus)
        .remote_cache(&addr)
        .build()
        .expect("engine B builds");
    let batch_b = engine_b.analyze_all(&batch).expect("engine B batch runs");
    assert_eq!(
        fingerprints(&batch_b.reports),
        fingerprints(&reference.reports)
    );
    assert!(
        batch_b.cache.remote_hits > 0,
        "the second engine must answer from the tier: {:?}",
        batch_b.cache
    );
    assert!(
        server.stats().hits > 0,
        "server-side hit counter must agree: {:?}",
        server.stats()
    );

    server.shutdown();
}

#[test]
fn dead_cache_server_degrades_to_local_only_and_reconnects_after_rebind() {
    let corpus = ListCorpus::new("CacheTierFaultNode");
    let batch = corpus.batch(1);

    let reference = corpus_engine(&corpus)
        .build()
        .expect("engine builds")
        .analyze_all(&batch)
        .expect("local-only batch runs");

    let server = CacheServer::bind("127.0.0.1:0").expect("cache server binds");
    let addr = server.local_addr().to_string();

    // Kill the server before the engine's first batch: every remote
    // lookup in the batch finds the tier dead.
    server.shutdown();

    let engine = corpus_engine(&corpus)
        .remote_cache(&addr)
        .build()
        .expect("engine builds against a dead server");
    let degraded_batch = engine
        .analyze_all(&batch)
        .expect("analysis completes with the tier down");
    assert_eq!(
        fingerprints(&degraded_batch.reports),
        fingerprints(&reference.reports),
        "a degraded tier must not change a single formula"
    );
    assert!(
        degraded_batch.cache.remote_degraded > 0,
        "degraded lookups must be counted: {:?}",
        degraded_batch.cache
    );
    assert_eq!(
        degraded_batch.cache.remote_hits, 0,
        "a dead server cannot serve hits: {:?}",
        degraded_batch.cache
    );
    let client = engine.remote_cache().expect("engine has a remote tier");
    assert!(client.degraded(), "fetch path must report the tier down");

    // Restart the tier on the same address, wait out the reconnect
    // backoff (capped at one second), and drive the fetch path
    // directly: the client must come back clean, no rebuild needed.
    let revived = CacheServer::bind(&addr).expect("same address rebinds after shutdown");
    std::thread::sleep(Duration::from_millis(1200));
    let lookup = client.fetch(&RemoteQuery {
        node_budget: 1,
        fuel_slack: 0,
        text: "probe-after-restart",
    });
    assert_eq!(
        lookup,
        RemoteLookup::Miss,
        "a revived empty server answers (miss), not Degraded"
    );
    assert!(
        !client.degraded(),
        "reconnect must clear the degraded state"
    );
    revived.shutdown();
}

#[test]
fn anti_entropy_sync_absorbs_a_peers_entries() {
    let corpus = ListCorpus::new("CacheTierSyncNode");
    let batch = corpus.batch(1);

    let reference = corpus_engine(&corpus)
        .build()
        .expect("engine builds")
        .analyze_all(&batch)
        .expect("local-only batch runs");

    let server = CacheServer::bind("127.0.0.1:0").expect("cache server binds");
    let addr = server.local_addr().to_string();

    // Engine A computes and publishes the corpus verdicts.
    let engine_a = corpus_engine(&corpus)
        .remote_cache(&addr)
        .build()
        .expect("engine A builds");
    engine_a.analyze_all(&batch).expect("engine A batch runs");
    assert!(engine_a
        .remote_cache()
        .expect("engine A has a remote tier")
        .flush(Duration::from_secs(10)));
    assert!(server.stats().entries > 0);

    // Engine B pulls them via anti-entropy *before* analyzing anything
    // — a long periodic interval keeps the background thread out of
    // the way so the explicit round is the only sync.
    let engine_b = corpus_engine(&corpus)
        .remote_cache(&addr)
        .remote_sync_interval(Duration::from_secs(3600))
        .build()
        .expect("engine B builds");
    let client_b = engine_b.remote_cache().expect("engine B has a remote tier");
    let absorbed = client_b.sync_now().expect("sync round reaches the server");
    assert!(absorbed > 0, "sync must absorb the peer's entries");

    // A second round above the advanced watermark is empty — the
    // cursor moved.
    assert_eq!(client_b.sync_now(), Some(0));

    // The synced entries answer engine B's batch as warm local hits,
    // with formulas identical to the local-only run.
    let batch_b = engine_b.analyze_all(&batch).expect("engine B batch runs");
    assert_eq!(
        fingerprints(&batch_b.reports),
        fingerprints(&reference.reports)
    );
    assert!(
        batch_b.cache.warm_hits > 0,
        "synced entries must answer as warm hits: {:?}",
        batch_b.cache
    );

    server.shutdown();
}
