//! Intra-request parallelism: a single `analyze` call fans its
//! per-location inference out over the engine's worker pool, produces
//! output formula-for-formula identical to a sequential run, and reports
//! the worker count it actually used in `RunMetrics::workers`.

use sling::{AnalysisRequest, Engine, InputSpec, ListLayout, Report, ValueSpec};
use sling_logic::Symbol;

/// One function, many locations: two labels, a loop head, an entry and
/// two exits — six inference sites from a single request.
const PROGRAM: &str = "
    struct INode { next: INode*; data: int; }
    fn span(x: INode*, y: INode*) -> INode* {
        @L1;
        var c: INode* = x;
        while @walk (c != null) {
            c = c->next;
        }
        @L2;
        if (y == null) { return x; }
        return y;
    }";

const PREDS: &str = "
    pred sll(x: INode*) := emp & x == nil
       | exists u, d. x -> INode{next: u, data: d} * sll(u);
    pred lseg(x: INode*, y: INode*) := emp & x == y
       | exists u, d. x -> INode{next: u, data: d} * lseg(u, y);";

fn layout() -> ListLayout {
    ListLayout {
        ty: Symbol::intern("INode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    }
}

fn engine(parallelism: usize) -> Engine {
    Engine::builder()
        .program_source(PROGRAM)
        .expect("program parses")
        .predicates_source(PREDS)
        .expect("predicates parse")
        .parallelism(parallelism)
        .build()
        .expect("program checks")
}

fn request() -> AnalysisRequest {
    let two = |seed: u64, n: usize, m: usize| {
        InputSpec::seeded(seed)
            .arg(ValueSpec::sll(layout(), n))
            .arg(ValueSpec::sll(layout(), m))
    };
    AnalysisRequest::new("span").inputs([two(1, 0, 0), two(2, 3, 0), two(3, 0, 2), two(4, 4, 2)])
}

/// Everything observable about a report except timing and cache deltas
/// (which legitimately differ between sequential and parallel runs) —
/// and `workers`, which is exactly what must differ.
fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{} runs={} traces={} faults={}\n",
        report.target, report.metrics.runs, report.metrics.traces, report.metrics.faulted_runs
    );
    for loc in &report.locations {
        let _ = writeln!(
            out,
            "  {} models={} snaps={} tainted={}",
            loc.location, loc.models_used, loc.snapshots_seen, loc.tainted
        );
        for inv in &loc.invariants {
            let _ = writeln!(out, "    [{}] {}", inv.spurious, inv.formula);
        }
    }
    out
}

#[test]
fn single_request_uses_multiple_workers_and_matches_sequential() {
    let request = request();
    let sequential = engine(1).analyze(&request).expect("target exists");
    let parallel = engine(4).analyze(&request).expect("target exists");

    assert!(
        sequential.locations.len() >= 4,
        "the span program must reach at least 4 locations, got {}",
        sequential.locations.len()
    );
    assert_eq!(sequential.metrics.workers, 1);
    assert!(
        parallel.metrics.workers >= 2,
        "a 4-way engine must fan a {}-location request out over multiple \
         workers, used {}",
        parallel.locations.len(),
        parallel.metrics.workers
    );

    assert_eq!(
        fingerprint(&sequential),
        fingerprint(&parallel),
        "intra-request parallelism must not change the inferred formulas"
    );
}

#[test]
fn workers_are_capped_by_reached_locations() {
    // A straight-line single-exit function reaches exactly two locations
    // (entry and exit); a 16-way engine must not claim more workers.
    let engine = Engine::builder()
        .program_source(
            "struct INode { next: INode*; data: int; } fn id(x: INode*) -> INode* { return x; }",
        )
        .expect("program parses")
        .predicates_source(PREDS)
        .expect("predicates parse")
        .parallelism(16)
        .build()
        .expect("program checks");
    let report = engine
        .analyze(
            &AnalysisRequest::new("id")
                .input(InputSpec::seeded(1).arg(ValueSpec::sll(layout(), 2))),
        )
        .expect("target exists");
    assert_eq!(report.locations.len(), 2);
    assert!(
        report.metrics.workers <= 2,
        "workers ({}) must be capped by reached locations (2)",
        report.metrics.workers
    );
}

#[test]
fn the_worker_budget_divides_between_batch_and_request_levels() {
    let request = request();
    let engine = engine(4);

    // A single-request batch cannot parallelize across requests, so the
    // whole budget moves inside the request...
    let solo = engine.analyze_all([&request]).expect("target exists");
    assert!(
        solo.reports[0].metrics.workers >= 2,
        "one-request batch should fan out per location: {:?}",
        solo.reports[0].metrics
    );

    // ...a half-full batch splits it (4 workers / 2 requests = 2 each,
    // never more than the budget in total)...
    let pair = vec![request.clone(), request.clone()];
    let batch = engine.analyze_all(&pair).expect("targets exist");
    for report in &batch.reports {
        assert_eq!(
            report.metrics.workers, 2,
            "2 requests on a 4-way engine get 2 inner workers each: {:?}",
            report.metrics
        );
    }

    // ...and a saturated batch runs each request's locations
    // sequentially (no oversubscription).
    let requests = vec![request.clone(), request.clone(), request.clone(), request];
    let batch = engine.analyze_all(&requests).expect("targets exist");
    for report in &batch.reports {
        assert_eq!(
            report.metrics.workers, 1,
            "a saturated batch must not nest location fan-out"
        );
    }
}
