//! Intra-request parallelism: a single `analyze` call fans its
//! per-location inference out over the engine's worker pool, produces
//! output formula-for-formula identical to a sequential run, and reports
//! the worker count it actually used in `RunMetrics::workers`.

use sling::{AnalysisRequest, Engine, InputSpec, ListLayout, Report, ValueSpec};
use sling_logic::Symbol;

/// One function, many locations: two labels, a loop head, an entry and
/// two exits — six inference sites from a single request.
const PROGRAM: &str = "
    struct INode { next: INode*; data: int; }
    fn span(x: INode*, y: INode*) -> INode* {
        @L1;
        var c: INode* = x;
        while @walk (c != null) {
            c = c->next;
        }
        @L2;
        if (y == null) { return x; }
        return y;
    }";

const PREDS: &str = "
    pred sll(x: INode*) := emp & x == nil
       | exists u, d. x -> INode{next: u, data: d} * sll(u);
    pred lseg(x: INode*, y: INode*) := emp & x == y
       | exists u, d. x -> INode{next: u, data: d} * lseg(u, y);";

fn layout() -> ListLayout {
    ListLayout {
        ty: Symbol::intern("INode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    }
}

fn engine(parallelism: usize) -> Engine {
    Engine::builder()
        .program_source(PROGRAM)
        .expect("program parses")
        .predicates_source(PREDS)
        .expect("predicates parse")
        .parallelism(parallelism)
        .build()
        .expect("program checks")
}

fn request() -> AnalysisRequest {
    let two = |seed: u64, n: usize, m: usize| {
        InputSpec::seeded(seed)
            .arg(ValueSpec::sll(layout(), n))
            .arg(ValueSpec::sll(layout(), m))
    };
    AnalysisRequest::new("span").inputs([two(1, 0, 0), two(2, 3, 0), two(3, 0, 2), two(4, 4, 2)])
}

/// Everything observable about a report except timing and cache deltas
/// (which legitimately differ between sequential and parallel runs) —
/// and `workers`, which is exactly what must differ.
fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{} runs={} traces={} faults={}\n",
        report.target, report.metrics.runs, report.metrics.traces, report.metrics.faulted_runs
    );
    for loc in &report.locations {
        let _ = writeln!(
            out,
            "  {} models={} snaps={} tainted={}",
            loc.location, loc.models_used, loc.snapshots_seen, loc.tainted
        );
        for inv in &loc.invariants {
            let _ = writeln!(out, "    [{}] {}", inv.spurious, inv.formula);
        }
    }
    out
}

#[test]
fn single_request_uses_multiple_workers_and_matches_sequential() {
    let request = request();
    let sequential = engine(1).analyze(&request).expect("target exists");
    let parallel = engine(4).analyze(&request).expect("target exists");

    assert!(
        sequential.locations.len() >= 4,
        "the span program must reach at least 4 locations, got {}",
        sequential.locations.len()
    );
    assert_eq!(sequential.metrics.workers, 1);
    assert!(
        parallel.metrics.workers >= 2,
        "a 4-way engine must fan a {}-location request out over multiple \
         workers, used {}",
        parallel.locations.len(),
        parallel.metrics.workers
    );

    assert_eq!(
        fingerprint(&sequential),
        fingerprint(&parallel),
        "intra-request parallelism must not change the inferred formulas"
    );
}

#[test]
fn workers_are_capped_by_reached_locations() {
    // A straight-line single-exit function reaches exactly two locations
    // (entry and exit); a 16-way engine must not claim more workers.
    let engine = Engine::builder()
        .program_source(
            "struct INode { next: INode*; data: int; } fn id(x: INode*) -> INode* { return x; }",
        )
        .expect("program parses")
        .predicates_source(PREDS)
        .expect("predicates parse")
        .parallelism(16)
        .build()
        .expect("program checks");
    let report = engine
        .analyze(
            &AnalysisRequest::new("id")
                .input(InputSpec::seeded(1).arg(ValueSpec::sll(layout(), 2))),
        )
        .expect("target exists");
    assert_eq!(report.locations.len(), 2);
    assert!(
        report.metrics.workers <= 2,
        "workers ({}) must be capped by reached locations (2)",
        report.metrics.workers
    );
}

#[test]
fn the_worker_budget_divides_between_batch_and_request_levels() {
    let request = request();
    let engine = engine(4);

    // A single-request batch cannot parallelize across requests, so the
    // whole budget moves inside the request...
    let solo = engine.analyze_all([&request]).expect("target exists");
    assert!(
        solo.reports[0].metrics.workers >= 2,
        "one-request batch should fan out per location: {:?}",
        solo.reports[0].metrics
    );

    // ...a half-full batch splits it (4 workers / 2 requests = 2 each,
    // never more than the budget in total)...
    let pair = vec![request.clone(), request.clone()];
    let batch = engine.analyze_all(&pair).expect("targets exist");
    for report in &batch.reports {
        assert_eq!(
            report.metrics.workers, 2,
            "2 requests on a 4-way engine get 2 inner workers each: {:?}",
            report.metrics
        );
    }

    // ...and a saturated batch runs each request's locations
    // sequentially (no oversubscription).
    let requests = vec![request.clone(), request.clone(), request.clone(), request];
    let batch = engine.analyze_all(&requests).expect("targets exist");
    for report in &batch.reports {
        assert_eq!(
            report.metrics.workers, 1,
            "a saturated batch must not nest location fan-out"
        );
    }
}

#[test]
fn uneven_splits_spend_the_whole_budget() {
    // 8 workers over 3 requests used to truncate to 2 inner workers
    // each (6 of 8 threads); the remainder must be distributed instead:
    // the first 8 % 3 = 2 requests get one extra inner worker, so the
    // per-request counts are exactly [3, 3, 2] and the total equals the
    // budget. The span program reaches 6 locations, so no request's
    // count is clamped below its share.
    let requests = vec![request(), request(), request()];
    let batch = engine(8).analyze_all(&requests).expect("targets exist");
    let workers: Vec<usize> = batch
        .reports
        .iter()
        .map(|report| report.metrics.workers)
        .collect();
    assert_eq!(
        workers,
        vec![3, 3, 2],
        "remainder goes to the first parallelism % requests requests"
    );
    assert_eq!(
        workers.iter().sum::<usize>(),
        8,
        "total thread usage must equal the budget"
    );

    // The uneven split must not change the analysis itself.
    let sequential = engine(1).analyze_all(&requests).expect("targets exist");
    for (s, p) in sequential.reports.iter().zip(&batch.reports) {
        assert_eq!(fingerprint(s), fingerprint(p));
    }

    // An indivisible budget with more requests than workers: 5 workers
    // over 7 requests run one request per worker with no headroom for
    // nesting — every request must stay sequential inside.
    let seven: Vec<_> = (0..7).map(|_| request()).collect();
    let batch = engine(5).analyze_all(&seven).expect("targets exist");
    for report in &batch.reports {
        assert_eq!(report.metrics.workers, 1);
    }
}
