//! Engine-level cache-lifecycle tests: a capacity-bounded engine never
//! exceeds its entry cap over a corpus run (evictions are observable
//! and answers stay correct), and sibling snapshots fold into a live
//! engine with `Engine::absorb_snapshot`.

use std::path::PathBuf;

use sling::{AnalysisRequest, Engine, Report};
use sling_checker::SHARD_COUNT;
use sling_suite::fixtures::ListCorpus;

fn engine_for(corpus: &ListCorpus) -> sling::EngineBuilder {
    Engine::builder()
        .program_source(&corpus.program())
        .expect("corpus program parses")
        .predicates_source(&corpus.predicates())
        .expect("corpus predicates parse")
}

fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{}\n", report.target);
    for loc in &report.locations {
        let _ = writeln!(out, "  {}", loc.location);
        for inv in &loc.invariants {
            let _ = writeln!(out, "    [{}] {}", inv.spurious, inv.formula);
        }
    }
    out
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sling-lifecycle-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn capacity_bounded_corpus_run_never_exceeds_the_cap() {
    // One corpus round creates a few hundred cache entries unbounded;
    // a 64-entry cap forces steady-state eviction. The cap is enforced
    // per shard, so the honest bound is ceil(cap / shards) * shards.
    const CAP: usize = 64;
    let effective_cap = CAP.div_ceil(SHARD_COUNT) * SHARD_COUNT;
    let corpus = ListCorpus::new("LifecycleCapNode");
    let requests = corpus.batch(1);

    let unbounded = engine_for(&corpus).build().expect("engine builds");
    let reference = unbounded.analyze_all(&requests).expect("corpus runs");
    assert!(
        unbounded.cache_stats().entries > effective_cap as u64,
        "corpus must overflow the cap for this test to bite: {:?}",
        unbounded.cache_stats()
    );
    assert_eq!(unbounded.cache_stats().evictions, 0);

    let bounded = engine_for(&corpus)
        .cache_capacity(CAP)
        .build()
        .expect("engine builds");
    let batch = bounded.analyze_all(&requests).expect("corpus runs");

    let stats = bounded.cache_stats();
    assert!(
        stats.entries <= effective_cap as u64,
        "resident entries {} exceed the configured cap {effective_cap}: {stats:?}",
        stats.entries
    );
    assert!(
        stats.evictions > 0,
        "an overflowing corpus must evict: {stats:?}"
    );
    assert!(stats.resident_bytes > 0);
    assert!(
        batch.cache.evictions > 0,
        "the batch delta surfaces evictions too: {:?}",
        batch.cache
    );

    // Eviction forgets, never corrupts: formulas match the unbounded
    // run exactly.
    for (bounded_report, reference_report) in batch.reports.iter().zip(&reference.reports) {
        assert_eq!(
            fingerprint(bounded_report),
            fingerprint(reference_report),
            "a bounded cache must not change what is inferred"
        );
    }
}

#[test]
fn absorb_snapshot_folds_sibling_snapshots_into_a_live_engine() {
    let corpus = ListCorpus::new("LifecycleAbsorbNode");
    let dir = temp_dir("absorb");
    let a_path = dir.join("a.snap");
    let b_path = dir.join("b.snap");

    // Two "sibling processes" each run half the corpus and snapshot.
    let batch = corpus.batch(1);
    let (half_a, half_b) = batch.split_at(2); // reverse+traverse / append+last
    let sibling_a = engine_for(&corpus).build().expect("engine builds");
    sibling_a.analyze_all(half_a).expect("half A runs");
    let a_written = sibling_a.save_cache_to(&a_path).expect("snapshot A saves");
    let sibling_b = engine_for(&corpus).build().expect("engine builds");
    sibling_b.analyze_all(half_b).expect("half B runs");
    let b_written = sibling_b.save_cache_to(&b_path).expect("snapshot B saves");
    assert!(a_written > 0 && b_written > 0);

    // A fresh engine absorbs both and is warm for *both* halves.
    let engine = engine_for(&corpus).build().expect("engine builds");
    assert_eq!(engine.warm_entries(), 0);
    let a_stats = engine.absorb_snapshot(&a_path).expect("A merges");
    let b_stats = engine.absorb_snapshot(&b_path).expect("B merges");
    assert_eq!(a_stats.merged, a_written, "disjoint halves: no collisions");
    assert!(b_stats.merged > 0);
    assert_eq!(
        engine.warm_entries(),
        a_stats.merged + b_stats.merged,
        "warm_entries must track absorbed snapshots"
    );

    let before = engine.cache_stats();
    engine.analyze_all(half_a).expect("half A runs warm");
    let after_a = engine.cache_stats().since(&before);
    assert!(
        after_a.warm_hits > 0,
        "snapshot A must answer half A: {after_a:?}"
    );
    let before = engine.cache_stats();
    engine.analyze_all(half_b).expect("half B runs warm");
    let after_b = engine.cache_stats().since(&before);
    assert!(
        after_b.warm_hits > 0,
        "snapshot B must answer half B: {after_b:?}"
    );

    // Absorbing a corrupt snapshot is a typed error, not a panic, and
    // leaves the engine serving.
    let corrupt = dir.join("c.snap");
    std::fs::write(&corrupt, b"not a snapshot").unwrap();
    assert!(engine.absorb_snapshot(&corrupt).is_err());
    assert!(engine
        .analyze(&AnalysisRequest::new("traverse").input(corpus.one(1, 3)))
        .is_ok());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn absorbing_the_same_snapshot_twice_adds_nothing() {
    let corpus = ListCorpus::new("LifecycleIdemNode");
    let dir = temp_dir("idem");
    let path = dir.join("only.snap");

    let seeder = engine_for(&corpus).build().expect("engine builds");
    seeder
        .analyze(&AnalysisRequest::new("traverse").input(corpus.one(3, 4)))
        .expect("seed run");
    let written = seeder.save_cache_to(&path).expect("snapshot saves");

    let engine = engine_for(&corpus).build().expect("engine builds");
    let first = engine.absorb_snapshot(&path).expect("first merge");
    assert_eq!(first.merged, written);
    let second = engine.absorb_snapshot(&path).expect("second merge");
    assert_eq!(
        (second.merged, second.skipped),
        (0, written),
        "same generation, same keys: everything skips"
    );
    assert_eq!(engine.warm_entries(), written, "idempotent warm count");

    std::fs::remove_dir_all(&dir).ok();
}
