//! The differential gate between the two execution tiers: the compiled
//! bytecode VM (`sling_vm::BytecodeVm`, the default) and the tree-walk
//! interpreter (`sling_lang::Vm`, the reference oracle) must be
//! observationally identical — snapshot-for-snapshot equal traces,
//! the same typed fault at the same point (faulting runs keep the same
//! partial trace), and therefore formula-identical analysis reports.
//!
//! The whole 157-program corpus goes through both tiers here, including
//! the five seeded-bug `∗` programs whose runs fault mid-trace; a
//! proptest sweep then drives randomly generated integer programs
//! (loops, branches, recursion, faulting arithmetic) through both under
//! adversarially small step/depth budgets.

use proptest::prelude::*;

use sling::{collect_models, Collected, Compiler, Executor};
use sling_lang::{check_program, parse_program, TraceConfig, VmConfig};
use sling_logic::Symbol;
use sling_models::Val;
use sling_suite::corpus::all_benches;
use sling_suite::eval::EvalConfig;

/// The corpus seed the evaluation harness uses (`EvalConfig::default`).
const SEED: u64 = 0x51_1e6;

/// Runs `f` on a thread with a large stack. The tree-walk oracle
/// recurses natively — the non-terminating seeded-bug programs push
/// `VmConfig::default().max_depth` (2000) interpreter activations
/// before their `StackOverflow` fault, which is deeper than the
/// default test-thread stack affords in debug builds.
fn with_big_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("corpus differential thread panicked");
}

fn collect_under(
    source: &str,
    target: &str,
    inputs: Vec<sling::InputSource>,
    vm_config: VmConfig,
    executor: Executor,
) -> Collected {
    let program = parse_program(source).unwrap();
    check_program(&program).unwrap();
    let compiled = Compiler::compile(&program);
    collect_models(
        &program,
        &compiled,
        Symbol::intern(target),
        &inputs,
        vm_config,
        TraceConfig::default(),
        executor,
    )
}

fn assert_traces_agree(name: &str, bytecode: &Collected, treewalk: &Collected) {
    assert_eq!(
        bytecode.runs.len(),
        treewalk.runs.len(),
        "{name}: run counts diverge"
    );
    for (i, (b, t)) in bytecode.runs.iter().zip(&treewalk.runs).enumerate() {
        assert_eq!(
            b.error, t.error,
            "{name}: run {i} faults diverge between executors"
        );
        assert_eq!(
            b.snapshots.len(),
            t.snapshots.len(),
            "{name}: run {i} snapshot counts diverge"
        );
        for (j, (sb, st)) in b.snapshots.iter().zip(&t.snapshots).enumerate() {
            assert_eq!(
                sb, st,
                "{name}: run {i} snapshot {j} diverges between executors"
            );
        }
    }
}

/// Every corpus benchmark, trace-level: both executors produce the
/// same snapshot stream and the same fault on every input — including
/// the five seeded-bug `∗` programs, whose faulting runs must keep
/// byte-identical partial traces.
#[test]
fn whole_corpus_traces_identical_across_executors() {
    with_big_stack(whole_corpus_traces_impl);
}

fn whole_corpus_traces_impl() {
    let benches = all_benches();
    assert!(benches.len() >= 150, "corpus shrank: {}", benches.len());
    let mut starred = 0usize;
    for bench in &benches {
        let program = parse_program(bench.source)
            .unwrap_or_else(|e| panic!("{}: parse error: {e}", bench.name));
        check_program(&program).unwrap_or_else(|e| panic!("{}: type error: {e}", bench.name));
        let compiled = Compiler::compile(&program);
        let target = Symbol::intern(bench.target);
        let run = |executor| {
            collect_models(
                &program,
                &compiled,
                target,
                &bench.inputs(SEED),
                VmConfig::default(),
                TraceConfig::default(),
                executor,
            )
        };
        let bytecode = run(Executor::Bytecode);
        let treewalk = run(Executor::Treewalk);
        assert_traces_agree(bench.name, &bytecode, &treewalk);
        if bench.bug.is_some() {
            starred += 1;
            assert!(
                bytecode.faulted_runs() > 0,
                "{}: seeded bug never fired",
                bench.name
            );
        }
    }
    assert_eq!(starred, 5, "the paper seeds exactly five ∗ programs");
}

/// Every corpus benchmark, report-level: running the full analysis
/// pipeline under each executor yields formula-identical reports —
/// same locations, same invariants in the same order, same grades,
/// same counters. Only the timing fields and the executor tag differ.
#[test]
fn whole_corpus_reports_identical_across_executors() {
    with_big_stack(whole_corpus_reports_impl);
}

fn whole_corpus_reports_impl() {
    // One shared checker cache across every bench and both executors,
    // as the eval harness does — hits return the same reductions a
    // cold search would, so sharing cannot mask a divergence.
    let cache = std::sync::Arc::new(sling::CheckCache::default());
    let analyze = |bench: &sling_suite::program::Bench, executor| {
        let config = EvalConfig::default();
        // Pin the executor at the builder level — an explicit call
        // outranks `SLING_EXECUTOR`, so the differential stays a real
        // bytecode-vs-treewalk comparison even when CI runs the whole
        // suite under the tree-walk oracle environment.
        let engine = sling::Engine::builder()
            .program(sling_suite::eval::compile(bench))
            .pred_env(sling_suite::predicates::pred_env(bench.category))
            .config(config.sling)
            .shared_cache(cache.clone())
            .executor(executor)
            .build()
            .unwrap_or_else(|e| panic!("{}: engine build error: {e}", bench.name));
        let request = sling::AnalysisRequest::new(Symbol::intern(bench.target))
            .inputs(bench.inputs(config.seed));
        engine
            .analyze(&request)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name))
    };
    for bench in all_benches() {
        let bc = analyze(&bench, Executor::Bytecode);
        let tw = analyze(&bench, Executor::Treewalk);
        assert_eq!(bc.metrics.executor, Executor::Bytecode);
        assert_eq!(tw.metrics.executor, Executor::Treewalk);
        // The analysis payload must match formula-for-formula; Debug
        // form covers locations, invariants, grades, stats, residues.
        assert_eq!(
            format!("{:?}", bc.locations),
            format!("{:?}", tw.locations),
            "{}: inferred invariants diverge between executors",
            bench.name
        );
        assert_eq!(
            bc.declared_locations, tw.declared_locations,
            "{}",
            bench.name
        );
        let m = |r: &sling::Report| {
            let m = &r.metrics;
            (
                m.traces,
                m.runs,
                m.faulted_runs,
                m.verified,
                m.refuted,
                m.confirmed,
                m.unknown,
                m.refuted_initial,
                m.cegir_rounds,
            )
        };
        assert_eq!(m(&bc), m(&tw), "{}: metrics diverge", bench.name);
    }
}

// ---------------------------------------------------------------------
// Proptest sweep: random integer programs through both tiers.
// ---------------------------------------------------------------------

/// A small random arithmetic expression over the variables in scope
/// (`vars`) and constants. Division and remainder are reachable, so
/// generated programs can fault with `DivByZero` (and large
/// multiplications with `Overflow`) — fault parity is part of the
/// property.
fn arb_expr(depth: u32, vars: &'static [&'static str]) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        2 => (0..vars.len()).prop_map(move |i| vars[i].to_string()),
        1 => (-9i64..10).prop_map(|n| if n < 0 { format!("({n})") } else { n.to_string() }),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_expr(depth - 1, vars);
    prop_oneof![
        4 => leaf,
        4 => (sub.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("/"), Just("%")
             ], sub.clone())
            .prop_map(|(l, op, r)| format!("({l} {op} {r})")),
        1 => sub.prop_map(|e| format!("(-{e})")),
    ]
    .boxed()
}

/// A random loop-plus-branch function body. The loop counts `x` down
/// by a generated stride, so termination is not guaranteed — small
/// `max_steps` budgets make `StepLimit` parity part of the property.
fn arb_loop_program() -> impl Strategy<Value = String> {
    (
        arb_expr(2, &["a", "b"]),
        arb_expr(2, &["a", "b", "x"]),
        prop_oneof![Just("1"), Just("2"), Just("0")],
        arb_expr(2, &["a", "b", "x", "y"]),
        arb_expr(1, &["a", "b", "x", "y"]),
    )
        .prop_map(|(init_x, init_y, stride, acc, ret)| {
            format!(
                "fn f(a: int, b: int) -> int {{
                     var x: int = {init_x};
                     var y: int = {init_y};
                     while @l (x > 0) {{
                         x = x - {stride};
                         y = y + {acc};
                     }}
                     if (y > x) {{ return y; }} else {{ return {ret}; }}
                 }}"
            )
        })
}

/// A random linear-recursive function; tiny `max_depth` budgets make
/// `StackOverflow` parity part of the property.
fn arb_recursive_program() -> impl Strategy<Value = String> {
    (
        arb_expr(1, &["a", "b", "x", "y"]),
        prop_oneof![Just("1"), Just("2")],
    )
        .prop_map(|(combine, stride)| {
            format!(
                "fn f(a: int, b: int) -> int {{
                 var x: int = a;
                 var y: int = b;
                 if (a < 1) {{ return {combine}; }}
                 return y + f(a - {stride}, b + 1);
             }}"
            )
        })
}

fn differential_case(source: &str, a: i64, b: i64, max_steps: u64, max_depth: usize) {
    let vm_config = VmConfig {
        max_steps,
        max_depth,
    };
    let inputs = || {
        vec![sling::InputSource::custom(
            move |_: &mut sling_lang::RtHeap| vec![Val::Int(a), Val::Int(b)],
        )]
    };
    let bytecode = collect_under(source, "f", inputs(), vm_config, Executor::Bytecode);
    let treewalk = collect_under(source, "f", inputs(), vm_config, Executor::Treewalk);
    assert_traces_agree(source, &bytecode, &treewalk);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loops and branches with faulting arithmetic: identical traces
    /// and identical faults under adversarial step budgets (including
    /// budgets that expire mid-loop).
    #[test]
    fn random_loop_programs_agree(
        source in arb_loop_program(),
        a in -20i64..20,
        b in -20i64..20,
        max_steps in prop_oneof![Just(3u64), Just(17), Just(64), Just(500), Just(100_000)],
    ) {
        differential_case(&source, a, b, max_steps, 64);
    }

    /// Recursion: identical traces and identical faults under
    /// adversarial depth budgets (including budgets that expire
    /// mid-recursion).
    #[test]
    fn random_recursive_programs_agree(
        source in arb_recursive_program(),
        a in -4i64..40,
        b in -20i64..20,
        max_depth in prop_oneof![Just(2usize), Just(5), Just(33), Just(1000)],
    ) {
        differential_case(&source, a, b, 100_000, max_depth);
    }
}
