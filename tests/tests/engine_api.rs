//! Engine/batch API integration: one engine, one predicate environment,
//! several target functions, a shared entailment cache.

use sling::{AnalysisRequest, Engine, InputSource};
use sling_lang::{Location, RtHeap};
use sling_logic::Symbol;
use sling_models::Val;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// The paper's `concat` plus a plain traversal, in one program.
const PROGRAM: &str = "
    struct Node { next: Node*; prev: Node*; }
    fn concat(x: Node*, y: Node*) -> Node* {
        if (x == null) { return y; }
        var tmp: Node* = concat(x->next, y);
        x->next = tmp;
        if (tmp != null) { tmp->prev = x; }
        return x;
    }
    fn traverse(x: Node*) -> Node* {
        var c: Node* = x;
        while @walk (c != null) {
            c = c->next;
        }
        return x;
    }";

const DLL_PRED: &str = "
    pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
        emp & hd == nx & pr == tl
      | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx);";

/// Allocates an `n`-cell doubly linked list, returning its head value.
fn mk_dll(heap: &mut RtHeap, n: usize) -> Val {
    let node = sym("Node");
    let mut locs = Vec::new();
    for _ in 0..n {
        locs.push(heap.alloc(node, vec![Val::Nil, Val::Nil]));
    }
    for i in 0..n {
        if i + 1 < n {
            heap.live_mut(locs[i]).unwrap().fields[0] = Val::Addr(locs[i + 1]);
        }
        if i > 0 {
            heap.live_mut(locs[i]).unwrap().fields[1] = Val::Addr(locs[i - 1]);
        }
    }
    locs.first().map(|l| Val::Addr(*l)).unwrap_or(Val::Nil)
}

fn concat_input(n: usize, m: usize) -> InputSource {
    InputSource::custom(move |heap: &mut RtHeap| {
        let x = mk_dll(heap, n);
        let y = mk_dll(heap, m);
        vec![x, y]
    })
}

fn traverse_input(n: usize) -> InputSource {
    InputSource::custom(move |heap: &mut RtHeap| vec![mk_dll(heap, n)])
}

/// A strictly sequential engine, so per-request cache deltas are exact
/// (parallel batches only guarantee the batch-level delta).
fn engine() -> Engine {
    Engine::builder()
        .program_source(PROGRAM)
        .expect("program parses")
        .predicates_source(DLL_PRED)
        .expect("predicates parse")
        .parallelism(1)
        .build()
        .expect("program checks")
}

#[test]
fn analyze_all_shares_one_pred_env_and_hits_the_cache() {
    let engine = engine();
    let requests = vec![
        AnalysisRequest::new("concat").inputs(vec![
            concat_input(0, 0),
            concat_input(0, 2),
            concat_input(3, 0),
            concat_input(3, 2),
        ]),
        AnalysisRequest::new("traverse").inputs(vec![
            traverse_input(0),
            traverse_input(2),
            traverse_input(3),
        ]),
    ];
    let batch = engine.analyze_all(&requests).expect("both targets exist");
    assert_eq!(batch.reports.len(), 2);

    // Both targets produce invariants from the one engine.
    let concat = batch.by_target(sym("concat")).expect("concat report");
    let traverse = batch.by_target(sym("traverse")).expect("traverse report");
    assert!(concat.invariant_count() > 0, "concat inferred nothing");
    assert!(traverse.invariant_count() > 0, "traverse inferred nothing");
    assert!(concat.at(Location::Entry).is_some());
    assert!(traverse.at(Location::LoopHead(sym("walk"))).is_some());

    // The first request runs cold; the second must reuse entailments the
    // first already established (same dll shapes, same predicate env).
    assert_eq!(
        concat.cache.hits + concat.cache.misses,
        concat.cache.lookups()
    );
    assert!(
        traverse.cache.hits >= 1,
        "second target saw no cache hits: {:?} (batch: {:?})",
        traverse.cache,
        batch.cache
    );
    assert!(batch.cache.lookups() >= concat.cache.lookups() + traverse.cache.lookups());
    assert!(batch.cache.entries > 0);

    // The engine's cumulative counters agree with the batch delta.
    assert!(engine.cache_stats().hits >= traverse.cache.hits);
}

#[test]
fn repeated_requests_run_almost_entirely_warm() {
    let engine = engine();
    let request =
        || AnalysisRequest::new("traverse").inputs(vec![traverse_input(0), traverse_input(3)]);
    let cold = engine.analyze(&request()).unwrap();
    let warm = engine.analyze(&request()).unwrap();
    assert!(cold.cache.misses > 0);
    assert!(
        warm.cache.hits >= warm.cache.misses,
        "a repeated request should be mostly cache hits: {:?}",
        warm.cache
    );
    // Same inputs, same verdicts.
    assert_eq!(cold.invariant_count(), warm.invariant_count());
    let fmt = |r: &sling::Report| {
        r.locations
            .iter()
            .flat_map(|l| l.invariants.iter().map(|i| i.formula.to_string()))
            .collect::<Vec<_>>()
    };
    assert_eq!(fmt(&cold), fmt(&warm));
}

#[test]
fn per_request_config_overrides_apply() {
    let engine = engine();
    let mut tight = *engine.config();
    tight.max_results_per_location = 1;
    let narrow = engine
        .analyze(
            &AnalysisRequest::new("traverse")
                .input(traverse_input(2))
                .config(tight),
        )
        .unwrap();
    let wide = engine
        .analyze(&AnalysisRequest::new("traverse").input(traverse_input(2)))
        .unwrap();
    for loc in &narrow.locations {
        assert!(
            loc.invariants.len() <= 1,
            "override ignored at {}",
            loc.location
        );
    }
    assert!(wide.invariant_count() >= narrow.invariant_count());
}
