//! Parallel batch execution: `analyze_all` with several worker threads
//! must produce reports formula-for-formula identical to a sequential
//! run, in request order, while streaming each report to the sink as it
//! completes.

use std::sync::Mutex;

use sling::{AnalysisRequest, Engine, Report, SlingConfig};
use sling_suite::fixtures::ListCorpus;

/// Four list functions over one node type: a multi-target batch program.
fn corpus() -> ListCorpus {
    ListCorpus::new("ParBatchNode")
}

fn engine(parallelism: usize) -> Engine {
    let corpus = corpus();
    Engine::builder()
        .program_source(&corpus.program())
        .expect("program parses")
        .predicates_source(&corpus.predicates())
        .expect("predicates parse")
        .parallelism(parallelism)
        .build()
        .expect("program checks")
}

/// Eight requests across the four targets, all spec-built.
fn batch() -> Vec<AnalysisRequest> {
    let c = corpus();
    vec![
        AnalysisRequest::new("reverse").inputs([c.one(1, 0), c.one(2, 3), c.one(3, 6)]),
        AnalysisRequest::new("traverse").inputs([c.one(4, 0), c.one(5, 4)]),
        AnalysisRequest::new("append").inputs([
            c.two(6, 0, 0),
            c.two(7, 0, 2),
            c.two(8, 3, 0),
            c.two(9, 3, 2),
        ]),
        AnalysisRequest::new("last").inputs([c.one(10, 0), c.one(11, 1), c.one(12, 5)]),
        AnalysisRequest::new("reverse").inputs([c.one(13, 0), c.one(14, 8)]),
        AnalysisRequest::new("traverse").inputs([c.one(15, 0), c.one(16, 7)]),
        AnalysisRequest::new("append").inputs([c.two(17, 2, 2)]),
        AnalysisRequest::new("last").inputs([c.one(18, 4)]),
    ]
}

/// Everything observable about a report except timing and cache deltas
/// (which legitimately differ between sequential and parallel runs).
fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{} runs={} traces={} faults={}\n",
        report.target, report.metrics.runs, report.metrics.traces, report.metrics.faulted_runs
    );
    for loc in &report.locations {
        let _ = writeln!(
            out,
            "  {} models={} snaps={} tainted={}",
            loc.location, loc.models_used, loc.snapshots_seen, loc.tainted
        );
        for inv in &loc.invariants {
            let _ = writeln!(out, "    [{}] {}", inv.spurious, inv.formula);
        }
    }
    out
}

#[test]
fn parallel_reports_match_sequential_byte_for_byte() {
    let requests = batch();

    let sequential = engine(1).analyze_all(&requests).expect("targets exist");
    let parallel = engine(4).analyze_all(&requests).expect("targets exist");

    assert_eq!(sequential.reports.len(), requests.len());
    assert_eq!(parallel.reports.len(), requests.len());

    // Request-order assembly: report i answers request i.
    for (request, report) in requests.iter().zip(&parallel.reports) {
        assert_eq!(request.target, report.target);
    }

    // Formula-for-formula identical, location for location.
    for (i, (seq, par)) in sequential.reports.iter().zip(&parallel.reports).enumerate() {
        assert_eq!(
            fingerprint(seq),
            fingerprint(par),
            "request {i} diverged between sequential and parallel runs"
        );
    }

    // Both runs did real work and the sharded cache accounted for it:
    // hit/miss deltas sum to the lookups the batch actually issued.
    assert!(parallel.cache.lookups() > 0);
    assert_eq!(
        parallel.cache.lookups(),
        parallel.cache.hits + parallel.cache.misses
    );
    assert!(
        parallel.cache.hits > 0,
        "repeated list shapes must hit across the batch: {:?}",
        parallel.cache
    );
}

#[test]
fn streaming_sink_runs_while_the_batch_is_in_flight() {
    let requests = batch();
    let engine = engine(4);
    let seen: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let sink = |index: usize, report: &Report| {
        seen.lock()
            .unwrap()
            .push((index, report.target.to_string()));
    };
    let batch_report = engine
        .analyze_all_with(&requests, &sink)
        .expect("targets exist");

    let mut seen = seen.into_inner().unwrap();
    assert_eq!(seen.len(), requests.len(), "one sink call per request");
    seen.sort();
    for (i, (index, target)) in seen.iter().enumerate() {
        assert_eq!(*index, i, "every request index reported exactly once");
        assert_eq!(target, requests[i].target.as_str());
    }
    // The assembled batch still has them in request order.
    for (request, report) in requests.iter().zip(&batch_report.reports) {
        assert_eq!(request.target, report.target);
    }
}

#[test]
fn per_request_config_overrides_hold_under_parallelism() {
    let engine = engine(3);
    let mut tight = *engine.config();
    tight.max_results_per_location = 1;
    let requests: Vec<AnalysisRequest> = (0..6)
        .map(|i| {
            let req = AnalysisRequest::new("traverse").input(corpus().one(i, 3));
            if i % 2 == 0 {
                req.config(SlingConfig { ..tight })
            } else {
                req
            }
        })
        .collect();
    let batch = engine.analyze_all(&requests).expect("targets exist");
    for (i, report) in batch.reports.iter().enumerate() {
        if i % 2 == 0 {
            for loc in &report.locations {
                assert!(
                    loc.invariants.len() <= 1,
                    "override ignored for request {i} at {}",
                    loc.location
                );
            }
        }
    }
}
