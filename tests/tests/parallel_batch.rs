//! Parallel batch execution: `analyze_all` with several worker threads
//! must produce reports formula-for-formula identical to a sequential
//! run, in request order, while streaming each report to the sink as it
//! completes.

use std::sync::Mutex;

use sling::{AnalysisRequest, Engine, InputSpec, ListLayout, Report, SlingConfig, ValueSpec};
use sling_logic::Symbol;

/// Four list functions over one node type: a multi-target batch program.
const PROGRAM: &str = "
    struct BNode { next: BNode*; data: int; }
    fn reverse(x: BNode*) -> BNode* {
        var r: BNode* = null;
        while @rev (x != null) {
            var t: BNode* = x->next;
            x->next = r;
            r = x;
            x = t;
        }
        return r;
    }
    fn traverse(x: BNode*) -> BNode* {
        var c: BNode* = x;
        while @walk (c != null) {
            c = c->next;
        }
        return x;
    }
    fn append(x: BNode*, y: BNode*) -> BNode* {
        if (x == null) { return y; }
        var t: BNode* = append(x->next, y);
        x->next = t;
        return x;
    }
    fn last(x: BNode*) -> BNode* {
        if (x == null) { return null; }
        if (x->next == null) { return x; }
        return last(x->next);
    }";

const PREDS: &str = "
    pred sll(x: BNode*) := emp & x == nil
       | exists u, d. x -> BNode{next: u, data: d} * sll(u);
    pred lseg(x: BNode*, y: BNode*) := emp & x == y
       | exists u, d. x -> BNode{next: u, data: d} * lseg(u, y);";

fn layout() -> ListLayout {
    ListLayout {
        ty: Symbol::intern("BNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    }
}

fn engine(parallelism: usize) -> Engine {
    Engine::builder()
        .program_source(PROGRAM)
        .expect("program parses")
        .predicates_source(PREDS)
        .expect("predicates parse")
        .parallelism(parallelism)
        .build()
        .expect("program checks")
}

/// Eight requests across the four targets, all spec-built.
fn batch() -> Vec<AnalysisRequest> {
    let one_list = |seed: u64, n: usize| InputSpec::seeded(seed).arg(ValueSpec::sll(layout(), n));
    let two_lists = |seed: u64, n: usize, m: usize| {
        InputSpec::seeded(seed)
            .arg(ValueSpec::sll(layout(), n))
            .arg(ValueSpec::sll(layout(), m))
    };
    vec![
        AnalysisRequest::new("reverse").inputs([one_list(1, 0), one_list(2, 3), one_list(3, 6)]),
        AnalysisRequest::new("traverse").inputs([one_list(4, 0), one_list(5, 4)]),
        AnalysisRequest::new("append").inputs([
            two_lists(6, 0, 0),
            two_lists(7, 0, 2),
            two_lists(8, 3, 0),
            two_lists(9, 3, 2),
        ]),
        AnalysisRequest::new("last").inputs([one_list(10, 0), one_list(11, 1), one_list(12, 5)]),
        AnalysisRequest::new("reverse").inputs([one_list(13, 0), one_list(14, 8)]),
        AnalysisRequest::new("traverse").inputs([one_list(15, 0), one_list(16, 7)]),
        AnalysisRequest::new("append").inputs([two_lists(17, 2, 2)]),
        AnalysisRequest::new("last").inputs([one_list(18, 4)]),
    ]
}

/// Everything observable about a report except timing and cache deltas
/// (which legitimately differ between sequential and parallel runs).
fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{} runs={} traces={} faults={}\n",
        report.target, report.metrics.runs, report.metrics.traces, report.metrics.faulted_runs
    );
    for loc in &report.locations {
        let _ = writeln!(
            out,
            "  {} models={} snaps={} tainted={}",
            loc.location, loc.models_used, loc.snapshots_seen, loc.tainted
        );
        for inv in &loc.invariants {
            let _ = writeln!(out, "    [{}] {}", inv.spurious, inv.formula);
        }
    }
    out
}

#[test]
fn parallel_reports_match_sequential_byte_for_byte() {
    let requests = batch();

    let sequential = engine(1).analyze_all(&requests).expect("targets exist");
    let parallel = engine(4).analyze_all(&requests).expect("targets exist");

    assert_eq!(sequential.reports.len(), requests.len());
    assert_eq!(parallel.reports.len(), requests.len());

    // Request-order assembly: report i answers request i.
    for (request, report) in requests.iter().zip(&parallel.reports) {
        assert_eq!(request.target, report.target);
    }

    // Formula-for-formula identical, location for location.
    for (i, (seq, par)) in sequential.reports.iter().zip(&parallel.reports).enumerate() {
        assert_eq!(
            fingerprint(seq),
            fingerprint(par),
            "request {i} diverged between sequential and parallel runs"
        );
    }

    // Both runs did real work and the sharded cache accounted for it:
    // hit/miss deltas sum to the lookups the batch actually issued.
    assert!(parallel.cache.lookups() > 0);
    assert_eq!(
        parallel.cache.lookups(),
        parallel.cache.hits + parallel.cache.misses
    );
    assert!(
        parallel.cache.hits > 0,
        "repeated list shapes must hit across the batch: {:?}",
        parallel.cache
    );
}

#[test]
fn streaming_sink_runs_while_the_batch_is_in_flight() {
    let requests = batch();
    let engine = engine(4);
    let seen: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let sink = |index: usize, report: &Report| {
        seen.lock()
            .unwrap()
            .push((index, report.target.to_string()));
    };
    let batch_report = engine
        .analyze_all_with(&requests, &sink)
        .expect("targets exist");

    let mut seen = seen.into_inner().unwrap();
    assert_eq!(seen.len(), requests.len(), "one sink call per request");
    seen.sort();
    for (i, (index, target)) in seen.iter().enumerate() {
        assert_eq!(*index, i, "every request index reported exactly once");
        assert_eq!(target, requests[i].target.as_str());
    }
    // The assembled batch still has them in request order.
    for (request, report) in requests.iter().zip(&batch_report.reports) {
        assert_eq!(request.target, report.target);
    }
}

#[test]
fn per_request_config_overrides_hold_under_parallelism() {
    let engine = engine(3);
    let mut tight = *engine.config();
    tight.max_results_per_location = 1;
    let requests: Vec<AnalysisRequest> = (0..6)
        .map(|i| {
            let req = AnalysisRequest::new("traverse")
                .input(InputSpec::seeded(i).arg(ValueSpec::sll(layout(), 3)));
            if i % 2 == 0 {
                req.config(SlingConfig { ..tight })
            } else {
                req
            }
        })
        .collect();
    let batch = engine.analyze_all(&requests).expect("targets exist");
    for (i, report) in batch.reports.iter().enumerate() {
        if i % 2 == 0 {
            for loc in &report.locations {
                assert!(
                    loc.invariants.len() <= 1,
                    "override ignored for request {i} at {}",
                    loc.location
                );
            }
        }
    }
}
