//! Cross-run cache persistence through the engine API: an engine built
//! from a saved snapshot answers the batch corpus warm
//! (`CacheStats::warm_hits > 0`) with output identical to a cold run,
//! and stale or corrupt snapshot files degrade to a cold start instead
//! of failing the build.

use std::path::PathBuf;

use sling::{AnalysisRequest, Engine, Report};
use sling_suite::fixtures::ListCorpus;

fn corpus() -> ListCorpus {
    ListCorpus::new("PersistTestNode")
}

fn engine_at(path: Option<&PathBuf>) -> Engine {
    let corpus = corpus();
    let mut builder = Engine::builder()
        .program_source(&corpus.program())
        .expect("program parses")
        .predicates_source(&corpus.predicates())
        .expect("predicates parse")
        .parallelism(2);
    if let Some(path) = path {
        builder = builder.cache_path(path);
    }
    builder.build().expect("program checks")
}

fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{}\n", report.target);
    for loc in &report.locations {
        let _ = writeln!(out, "  {}", loc.location);
        for inv in &loc.invariants {
            let _ = writeln!(out, "    [{}] {}", inv.spurious, inv.formula);
        }
    }
    out
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sling-engine-persist-{}-{name}.bin",
        std::process::id()
    ))
}

#[test]
fn warm_started_engine_reports_warm_hits_and_identical_output() {
    let path = temp_path("warm");
    std::fs::remove_file(&path).ok();
    let requests = corpus().batch(1);

    // Cold process: run the corpus, snapshot the cache.
    let cold = engine_at(Some(&path));
    assert_eq!(cold.warm_entries(), 0, "no snapshot yet: cold start");
    let cold_batch = cold.analyze_all(&requests).expect("targets exist");
    assert_eq!(
        cold_batch.cache.warm_hits, 0,
        "nothing was loaded from disk"
    );
    let written = cold.save_cache().expect("snapshot writes");
    assert!(written > 0, "the corpus run must have populated the cache");

    // Second process: same program and predicates, warm start.
    let warm = engine_at(Some(&path));
    assert_eq!(
        warm.warm_entries(),
        written,
        "every saved entry must be restored"
    );
    let warm_batch = warm.analyze_all(&requests).expect("targets exist");
    assert!(
        warm_batch.cache.warm_hits > 0,
        "restored entries must answer corpus queries: {:?}",
        warm_batch.cache
    );
    assert!(
        warm_batch.cache.warm_hits <= warm_batch.cache.hits,
        "warm hits are a subset of hits: {:?}",
        warm_batch.cache
    );
    assert!(
        warm_batch.cache.misses < cold_batch.cache.misses,
        "a warm start must re-run strictly fewer searches \
         (cold {:?} vs warm {:?})",
        cold_batch.cache,
        warm_batch.cache
    );

    // Warm verdicts are the same verdicts: identical reports.
    for (cold_report, warm_report) in cold_batch.reports.iter().zip(&warm_batch.reports) {
        assert_eq!(fingerprint(cold_report), fingerprint(warm_report));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_or_corrupt_snapshots_degrade_to_a_cold_start() {
    let corpus = corpus();

    // Corrupt bytes at the path: the build succeeds, cold.
    let path = temp_path("corrupt");
    std::fs::write(&path, b"not a snapshot at all").unwrap();
    let engine = engine_at(Some(&path));
    assert_eq!(engine.warm_entries(), 0);
    let report = engine
        .analyze(&AnalysisRequest::new("traverse").input(corpus.one(1, 3)))
        .expect("engine is fully functional despite the bad snapshot");
    assert!(report.invariant_count() > 0);
    std::fs::remove_file(&path).ok();

    // A snapshot from a *different predicate library* (same node type,
    // degenerate sll) is rejected on fingerprint, not silently reused.
    let path = temp_path("stale");
    std::fs::remove_file(&path).ok();
    let other = Engine::builder()
        .program_source(&corpus.program())
        .expect("program parses")
        .predicates_source(&format!(
            "pred sll(x: {n}*) := emp & x == nil
               | exists u. x -> {n}{{next: u, data: 7}} * sll(u);",
            n = corpus.node()
        ))
        .expect("predicates parse")
        .cache_path(&path)
        .build()
        .expect("program checks");
    let _ = other.analyze(&AnalysisRequest::new("last").input(corpus.one(2, 2)));
    assert!(other.save_cache().expect("snapshot writes") > 0);

    let mismatched = engine_at(Some(&path));
    assert_eq!(
        mismatched.warm_entries(),
        0,
        "entries computed under different predicates must not warm this engine"
    );
    std::fs::remove_file(&path).ok();

    // A missing path is simply a cold start too.
    let path = temp_path("missing");
    std::fs::remove_file(&path).ok();
    assert_eq!(engine_at(Some(&path)).warm_entries(), 0);
}

#[test]
fn partial_predicate_change_keeps_untouched_entries_warm() {
    // Mutate *one* predicate of the library: entries touching only the
    // unchanged predicate must survive the reload (and answer queries
    // warm), while entries touching the changed one are dropped.
    let corpus = corpus();
    let path = temp_path("partial");
    std::fs::remove_file(&path).ok();
    let requests = corpus.batch(1);

    // Seed under the standard sll + lseg library.
    let seeder = engine_at(Some(&path));
    seeder.analyze_all(&requests).expect("corpus runs");
    let written = seeder.save_cache().expect("snapshot writes");
    assert!(written > 0);

    // Same program, same sll — but lseg's definition changed.
    let mutated_library = format!(
        "pred sll(x: {n}*) := emp & x == nil
           | exists u, d. x -> {n}{{next: u, data: d}} * sll(u);
         pred lseg(x: {n}*, y: {n}*) := emp & x == y & x == y
           | exists u, d. x -> {n}{{next: u, data: d}} * lseg(u, y);",
        n = corpus.node()
    );
    let mutated_engine = |cache: Option<&PathBuf>| {
        let mut builder = Engine::builder()
            .program_source(&corpus.program())
            .expect("program parses")
            .predicates_source(&mutated_library)
            .expect("predicates parse");
        if let Some(path) = cache {
            builder = builder.cache_path(path);
        }
        builder.build().expect("program checks")
    };

    // The typed split is observable at the persist layer: probe the
    // still-untouched snapshot under the mutated profile (a snapshotless
    // engine build derives the profile without loading or rewriting the
    // file).
    let probed = mutated_engine(None);
    let profile = sling::EnvProfile::new(probed.types(), probed.preds());
    let survivors = match sling::persist::load(&sling::CheckCache::new(), &profile, &path) {
        Err(sling::PersistError::PartialStale { kept, dropped }) => {
            assert!(kept > 0, "entries touching only sll must survive");
            assert_eq!(kept + dropped, written);
            assert!(dropped > 0, "entries touching lseg must be dropped");
            kept
        }
        other => panic!("expected PartialStale, got {other:?}"),
    };

    let mutated = mutated_engine(Some(&path));
    let restored = mutated.warm_entries();
    assert_eq!(
        restored, survivors,
        "the build warm-loads exactly the surviving entries"
    );

    // The survivors genuinely answer queries.
    let batch = mutated.analyze_all(&requests).expect("corpus runs");
    assert!(
        batch.cache.warm_hits > 0,
        "surviving sll entries must answer warm: {:?}",
        batch.cache
    );

    // The partially-stale load re-saved the pruned snapshot in place,
    // so the next load under this library is clean — no stale entries
    // left to re-drop on every boot.
    match sling::persist::load(&sling::CheckCache::new(), &profile, &path) {
        Ok(loaded) => assert_eq!(loaded, survivors),
        other => panic!("expected a clean reload after the re-save, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn save_cache_needs_a_configured_path() {
    let engine = engine_at(None);
    let err = engine.save_cache().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // save_cache_to works without a configured path and feeds a later
    // cache_path build.
    let path = temp_path("explicit");
    std::fs::remove_file(&path).ok();
    let _ = engine.analyze(&AnalysisRequest::new("traverse").input(corpus().one(3, 4)));
    let written = engine.save_cache_to(&path).expect("snapshot writes");
    assert!(written > 0);
    let warm = engine_at(Some(&path));
    assert_eq!(warm.warm_entries(), written);
    std::fs::remove_file(&path).ok();
}
