//! Cross-layer tests for the static diagnostics pass (`sling-analysis`):
//! corpus-wide agreement between static reachability and the dynamic
//! collector (a statically-unreachable breakpoint location is never
//! observed in any trace, under either executor), a fuzz sweep of the
//! analyzer over randomly generated MiniC ASTs (no panics, fully
//! deterministic), and the serve-layer upload gate answering lint-dirty
//! programs with a typed `rejected` frame over `sling7`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sling::{
    analyze_program, collect_models, lint_codes, AnalysisSettings, Compiler, Executor, Severity,
};
use sling_lang::{check_program, gen_program, parse_program, TraceConfig, VmConfig};
use sling_logic::Symbol;
use sling_serve::{
    Client, EnginePool, PoolSettings, ProgramUpload, ServeError, ServeOptions, Service,
};
use sling_suite::corpus::all_benches;

/// The corpus seed the evaluation harness uses (`EvalConfig::default`).
const SEED: u64 = 0x51_1e6;

/// Runs `f` on a thread with a large stack: the tree-walk oracle
/// recurses natively and the seeded-bug programs push the default
/// `max_depth` (2000) interpreter activations before faulting, which is
/// deeper than the default test-thread stack affords in debug builds.
fn with_big_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("static-analysis differential thread panicked");
}

/// The soundness half of the unreachable-location lint, checked against
/// the whole corpus: any breakpoint the CFG pass marks unreachable must
/// never appear in a dynamic trace — under either executor. (The other
/// direction does not hold: a reachable location may still go unvisited
/// on the particular inputs drawn.)
#[test]
fn statically_unreachable_locations_never_observed_dynamically() {
    with_big_stack(unreachable_differential_impl);
}

fn unreachable_differential_impl() {
    let benches = all_benches();
    assert!(benches.len() >= 150, "corpus shrank: {}", benches.len());
    for bench in &benches {
        let program = parse_program(bench.source)
            .unwrap_or_else(|e| panic!("{}: parse error: {e}", bench.name));
        check_program(&program).unwrap_or_else(|e| panic!("{}: type error: {e}", bench.name));
        let analysis = analyze_program(&program, &AnalysisSettings::default());
        let target = Symbol::intern(bench.target);
        let unreachable = analysis.unreachable_in(target);
        let compiled = Compiler::compile(&program);
        for executor in [Executor::Bytecode, Executor::Treewalk] {
            let collected = collect_models(
                &program,
                &compiled,
                target,
                &bench.inputs(SEED),
                VmConfig::default(),
                TraceConfig::default(),
                executor,
            );
            for run in &collected.runs {
                for snap in &run.snapshots {
                    assert!(
                        !unreachable.contains(&snap.location),
                        "{}: statically-unreachable {} observed dynamically under {:?}",
                        bench.name,
                        snap.location,
                        executor
                    );
                }
            }
        }
    }
}

/// The upload gate end to end: a program whose only definite-null
/// dereference the lints catch is answered with a `rejected` frame
/// carrying structured diagnostics — typed code, deny severity, the
/// offending function — not a stringly `error` frame. The connection
/// and the pool survive, and a clean upload then serves.
#[test]
fn lint_dirty_upload_is_rejected_with_typed_diagnostics_over_the_wire() {
    let pool = EnginePool::new(None, 2, PoolSettings::default());
    let service =
        Service::bind_pool(pool, "127.0.0.1:0", ServeOptions::default()).expect("service binds");
    let mut client = Client::connect(service.local_addr()).expect("connects");

    // One fixture per deny lint: use-before-init (SA001), an
    // unreachable breakpoint label (SA006), a definite-null
    // dereference (SA007).
    let fixtures = [
        (
            lint_codes::USE_BEFORE_INIT,
            "fn f() -> int { var y: int; return y; }",
        ),
        (
            lint_codes::UNREACHABLE_LOCATION,
            "fn f() -> int { return 1; @dead; }",
        ),
        (
            lint_codes::NULL_DEREF,
            "struct SaNode { next: SaNode*; }
             fn f() -> SaNode* {
                 var p: SaNode* = null;
                 return p->next;
             }",
        ),
    ];
    let probe = sling::AnalysisRequest::new("f");
    for (code, program) in fixtures {
        let upload = ProgramUpload {
            program: program.into(),
            predicates: String::new(),
        };
        match client.analyze_all_uploaded(&upload, std::slice::from_ref(&probe)) {
            Err(ServeError::Rejected(diags)) => {
                assert!(diags.has_deny(), "{code}: findings carry no deny");
                let hit = diags
                    .iter()
                    .find(|d| d.code == code)
                    .unwrap_or_else(|| panic!("{code} missing from:\n{diags}"));
                assert_eq!(hit.severity, Severity::Deny);
                assert_eq!(hit.function, Some(Symbol::intern("f")));
            }
            other => panic!("{code}: expected Rejected, got {other:?}"),
        }
        client.ping().expect("connection survives the rejection");
    }

    // A clean program on the same connection builds and serves.
    let corpus = sling_suite::fixtures::ListCorpus::new("SaGateNode");
    let upload = ProgramUpload {
        program: corpus.program(),
        predicates: corpus.predicates(),
    };
    let served = client
        .analyze_all_uploaded(&upload, &corpus.batch(1))
        .expect("clean upload serves after three rejections");
    assert!(!served.reports.is_empty());
    let stats = client.pool_stats();
    assert_eq!(
        stats.resident, 1,
        "rejected uploads must not occupy pool slots: {stats:?}"
    );
    service.shutdown().expect("graceful drain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analyzer accepts any tree the generator can produce — no
    /// panics — and is a pure function of the AST: analyzing the same
    /// seed's program twice yields identical diagnostics and identical
    /// unreachable sets.
    #[test]
    fn analyzer_never_panics_and_is_deterministic(seed in 0u64..1_000_000) {
        let settings = AnalysisSettings::default();
        let run = || {
            let program = gen_program(&mut StdRng::seed_from_u64(seed));
            analyze_program(&program, &settings)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Every diagnostic is attributed to a function the program has.
        let program = gen_program(&mut StdRng::seed_from_u64(seed));
        for d in a.diagnostics.iter() {
            if let Some(func) = d.function {
                prop_assert!(program.func(func).is_some());
            }
        }
    }
}
