//! End-to-end tests for the static-verification post-pass and its
//! counterexample-guided (CEGIR) refinement loop.
//!
//! The scenarios mirror the acceptance story: with verification on,
//! every reported invariant carries a grade; on a thin-input run of the
//! list corpus the prover refutes at least one over-specific candidate,
//! and the refinement loop either eliminates it (the re-collected
//! evidence kills the candidate) or re-grades it `Confirmed` (the
//! candidate survived a run on the very state the prover proposed); and
//! when nothing is refuted, the graded formulas are identical to a
//! dynamic-only run.
//!
//! Every grade assertion is guarded on `SLING_VERIFY`: the CI matrix
//! runs the suite once with `SLING_VERIFY=off`, where a configured pass
//! must leave every invariant ungraded.

use sling::{AnalysisRequest, Engine, InvariantGrade, Report, VerifySettings};
use sling_lang::Location;
use sling_suite::fixtures::ListCorpus;

/// Whether this process's environment forces the verification pass off
/// (the CI matrix runs the suite once with `SLING_VERIFY=off`).
fn env_forces_verify_off() -> bool {
    matches!(std::env::var("SLING_VERIFY"), Ok(v)
        if v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false"))
}

fn engine_for(corpus: &ListCorpus, verify: bool) -> Engine {
    let builder = Engine::builder()
        .program_source(&corpus.program())
        .unwrap()
        .predicates_source(&corpus.predicates())
        .unwrap();
    let builder = if verify {
        builder.verification(VerifySettings::default())
    } else {
        builder
    };
    builder.build().unwrap()
}

/// `(location, formula, grade)` for every invariant, in report order.
fn graded_formulas(report: &Report) -> Vec<(Location, String, InvariantGrade)> {
    report
        .locations
        .iter()
        .flat_map(|loc| {
            loc.invariants
                .iter()
                .map(|i| (loc.location, i.formula.to_string(), i.grade))
        })
        .collect()
}

/// The thin-input `last` run: only single-node lists, so exit candidates
/// overfit to `next == nil` and the prover refutes them against the
/// general `sll`/`lseg` siblings.
fn thin_last_report(engine: &Engine, corpus: &ListCorpus) -> Report {
    let request = AnalysisRequest::new("last").inputs([corpus.one(1, 1), corpus.one(2, 1)]);
    engine.analyze(&request).unwrap()
}

#[test]
fn thin_inputs_provoke_refutation_and_cegir_resolves_it() {
    let corpus = ListCorpus::new("VfyThinNode");
    let engine = engine_for(&corpus, true);
    let report = thin_last_report(&engine, &corpus);

    if env_forces_verify_off() {
        assert!(
            graded_formulas(&report)
                .iter()
                .all(|(_, _, g)| *g == InvariantGrade::Ungraded),
            "SLING_VERIFY=off must leave a configured pass inert"
        );
        assert_eq!(report.metrics.refuted_initial, 0);
        return;
    }

    // Every reported invariant carries a grade.
    assert!(report.invariant_count() > 0);
    for (loc, formula, grade) in graded_formulas(&report) {
        assert_ne!(
            grade,
            InvariantGrade::Ungraded,
            "ungraded invariant at {loc:?}: {formula}"
        );
    }

    // The prover refuted at least one over-specific candidate before any
    // refinement ran...
    assert!(
        report.metrics.refuted_initial >= 1,
        "thin inputs must provoke a refutation: {:?}",
        report.metrics
    );
    // ...and the CEGIR loop resolved every refutation within its round
    // bound: each starts-refuted candidate was either eliminated by the
    // re-collected evidence or re-graded Confirmed.
    assert_eq!(report.metrics.refuted, 0, "{:?}", report.metrics);
    assert!(report.metrics.cegir_rounds >= 1, "{:?}", report.metrics);
    assert!(
        report.metrics.cegir_rounds <= VerifySettings::default().cegir_rounds,
        "{:?}",
        report.metrics
    );
    // The refinement round added at least one witness-derived input.
    assert!(report.metrics.runs > 2, "{:?}", report.metrics);

    // The over-specific exit candidate is genuinely true at `last`'s
    // `return x` exit (the guard *is* `x->next == null`), so it must
    // survive re-inference on the witness state as Confirmed.
    let exit = report.at(Location::Exit(1)).expect("exit 1 reached");
    assert!(
        exit.invariants.iter().any(|i| {
            i.grade == InvariantGrade::Confirmed && i.formula.to_string().contains("next: nil")
        }),
        "expected a Confirmed next==nil candidate at Exit(1): {:?}",
        graded_formulas(&report)
    );

    // The metrics block is the grade histogram.
    for (count, grade) in [
        (report.metrics.verified, InvariantGrade::Verified),
        (report.metrics.refuted, InvariantGrade::Refuted),
        (report.metrics.confirmed, InvariantGrade::Confirmed),
        (report.metrics.unknown, InvariantGrade::Unknown),
    ] {
        assert_eq!(count, report.graded_count(grade), "{grade}");
    }
    assert!(report.metrics.verify_seconds > 0.0);
}

#[test]
fn verified_runs_are_deterministic() {
    let corpus = ListCorpus::new("VfyDetNode");
    let engine = engine_for(&corpus, true);
    let first = thin_last_report(&engine, &corpus);
    // Second run hits a warm entailment cache; formulas and grades must
    // not move.
    let second = thin_last_report(&engine, &corpus);
    assert_eq!(graded_formulas(&first), graded_formulas(&second));
    // And a cold sibling engine agrees with the warm one.
    let cold = thin_last_report(&engine_for(&corpus, true), &corpus);
    assert_eq!(graded_formulas(&first), graded_formulas(&cold));
}

#[test]
fn no_refutation_matches_the_dynamic_only_run() {
    let corpus = ListCorpus::new("VfyDynNode");
    let verified = engine_for(&corpus, true);
    let dynamic = engine_for(&corpus, false);
    // `reverse` and `traverse` on the standard inputs produce invariants
    // the prover endorses outright — no refutation, so no refinement and
    // formula-for-formula the same report as a dynamic-only run.
    for (target, inputs) in [
        ("traverse", vec![corpus.one(4, 0), corpus.one(5, 6)]),
        (
            "reverse",
            vec![corpus.one(1, 0), corpus.one(2, 4), corpus.one(3, 8)],
        ),
    ] {
        let request = AnalysisRequest::new(target).inputs(inputs);
        let with = verified.analyze(&request).unwrap();
        let without = dynamic.analyze(&request).unwrap();
        let formulas = |r: &Report| {
            graded_formulas(r)
                .into_iter()
                .map(|(l, f, _)| (l, f))
                .collect::<Vec<_>>()
        };
        assert_eq!(formulas(&with), formulas(&without), "{target}");
        assert_eq!(with.metrics.refuted_initial, 0, "{target}");
        assert_eq!(with.metrics.cegir_rounds, 0, "{target}");
        assert!(
            graded_formulas(&without)
                .iter()
                .all(|(_, _, g)| *g == InvariantGrade::Ungraded),
            "{target}: no verification configured, no grades"
        );
        if !env_forces_verify_off() {
            assert!(
                graded_formulas(&with)
                    .iter()
                    .all(|(_, _, g)| *g != InvariantGrade::Ungraded),
                "{target}: every invariant graded"
            );
        }
    }
}

/// §5.4 promoted from the `spurious_warning` example into assertions:
/// the buggy `sortMerge`'s unexpected `res == nil` postcondition is
/// *not* a verification artifact — it survives the post-pass — while
/// the correct `sortReal`'s exit invariants all earn a positive grade.
#[test]
fn sort_merge_bug_survives_verification_and_sort_real_verifies() {
    use sling_suite::corpus::all_benches;
    use sling_suite::eval::{run_bench, EvalConfig};

    if env_forces_verify_off() {
        return;
    }
    let mut config = EvalConfig::default();
    config.sling.verify = Some(VerifySettings::default());

    // The buggy merge (the paper's typo): SLING's tell-tale `res == nil`
    // postcondition is endorsed by the prover — the bug is real, not an
    // inference artifact.
    let buggy = all_benches()
        .into_iter()
        .find(|b| b.name == "glib_sll/sortMerge")
        .unwrap();
    let run = run_bench(&buggy, &config);
    let exit = run.report.at(Location::Exit(0)).expect("exit 0 reached");
    assert!(
        exit.invariants.iter().any(|i| {
            i.grade == InvariantGrade::Verified && i.formula.to_string().contains("res == nil")
        }),
        "the res == nil postcondition must verify: {:?}",
        exit.invariants
            .iter()
            .map(|i| (i.formula.to_string(), i.grade))
            .collect::<Vec<_>>()
    );
    assert_eq!(run.report.metrics.refuted, 0);

    // The correct merge sort: every invariant at the `return list` exit
    // earns a positive grade (Verified outright, or Confirmed after the
    // refinement loop reproduced the prover's countermodel).
    let real = all_benches()
        .into_iter()
        .find(|b| b.name == "glib_sll/sortReal")
        .unwrap();
    let run = run_bench(&real, &config);
    let exit = run.report.at(Location::Exit(1)).expect("exit 1 reached");
    assert!(!exit.invariants.is_empty());
    for inv in &exit.invariants {
        assert!(
            matches!(
                inv.grade,
                InvariantGrade::Verified | InvariantGrade::Confirmed
            ),
            "sortReal exit invariant must grade positively: [{}] {}",
            inv.grade,
            inv.formula
        );
    }
    assert_eq!(run.report.metrics.refuted, 0);
}
