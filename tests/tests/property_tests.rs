//! Property-based tests over the core data structures and invariants:
//! parser/printer round-trips, heap algebra laws, checker soundness on
//! generated lists, and SplitHeap partition laws.

use proptest::prelude::*;

use sling_checker::CheckCtx;
use sling_logic::{
    parse_formula, parse_predicates, FieldDef, FieldTy, PredEnv, StructDef, Symbol, TypeEnv,
};
use sling_models::{Heap, HeapCell, Loc, Stack, StackHeapModel, Val};

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn node_env() -> (TypeEnv, PredEnv) {
    let mut types = TypeEnv::new();
    let node = sym("PNodeT");
    types
        .define(StructDef {
            name: node,
            fields: vec![
                FieldDef {
                    name: sym("next"),
                    ty: FieldTy::Ptr(node),
                },
                FieldDef {
                    name: sym("data"),
                    ty: FieldTy::Int,
                },
            ],
        })
        .unwrap();
    let mut preds = PredEnv::new();
    for d in parse_predicates(
        "pred plist(x: PNodeT*) := emp & x == nil
           | exists u, d. x -> PNodeT{next: u, data: d} * plist(u);
         pred pseg(x: PNodeT*, y: PNodeT*) := emp & x == y
           | exists u, d. x -> PNodeT{next: u, data: d} * pseg(u, y);",
    )
    .unwrap()
    {
        preds.define(d).unwrap();
    }
    (types, preds)
}

/// Builds a list heap from a data vector; returns (heap, head).
fn list_heap(data: &[i64]) -> (Heap, Val) {
    let mut heap = Heap::new();
    let mut next = Val::Nil;
    for (i, &d) in data.iter().enumerate().rev() {
        let loc = Loc::new(i as u64 + 1);
        heap.insert(loc, HeapCell::new(sym("PNodeT"), vec![next, Val::Int(d)]));
        next = Val::Addr(loc);
    }
    (heap, next)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any nil-terminated list satisfies plist(x) exactly.
    #[test]
    fn checker_accepts_generated_lists(data in proptest::collection::vec(-50i64..50, 0..12)) {
        let (types, preds) = node_env();
        let ctx = CheckCtx::new(&types, &preds);
        let (heap, head) = list_heap(&data);
        let mut stack = Stack::new();
        stack.bind(sym("x"), head);
        let model = StackHeapModel::new(stack, heap);
        let f = parse_formula("plist(x)").unwrap();
        let red = ctx.check(&model, &f);
        prop_assert!(red.is_some());
        prop_assert!(red.unwrap().residual.is_empty());
    }

    /// pseg(x, m) * plist(m) covers a split list exactly, for every split
    /// point m.
    #[test]
    fn segment_split_covers(data in proptest::collection::vec(0i64..10, 1..10), split in 0usize..10) {
        let (types, preds) = node_env();
        let ctx = CheckCtx::new(&types, &preds);
        let (heap, head) = list_heap(&data);
        let split = split % (data.len() + 1);
        let mid = if split == data.len() {
            Val::Nil
        } else {
            Val::Addr(Loc::new(split as u64 + 1))
        };
        let mut stack = Stack::new();
        stack.bind(sym("x"), head);
        stack.bind(sym("m"), mid);
        let model = StackHeapModel::new(stack, heap);
        let f = parse_formula("pseg(x, m) * plist(m)").unwrap();
        let red = ctx.check(&model, &f);
        prop_assert!(red.is_some());
        prop_assert!(red.unwrap().residual.is_empty());
    }

    /// A cyclic list never satisfies plist.
    #[test]
    fn checker_rejects_cycles(n in 1usize..8) {
        let (types, preds) = node_env();
        let ctx = CheckCtx::new(&types, &preds);
        let mut heap = Heap::new();
        for i in 0..n {
            let next = Loc::new(((i + 1) % n) as u64 + 1);
            heap.insert(
                Loc::new(i as u64 + 1),
                HeapCell::new(sym("PNodeT"), vec![Val::Addr(next), Val::Int(0)]),
            );
        }
        let mut stack = Stack::new();
        stack.bind(sym("x"), Val::Addr(Loc::new(1)));
        let model = StackHeapModel::new(stack, heap);
        let f = parse_formula("plist(x)").unwrap();
        prop_assert!(ctx.check(&model, &f).is_none());
    }

    /// Heap difference and union are inverses on disjoint heaps.
    #[test]
    fn heap_algebra_roundtrip(
        left in proptest::collection::btree_set(1u64..40, 0..10),
        right in proptest::collection::btree_set(41u64..80, 0..10),
    ) {
        let mk = |locs: &std::collections::BTreeSet<u64>| -> Heap {
            locs.iter()
                .map(|&l| (Loc::new(l), HeapCell::new(sym("PNodeT"), vec![Val::Nil, Val::Int(0)])))
                .collect()
        };
        let a = mk(&left);
        let b = mk(&right);
        let u = a.union(&b).unwrap();
        prop_assert_eq!(u.difference(&b), a.clone());
        prop_assert_eq!(u.difference(&a), b.clone());
        prop_assert_eq!(u.len(), a.len() + b.len());
        prop_assert!(a.subheap_of(&u));
        prop_assert!(b.subheap_of(&u));
    }

    /// SplitHeap partitions: sub-heap and rest are disjoint and rebuild
    /// the original heap.
    #[test]
    fn split_heap_partitions(data in proptest::collection::vec(0i64..10, 0..10), stop in 0usize..10) {
        let (heap, head) = list_heap(&data);
        let stop_val = if data.is_empty() || stop % data.len() == 0 {
            Val::Nil
        } else {
            Val::Addr(Loc::new((stop % data.len()) as u64 + 1))
        };
        let mut stack = Stack::new();
        stack.bind(sym("x"), head);
        stack.bind(sym("y"), stop_val);
        let model = StackHeapModel::new(stack, heap.clone());
        let split = sling::split_heap(&[model], sym("x"));
        let sub = &split.sub_models[0].heap;
        let rest = &split.rest[0];
        prop_assert!(sub.disjoint(rest));
        prop_assert_eq!(sub.union(rest).unwrap(), heap);
    }

    /// Formula printing round-trips through the parser.
    #[test]
    fn formula_print_parse_roundtrip(n_atoms in 1usize..4, with_pure in any::<bool>()) {
        let mut src = String::new();
        for i in 0..n_atoms {
            if i > 0 {
                src.push_str(" * ");
            }
            src.push_str(&format!("pseg(v{i}, v{})", i + 1));
        }
        if with_pure {
            src.push_str(" & v0 == nil");
        }
        let f1 = parse_formula(&src).unwrap();
        let f2 = parse_formula(&f1.to_string()).unwrap();
        prop_assert_eq!(f1, f2);
    }
}
