//! Tenant-isolation blitz for the multi-tenant engine pool: one daemon
//! with no baked-in program serves many concurrent clients, each
//! uploading its own program over `sling7`. Every tenant's reports must
//! be formula-identical to an in-process run of the same program —
//! zero cross-tenant bleed — with the pool's hit/miss/eviction
//! counters observable on the wire, hostile uploads answered with
//! typed errors that never kill the daemon or poison the pool, and
//! batches without an upload rejected typed when no default tenant
//! exists.

use std::fmt::Write as _;
use std::time::Duration;

use sling::{AnalysisRequest, Engine, InputSpec, Report, SlingConfig, ValueSpec};
use sling_serve::{
    Client, EnginePool, PoolSettings, ProgramUpload, ServeError, ServeOptions, Service,
};
use sling_suite::fixtures::ListCorpus;

/// Everything formula-relevant about a report (timing and cache deltas
/// legitimately differ between a served and an in-process run).
fn fingerprint(report: &Report) -> String {
    let mut out = format!(
        "{} runs={} traces={} declared={:?}\n",
        report.target, report.metrics.runs, report.metrics.traces, report.declared_locations
    );
    for loc in &report.locations {
        let _ = writeln!(
            out,
            "  {} models={} snaps={} tainted={}",
            loc.location, loc.models_used, loc.snapshots_seen, loc.tainted
        );
        for inv in &loc.invariants {
            let _ = writeln!(
                out,
                "    [{}|{}|{:?}] {} :: residues={:?} activations={:?}",
                inv.spurious, inv.grade, inv.stats, inv.formula, inv.residues, inv.activations
            );
        }
    }
    out
}

fn upload_for(corpus: &ListCorpus) -> ProgramUpload {
    ProgramUpload {
        program: corpus.program(),
        predicates: corpus.predicates(),
    }
}

/// A daemon with no default tenant: `Service::bind_pool` over an empty
/// pool, exactly what `sling-serve --pool-cap N` (no `--program`) boots.
fn empty_daemon(pool_cap: usize) -> Service {
    let pool = EnginePool::new(None, pool_cap, PoolSettings::default());
    Service::bind_pool(pool, "127.0.0.1:0", ServeOptions::default()).expect("service binds")
}

#[test]
fn concurrent_tenants_stay_isolated_under_a_tight_pool_cap() {
    // N client threads × M distinct programs against --pool-cap 2:
    // every tenant's served reports must match its own in-process run
    // formula-for-formula, and the tight cap must force evictions.
    // Node-type names are distinct per tenant (interned symbols are
    // process-global), so any cross-tenant bleed would change a
    // formula and fail the fingerprint comparison.
    let tenants: Vec<ListCorpus> = ["MtIsoA", "MtIsoB", "MtIsoC", "MtIsoD"]
        .into_iter()
        .map(ListCorpus::new)
        .collect();

    // In-process reference runs, one per tenant.
    let references: Vec<Vec<String>> = tenants
        .iter()
        .map(|corpus| {
            let engine = Engine::builder()
                .program_source(&corpus.program())
                .expect("program parses")
                .predicates_source(&corpus.predicates())
                .expect("predicates parse")
                .build()
                .expect("engine builds");
            engine
                .analyze_all(&corpus.batch(1))
                .expect("in-process batch runs")
                .reports
                .iter()
                .map(fingerprint)
                .collect()
        })
        .collect();

    let service = empty_daemon(2);
    let addr = service.local_addr();

    // 8 threads: two per tenant, all hammering the 2-slot pool at once.
    std::thread::scope(|scope| {
        for round in 0..2 {
            for (tenant, corpus) in tenants.iter().enumerate() {
                let reference = &references[tenant];
                scope.spawn(move || {
                    let mut client =
                        Client::connect_retry(addr, Duration::from_secs(10)).expect("connects");
                    let served = client
                        .analyze_all_uploaded(&upload_for(corpus), &corpus.batch(1))
                        .expect("served batch runs");
                    assert_eq!(served.reports.len(), reference.len());
                    for (index, report) in served.reports.iter().enumerate() {
                        assert_eq!(
                            fingerprint(report),
                            reference[index],
                            "tenant {tenant} round {round}: served report for `{}` \
                             must equal its own in-process report",
                            report.target
                        );
                    }
                });
            }
        }
    });

    // 4 distinct tenants through a 2-slot pool: at least 4 builds, at
    // least 2 evictions, residency within the cap — all visible on the
    // wire via the done epilogue (the last client's copy is checked
    // here through a fresh connection's hello banner).
    let client = Client::connect(addr).expect("stats probe connects");
    let stats = client.pool_stats();
    assert_eq!(stats.capacity, 2);
    assert!(stats.resident <= 2, "{stats:?}");
    assert!(
        stats.misses >= 4,
        "each of 4 tenants was built at least once: {stats:?}"
    );
    assert!(
        stats.evictions >= 2,
        "4 tenants cannot fit a 2-slot pool without evicting: {stats:?}"
    );
    assert_eq!(
        stats.misses,
        stats.evictions + stats.resident,
        "every built engine is either resident or was evicted: {stats:?}"
    );
    assert!(
        stats.hits + stats.misses == 8,
        "8 uploaded batches, each a hit or a miss: {stats:?}"
    );
    service.shutdown().expect("graceful drain");
}

#[test]
fn identical_uploads_share_one_engine_and_its_cache() {
    // Two clients uploading byte-identical sources must land on the
    // same pooled engine: the second batch rides the first one's
    // entailment cache, and the pool counts a hit, not a build.
    let corpus = ListCorpus::new("MtShareNode");
    let upload = upload_for(&corpus);
    let service = empty_daemon(4);

    let mut first = Client::connect(service.local_addr()).expect("first connects");
    let cold = first
        .analyze_all_uploaded(&upload, &corpus.batch(1))
        .expect("cold batch");
    let after_cold = first.pool_stats();
    assert_eq!(
        (after_cold.hits, after_cold.misses),
        (0, 1),
        "{after_cold:?}"
    );

    let mut second = Client::connect(service.local_addr()).expect("second connects");
    let warm = second
        .analyze_all_uploaded(&upload, &corpus.batch(1))
        .expect("warm batch");
    let after_warm = second.pool_stats();
    assert_eq!(
        (after_warm.hits, after_warm.misses),
        (1, 1),
        "{after_warm:?}"
    );
    assert_eq!(
        warm.cache.misses, 0,
        "the second identical batch must ride the first one's cache: {:?}",
        warm.cache
    );
    for (a, b) in cold.reports.iter().zip(&warm.reports) {
        assert_eq!(fingerprint(a), fingerprint(b));
    }
    service.shutdown().expect("graceful drain");
}

#[test]
fn hostile_uploads_fail_typed_and_leave_the_pool_healthy() {
    // Parse and type failures each fail *their own batch* with a typed
    // Remote error, a productivity-lint failure with a typed Rejected
    // frame carrying the structured finding; the connection and the
    // pool serve the next request as if nothing happened.
    let corpus = ListCorpus::new("MtHostileNode");
    let good = upload_for(&corpus);
    let service = empty_daemon(4);
    let mut client = Client::connect(service.local_addr()).expect("connects");

    let parse_fail = ProgramUpload {
        program: "fn broken( {".into(),
        predicates: String::new(),
    };
    let type_fail = ProgramUpload {
        program: "struct TNode { next: TNode*; }
                  fn bad(x: TNode*) -> TNode* { return x->nosuchfield; }"
            .into(),
        predicates: String::new(),
    };
    // An unguarded self-call: every disjunct recurses without consuming
    // a cell, which the productivity lint rejects.
    let lint_fail = ProgramUpload {
        program: corpus.program(),
        predicates: format!("pred spin(x: {node}*) := spin(x);", node = corpus.node()),
    };

    let probe = AnalysisRequest::new("reverse").input(InputSpec::seeded(1).arg(ValueSpec::nil()));
    for (what, hostile) in [("parse", &parse_fail), ("type", &type_fail)] {
        match client.analyze_all_uploaded(hostile, std::slice::from_ref(&probe)) {
            Err(ServeError::Remote(message)) => {
                assert!(message.contains("failed to build"), "{what}: {message}");
            }
            other => panic!("{what} failure must be Remote, got {other:?}"),
        }
        // Same connection, next request: a good upload still serves.
        client.ping().expect("connection survives the rejection");
    }
    // The productivity lint is a structured diagnostic since sling6: the
    // batch fails with a typed `rejected` frame, not a stringly error.
    match client.analyze_all_uploaded(&lint_fail, std::slice::from_ref(&probe)) {
        Err(ServeError::Rejected(diags)) => {
            assert!(
                diags
                    .iter()
                    .any(|d| d.code == sling::lint_codes::UNPRODUCTIVE_PRED),
                "lint: SL001 missing from:\n{diags}"
            );
        }
        other => panic!("lint failure must be Rejected, got {other:?}"),
    }
    client.ping().expect("connection survives the rejection");
    let served = client
        .analyze_all_uploaded(&good, &corpus.batch(1))
        .expect("good upload after three hostile ones");
    assert!(!served.reports.is_empty());
    let stats = client.pool_stats();
    assert_eq!(
        stats.resident, 1,
        "failed builds must not occupy pool slots: {stats:?}"
    );
    service.shutdown().expect("graceful drain");
}

#[test]
fn no_default_tenant_rejects_bare_batches_typed() {
    // A daemon booted with nothing baked in answers an upload-less
    // batch with a typed error naming the fix, not a hang or a crash.
    let service = empty_daemon(2);
    let mut client = Client::connect(service.local_addr()).expect("connects");
    assert_eq!(client.warm_entries(), 0, "nothing to warm-boot");

    let bare = AnalysisRequest::new("reverse").input(InputSpec::seeded(1).arg(ValueSpec::nil()));
    match client.analyze_all(std::slice::from_ref(&bare)) {
        Err(ServeError::Remote(message)) => {
            assert!(message.contains("no default program"), "{message}");
        }
        other => panic!("expected Remote, got {other:?}"),
    }
    // The rejection is per-batch: an upload on the same connection works.
    let corpus = ListCorpus::new("MtNoDefNode");
    client
        .analyze_all_uploaded(&upload_for(&corpus), &corpus.batch(1))
        .expect("uploads still serve");
    service.shutdown().expect("graceful drain");
}

#[test]
fn per_request_config_overrides_ride_the_wire() {
    // sling5's other new slot: a request-level SlingConfig override.
    // A VM budget of one step faults every run before it snapshots, so
    // if the override is honored the starved report is visibly
    // different from the default one — and it must still be
    // formula-identical to an in-process run under the same override.
    let corpus = ListCorpus::new("MtCfgNode");
    let upload = upload_for(&corpus);
    let service = empty_daemon(2);
    let mut client = Client::connect(service.local_addr()).expect("connects");

    let mut starved = SlingConfig::default();
    starved.vm.max_steps = 1;
    let default_req = vec![AnalysisRequest::new("reverse").input(corpus.one(3, 4))];
    let starved_req = vec![AnalysisRequest::new("reverse")
        .input(corpus.one(3, 4))
        .config(starved)];

    let served_default = client
        .analyze_all_uploaded(&upload, &default_req)
        .expect("default-config batch serves");
    let served_starved = client
        .analyze_all_uploaded(&upload, &starved_req)
        .expect("starved-config batch serves");
    assert!(
        served_starved.reports[0].metrics.traces < served_default.reports[0].metrics.traces,
        "one VM step faults every run almost immediately: starved {} vs default {}",
        served_starved.reports[0].metrics.traces,
        served_default.reports[0].metrics.traces
    );
    assert_ne!(
        fingerprint(&served_default.reports[0]),
        fingerprint(&served_starved.reports[0]),
        "the override must actually change the analysis"
    );

    // Served ≡ in-process under the same override, on the same engine
    // defaults the pool uses.
    let engine = Engine::builder()
        .program_source(&corpus.program())
        .expect("program parses")
        .predicates_source(&corpus.predicates())
        .expect("predicates parse")
        .build()
        .expect("engine builds");
    let reference_default = engine
        .analyze_all(&default_req)
        .expect("in-process default");
    let reference_starved = engine
        .analyze_all(&starved_req)
        .expect("in-process starved");
    assert_eq!(
        fingerprint(&served_default.reports[0]),
        fingerprint(&reference_default.reports[0])
    );
    assert_eq!(
        fingerprint(&served_starved.reports[0]),
        fingerprint(&reference_starved.reports[0])
    );
    service.shutdown().expect("graceful drain");
}
