//! End-to-end tests of the analysis service: a warm-booted server on a
//! loopback socket must produce reports formula-for-formula identical
//! to in-process `analyze_all`, stream them as they complete, reject
//! malformed frames with typed errors without dropping the connection,
//! and snapshot its cache in the background.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use sling::{wire, AnalysisRequest, Engine, InputSpec, Report, ValueSpec};
use sling_serve::{Client, ServeError, ServeOptions, Service};
use sling_suite::fixtures::ListCorpus;

fn corpus_engine(corpus: &ListCorpus) -> sling::EngineBuilder {
    Engine::builder()
        .program_source(&corpus.program())
        .expect("corpus program parses")
        .predicates_source(&corpus.predicates())
        .expect("corpus predicates parse")
}

/// Everything formula-relevant about a report (timing and cache deltas
/// legitimately differ between a served and an in-process run).
fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{} runs={} traces={} declared={:?}\n",
        report.target, report.metrics.runs, report.metrics.traces, report.declared_locations
    );
    for loc in &report.locations {
        let _ = writeln!(
            out,
            "  {} models={} snaps={} tainted={}",
            loc.location, loc.models_used, loc.snapshots_seen, loc.tainted
        );
        for inv in &loc.invariants {
            let _ = writeln!(
                out,
                "    [{}|{}|{:?}] {} :: residues={:?} activations={:?}",
                inv.spurious, inv.grade, inv.stats, inv.formula, inv.residues, inv.activations
            );
        }
    }
    out
}

fn temp_snapshot(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "sling-serve-test-{}-{name}.bin",
        std::process::id()
    ))
}

#[test]
fn served_reports_equal_in_process_reports_and_warm_boot_pays() {
    let corpus = ListCorpus::new("ServeE2eNode");
    let batch = corpus.batch(1);
    let path = temp_snapshot("e2e");
    std::fs::remove_file(&path).ok();

    // In-process reference run; its cache seeds the snapshot the server
    // warm-boots from.
    let reference_engine = corpus_engine(&corpus)
        .cache_path(&path)
        .build()
        .expect("engine builds");
    let reference = reference_engine
        .analyze_all(&batch)
        .expect("in-process batch runs");
    assert!(reference_engine.save_cache().expect("snapshot saves") > 0);

    // Warm-booted service on an ephemeral loopback port.
    let served_engine = corpus_engine(&corpus)
        .cache_path(&path)
        .build()
        .expect("engine builds");
    assert!(served_engine.warm_entries() > 0, "snapshot must restore");
    let service = Service::bind(served_engine, "127.0.0.1:0").expect("service binds");

    let mut client = Client::connect(service.local_addr()).expect("client connects");
    assert!(
        client.warm_entries() > 0,
        "hello banner must advertise the warm boot"
    );

    // First batch over the wire: identical formulas, answered warm.
    let served = client.analyze_all(&batch).expect("served batch runs");
    assert_eq!(served.reports.len(), reference.reports.len());
    for (mine, theirs) in reference.reports.iter().zip(&served.reports) {
        assert_eq!(
            fingerprint(mine),
            fingerprint(theirs),
            "served report for `{}` must equal the in-process report",
            mine.target
        );
    }
    assert!(
        served.cache.warm_hits > 0,
        "a warm-booted server must answer its first batch from restored \
         entries: {:?}",
        served.cache
    );

    let engine = service
        .shutdown()
        .expect("graceful drain")
        .into_default()
        .expect("default tenant comes back");
    assert!(engine.cache_stats().lookups() > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn reports_stream_as_they_complete() {
    let corpus = ListCorpus::new("ServeStreamNode");
    let batch = corpus.batch(1);
    let engine = corpus_engine(&corpus).build().expect("engine builds");
    let service = Service::bind(engine, "127.0.0.1:0").expect("service binds");
    let mut client = Client::connect(service.local_addr()).expect("client connects");

    let mut streamed: Vec<(usize, sling_logic::Symbol)> = Vec::new();
    let served = client
        .analyze_all_with(&batch, |index, report| {
            streamed.push((index, report.target));
        })
        .expect("served batch runs");

    // The sink saw every report exactly once, before the batch
    // returned, with indexes matching request order.
    let mut indexes: Vec<usize> = streamed.iter().map(|(i, _)| *i).collect();
    indexes.sort_unstable();
    assert_eq!(indexes, (0..batch.len()).collect::<Vec<_>>());
    for (index, target) in &streamed {
        assert_eq!(*target, batch[*index].target);
        assert_eq!(served.reports[*index].target, batch[*index].target);
    }
    service.shutdown().expect("graceful drain");
}

#[test]
fn one_connection_serves_many_batches_and_shares_the_cache() {
    let corpus = ListCorpus::new("ServeReuseNode");
    let batch = corpus.batch(1);
    let engine = corpus_engine(&corpus).build().expect("engine builds");
    let service = Service::bind(engine, "127.0.0.1:0").expect("service binds");
    let mut client = Client::connect(service.local_addr()).expect("client connects");

    client.ping().expect("ping answers");
    let cold = client.analyze_all(&batch).expect("first batch");
    client.ping().expect("connection still usable");
    let warm = client.analyze_all(&batch).expect("second batch");
    assert!(
        warm.cache.hits > cold.cache.hits || warm.cache.misses == 0,
        "the second identical batch must ride the first one's cache: \
         cold {:?}, warm {:?}",
        cold.cache,
        warm.cache
    );
    for (a, b) in cold.reports.iter().zip(&warm.reports) {
        assert_eq!(fingerprint(a), fingerprint(b), "cache hits change nothing");
    }

    // A second client shares the same engine and cache.
    let mut second = Client::connect(service.local_addr()).expect("second client");
    let third = second.analyze_all(&batch).expect("third batch");
    assert_eq!(
        third.cache.misses, 0,
        "fully warm by now: {:?}",
        third.cache
    );
    service.shutdown().expect("graceful drain");
}

#[test]
fn malformed_frames_get_typed_errors_not_dropped_connections() {
    let corpus = ListCorpus::new("ServeRejectNode");
    let engine = corpus_engine(&corpus).build().expect("engine builds");
    let service = Service::bind(engine, "127.0.0.1:0").expect("service binds");

    // A raw socket speaking garbage: every bad frame gets an `error`
    // response and the connection survives to serve good frames after.
    let stream = TcpStream::connect(service.local_addr()).expect("connects");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("hello banner");
    assert!(line.starts_with("sling7 hello "), "{line:?}");

    let bad_frames = [
        "complete nonsense\n",
        "sling9 analyze 1 - 0\n",                 // wrong protocol version
        "sling2 ping\n",                          // previous protocol version
        "sling4 analyze 1 1 \"reverse\" 0\n",     // pre-upload protocol version
        "sling5 analyze 5 - 1 \"reverse\" - 0\n", // pre-diagnostics protocol version
        "sling6 ping\n",                          // pre-cache-tier protocol version
        "sling7 frobnicate 1\n",                  // unknown frame kind
        "sling7 analyze 6 steal 0\n",             // unknown tenant tag
        "sling7 analyze 7 - 1 \"no_such_fn\" - 0\n", // decodes, but unknown target
        "sling7 analyze 8 - 2 \"reverse\" - 0\n", // truncated batch
        "sling7 analyze 9 - 1 \"reverse\" - 1 zz 0\n", // bad integer token
    ];
    for frame in bad_frames {
        writer.write_all(frame.as_bytes()).expect("write");
        line.clear();
        reader.read_line(&mut line).expect("error response");
        assert!(
            line.starts_with("sling7 error "),
            "bad frame {frame:?} must be answered with an error frame, \
             got {line:?}"
        );
    }
    // Correlation ids are salvaged when readable.
    writer
        .write_all(b"sling7 analyze 42 - 1 \"reverse\" oops\n")
        .expect("write");
    line.clear();
    reader.read_line(&mut line).expect("error response");
    assert!(line.starts_with("sling7 error 42 "), "{line:?}");

    // The connection still serves real work.
    writer.write_all(b"sling7 ping\n").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("pong");
    assert_eq!(line.trim_end(), "sling7 pong");
    drop(writer);
    drop(reader);

    // The typed client surfaces the server's rejection as Remote.
    let mut client = Client::connect(service.local_addr()).expect("client connects");
    let missing =
        AnalysisRequest::new("no_such_fn").input(InputSpec::seeded(1).arg(ValueSpec::int(3)));
    match client.analyze_all(std::slice::from_ref(&missing)) {
        Err(ServeError::Remote(message)) => {
            assert!(message.contains("no_such_fn"), "{message}");
        }
        other => panic!("expected a Remote error, got {other:?}"),
    }
    // And custom closures are rejected client-side before hitting the
    // wire.
    let custom = AnalysisRequest::new("reverse").custom(|_| vec![sling_models::Val::Nil]);
    assert!(matches!(
        client.analyze_all(std::slice::from_ref(&custom)),
        Err(ServeError::Wire(wire::WireError::Unsupported(_)))
    ));
    service.shutdown().expect("graceful drain");
}

#[test]
fn oversized_frames_get_a_typed_error_and_a_disconnect() {
    // A peer streaming bytes with no newline must not grow the server's
    // frame buffer without bound: past the configured cap it gets one
    // typed `error` frame naming the limit, then the disconnect. A small
    // cap keeps the test cheap; the default is 64 MiB.
    let corpus = ListCorpus::new("ServeHugeNode");
    let engine = corpus_engine(&corpus).build().expect("engine builds");
    let service = Service::bind_with(
        engine,
        "127.0.0.1:0",
        ServeOptions {
            max_frame_bytes: Some(4096),
            ..ServeOptions::default()
        },
    )
    .expect("service binds");

    let stream = TcpStream::connect(service.local_addr()).expect("connects");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("hello banner");
    assert!(line.starts_with("sling7 hello "), "{line:?}");

    // Far past the cap, never a newline. The server may close mid-write
    // once the cap trips, so write errors are expected, not failures.
    let chunk = [b'x'; 1024];
    for _ in 0..64 {
        if writer.write_all(&chunk).is_err() {
            break;
        }
    }
    line.clear();
    reader
        .read_line(&mut line)
        .expect("typed error before close");
    assert!(line.starts_with("sling7 error 0 "), "{line:?}");
    assert!(line.contains("frame too large"), "{line:?}");
    // Then EOF: the connection is gone, not wedged.
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("eof"), 0, "{line:?}");

    // The daemon itself survives to serve fresh connections.
    let mut client = Client::connect(service.local_addr()).expect("daemon alive");
    client.ping().expect("healthy after the hostile peer");
    service.shutdown().expect("graceful drain");
}

#[test]
fn background_snapshotting_persists_the_cache_while_serving() {
    let corpus = ListCorpus::new("ServeSnapNode");
    let batch = corpus.batch(1);
    let path = temp_snapshot("periodic");
    std::fs::remove_file(&path).ok();

    let engine = corpus_engine(&corpus)
        .cache_path(&path)
        .build()
        .expect("engine builds");
    let service = Service::bind_with(
        engine,
        "127.0.0.1:0",
        ServeOptions {
            snapshot_interval: Some(Duration::from_millis(50)),
            ..ServeOptions::default()
        },
    )
    .expect("service binds");

    let mut client = Client::connect(service.local_addr()).expect("client connects");
    client.analyze_all(&batch).expect("batch runs");
    // The periodic snapshotter must persist without any shutdown.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while service.snapshots_taken() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        service.snapshots_taken() > 0,
        "a 50ms interval must have snapshotted within 10s"
    );
    assert!(path.exists(), "periodic snapshot must hit the disk");

    // And the snapshot is genuinely loadable: a fresh engine warm-boots
    // from it while the service is still running.
    let sibling = corpus_engine(&corpus)
        .cache_path(&path)
        .build()
        .expect("engine builds");
    assert!(sibling.warm_entries() > 0, "periodic snapshot restores");

    let engine = service
        .shutdown()
        .expect("graceful drain")
        .into_default()
        .expect("default tenant comes back");
    assert!(engine.cache_path().is_some());
    std::fs::remove_file(&path).ok();
}

#[test]
fn daemon_booted_from_a_snapshot_directory_is_warm_for_every_sibling() {
    // Two sibling processes snapshot disjoint corpus halves into one
    // directory (plus one corrupt file); a service booted on that
    // directory advertises the combined warm count and answers both
    // halves warm.
    let corpus = ListCorpus::new("ServeDirNode");
    let dir = std::env::temp_dir().join(format!("sling-serve-dir-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("snapshot dir");
    let batch = corpus.batch(1);
    let (half_a, half_b) = batch.split_at(2);

    let sibling_a = corpus_engine(&corpus).build().expect("engine builds");
    sibling_a.analyze_all(half_a).expect("half A runs");
    let a_written = sibling_a
        .save_cache_to(dir.join("a.snap"))
        .expect("A snapshots");
    let sibling_b = corpus_engine(&corpus).build().expect("engine builds");
    sibling_b.analyze_all(half_b).expect("half B runs");
    let b_written = sibling_b
        .save_cache_to(dir.join("b.snap"))
        .expect("B snapshots");
    std::fs::write(dir.join("corrupt.snap"), b"not a snapshot").unwrap();
    std::fs::write(dir.join("unrelated.txt"), b"ignored: wrong extension").unwrap();

    // What sling-serve --cache DIR runs at boot.
    let engine = corpus_engine(&corpus).build().expect("engine builds");
    let outcome = sling_serve::absorb_snapshot_dir(&engine, &dir, None).expect("directory scans");
    assert_eq!(outcome.files, 3, "both snapshots plus the corrupt one");
    assert_eq!(
        outcome.skipped.len(),
        1,
        "the corrupt sibling is skipped with a reason, not fatal: {:?}",
        outcome.skipped
    );
    assert_eq!(
        outcome.merged,
        a_written + b_written,
        "disjoint halves merge without loss"
    );
    assert_eq!(engine.warm_entries(), outcome.merged);

    let service = Service::bind(engine, "127.0.0.1:0").expect("service binds");
    let mut client = Client::connect(service.local_addr()).expect("client connects");
    assert_eq!(
        client.warm_entries(),
        a_written + b_written,
        "the hello banner advertises the combined warm count"
    );

    // Both halves are answered from their respective snapshots.
    let served_a = client.analyze_all(half_a).expect("half A serves");
    assert!(
        served_a.cache.warm_hits > 0,
        "half A must hit snapshot A's entries: {:?}",
        served_a.cache
    );
    let served_b = client.analyze_all(half_b).expect("half B serves");
    assert!(
        served_b.cache.warm_hits > 0,
        "half B must hit snapshot B's entries: {:?}",
        served_b.cache
    );

    service.shutdown().expect("graceful drain");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn saturated_service_turns_connections_away_with_busy_and_recovers() {
    let corpus = ListCorpus::new("ServeBusyNode");
    let batch = corpus.batch(1);
    let engine = corpus_engine(&corpus).build().expect("engine builds");
    let service = Service::bind_with(
        engine,
        "127.0.0.1:0",
        ServeOptions {
            max_connections: Some(1),
            ..ServeOptions::default()
        },
    )
    .expect("service binds");
    let addr = service.local_addr();

    // The one admitted connection works normally.
    let mut first = Client::connect(addr).expect("first client connects");
    first.ping().expect("admitted connection serves");

    // The second is turned away with the typed busy frame, not a
    // silent close or a hung accept.
    match Client::connect(addr) {
        Err(ServeError::Busy { active, max }) => {
            assert_eq!((active, max), (1, 1));
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    // The turned-away connection cost nothing: the admitted one still
    // serves.
    first
        .ping()
        .expect("admitted connection survives the flood");
    let served = first.analyze_all(&batch).expect("batch still serves");
    assert_eq!(served.reports.len(), batch.len());

    // Dropping the admitted client frees the slot; the standard retry
    // path rides it out.
    drop(first);
    let mut retried = Client::connect_retry(addr, Duration::from_secs(10))
        .expect("retry lands once the slot frees");
    retried.ping().expect("recovered connection serves");

    service.shutdown().expect("graceful drain");
}

#[test]
fn verification_totals_ride_the_done_epilogue() {
    // A server built with the verification post-pass (`sling-serve
    // --verify`) grades every invariant it streams and sums the grades
    // into the batch's `done` frame.
    let corpus = ListCorpus::new("ServeVfyNode");
    let engine = corpus_engine(&corpus)
        .verification(sling::VerifySettings::default())
        .build()
        .expect("engine builds");
    let service = Service::bind(engine, "127.0.0.1:0").expect("service binds");
    let mut client = Client::connect(service.local_addr()).expect("client connects");
    assert_eq!(
        client.verify_totals(),
        sling_serve::VerifyTotals::default(),
        "no batch served yet"
    );

    let batch = corpus.batch(1);
    let served = client.analyze_all(&batch).expect("served batch runs");
    let totals = client.verify_totals();

    // The epilogue is exactly the sum of the streamed reports' metrics.
    let expect = |f: fn(&sling::RunMetrics) -> usize| -> u64 {
        served.reports.iter().map(|r| f(&r.metrics) as u64).sum()
    };
    assert_eq!(totals.verified, expect(|m| m.verified));
    assert_eq!(totals.refuted, expect(|m| m.refuted));
    assert_eq!(totals.confirmed, expect(|m| m.confirmed));
    assert_eq!(totals.unknown, expect(|m| m.unknown));
    assert_eq!(totals.refuted_initial, expect(|m| m.refuted_initial));
    assert_eq!(totals.cegir_rounds, expect(|m| m.cegir_rounds));

    let verify_off = matches!(std::env::var("SLING_VERIFY"), Ok(v)
        if v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false"));
    let graded = totals.verified + totals.refuted + totals.confirmed + totals.unknown;
    if verify_off {
        assert_eq!(graded, 0, "SLING_VERIFY=off leaves the epilogue inert");
    } else {
        assert!(graded > 0, "a --verify server must grade: {totals:?}");
        assert!(totals.verify_seconds > 0.0);
        assert_eq!(totals.refuted, 0, "refinement resolves refutations");
    }
    service.shutdown().expect("graceful drain");
}

#[test]
fn wire_codec_round_trips_served_corpus_reports() {
    // Property-style: every report the corpus produces must survive the
    // wire codec Debug-identically (formulas, residues, activations,
    // metrics bits and all).
    let corpus = ListCorpus::new("ServeCodecNode");
    let engine = corpus_engine(&corpus).build().expect("engine builds");
    let batch = engine
        .analyze_all(&corpus.batch(1))
        .expect("in-process batch runs");
    for report in &batch.reports {
        let line = wire::encode_report(report);
        let back = wire::decode_report(&line).expect("round trip decodes");
        assert_eq!(format!("{back:?}"), format!("{report:?}"));
    }
    // Requests round-trip too (the corpus batch is spec-only).
    for request in corpus.batch(2) {
        let line = wire::encode_request(&request).expect("specs encode");
        let back = wire::decode_request(&line).expect("round trip decodes");
        assert_eq!(format!("{back:?}"), format!("{request:?}"));
    }
}
