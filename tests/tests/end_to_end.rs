//! End-to-end integration tests spanning every crate: MiniC parsing →
//! tracing → model checking → inference → validation → matching, all
//! driven through the engine API.

use sling::{AnalysisRequest, Engine};
use sling_lang::Location;
use sling_logic::{parse_formula, Symbol};
use sling_suite::matcher::subsumes;
use sling_tests::list_inputs;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

const SLL_PREDS: &str = "pred sll(x: SNode*) := emp & x == nil
       | exists u, d. x -> SNode{next: u, data: d} * sll(u);
     pred lseg(x: SNode*, y: SNode*) := emp & x == y
       | exists u, d. x -> SNode{next: u, data: d} * lseg(u, y);";

fn sll_engine(source: &str) -> Engine {
    Engine::builder()
        .program_source(source)
        .expect("test program parses")
        .predicates_source(SLL_PREDS)
        .expect("test predicates parse")
        .build()
        .expect("test program checks")
}

#[test]
fn reverse_full_pipeline() {
    let engine = sll_engine(
        "struct SNode { next: SNode*; data: int; }
         fn reverse(x: SNode*) -> SNode* {
             var r: SNode* = null;
             while @inv (x != null) {
                 var t: SNode* = x->next;
                 x->next = r;
                 r = x;
                 x = t;
             }
             return r;
         }",
    );
    let request =
        AnalysisRequest::new("reverse").inputs(list_inputs("SNode", 2, Some(1), &[1, 5, 10]));
    let report = engine.analyze(&request).unwrap();

    // Precondition: sll(x).
    let entry = report.at(Location::Entry).expect("entry reached");
    let doc = parse_formula("sll(x)").unwrap();
    assert!(entry.invariants.iter().any(|i| subsumes(&i.formula, &doc)));

    // Loop invariant: sll(x) * sll(r).
    let head = report
        .at(Location::LoopHead(sym("inv")))
        .expect("loop reached");
    let doc = parse_formula("sll(x) * sll(r)").unwrap();
    assert!(
        head.invariants.iter().any(|i| subsumes(&i.formula, &doc)),
        "loop invariants: {:?}",
        head.invariants
            .iter()
            .map(|i| i.formula.to_string())
            .collect::<Vec<_>>()
    );

    // Postcondition: sll(res), plus the paper's bonus x == nil.
    let exit = report.at(Location::Exit(0)).expect("exit reached");
    let doc = parse_formula("sll(res) & x == nil").unwrap();
    assert!(
        exit.invariants
            .iter()
            .any(|i| !i.spurious && subsumes(&i.formula, &doc)),
        "exit invariants: {:?}",
        exit.invariants
            .iter()
            .map(|i| i.formula.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn frame_validation_flags_impossible_specs() {
    // A function that frees a node its caller still references: the exit
    // invariants are built from tainted traces and must be spurious.
    let engine = sll_engine(
        "struct SNode { next: SNode*; data: int; }
         fn dropHead(x: SNode*) -> SNode* {
             if (x == null) { return null; }
             var rest: SNode* = x->next;
             free(x);
             return rest;
         }",
    );
    let request =
        AnalysisRequest::new("dropHead").inputs(list_inputs("SNode", 2, Some(1), &[3, 6]));
    let report = engine.analyze(&request).unwrap();
    let exit = report.at(Location::Exit(1)).expect("non-nil exit reached");
    assert!(exit.tainted, "freed cells must taint the exit");
    assert!(exit.invariants.iter().all(|i| i.spurious));
}

#[test]
fn baseline_and_sling_agree_on_recursive_list_code() {
    let engine = sll_engine(
        "struct SNode { next: SNode*; data: int; }
         fn insertBack(x: SNode*, k: int) -> SNode* {
             if (x == null) { return new SNode { data: k }; }
             x->next = insertBack(x->next, k);
             return x;
         }",
    );

    // Baseline, sharing the engine's program and predicate environment.
    let spec = sling_biabduce::infer_spec(engine.program(), sym("insertBack"), engine.preds())
        .expect("in the supported fragment");
    assert_eq!(spec.pre.to_string(), "sll(x)");

    // SLING. insertBack takes a key too: adapt the sources.
    let inputs: Vec<sling::InputSource> = list_inputs("SNode", 2, Some(1), &[4])
        .into_iter()
        .map(|b| {
            sling::InputSource::custom(move |heap: &mut sling_lang::RtHeap| {
                let mut args = b.build(heap);
                args.push(sling_models::Val::Int(7));
                args
            })
        })
        .collect();
    let report = engine
        .analyze(&AnalysisRequest::new("insertBack").inputs(inputs))
        .unwrap();
    let doc = parse_formula("sll(res)").unwrap();
    for (exit, _) in &spec.posts {
        let analysis = report.at(Location::Exit(*exit)).expect("exit reached");
        assert!(
            analysis
                .invariants
                .iter()
                .any(|i| !i.spurious && subsumes(&i.formula, &doc)),
            "exit {exit}: {:?}",
            analysis
                .invariants
                .iter()
                .map(|i| i.formula.to_string())
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn partial_traces_from_crashing_programs() {
    // §5.4 red-black insert: the program crashes after the first
    // iteration but SLING still infers from the prefix.
    let engine = sll_engine(
        "struct SNode { next: SNode*; data: int; }
         fn crashy(x: SNode*) -> SNode* {
             @seen;
             var y: SNode* = x->next;
             return y->next;
         }",
    );
    let request = AnalysisRequest::new("crashy").inputs(list_inputs("SNode", 2, Some(1), &[2]));
    let report = engine.analyze(&request).unwrap();
    assert!(report.metrics.faulted_runs > 0, "the program crashes");
    let seen = report
        .at(Location::Label(sym("seen")))
        .expect("prefix traced");
    assert!(!seen.invariants.is_empty(), "partial invariants inferred");
}

#[test]
fn checker_agrees_with_inferred_invariants() {
    // Round-trip: every non-spurious inferred invariant must hold on the
    // models it was inferred from.
    use sling_checker::CheckCtx;
    use sling_lang::{TraceConfig, Tracer, Vm, VmConfig};

    let engine = sll_engine(
        "struct SNode { next: SNode*; data: int; }
         fn skipOne(x: SNode*) -> SNode* {
             if (x == null) { return null; }
             return x->next;
         }",
    );
    let inputs = list_inputs("SNode", 2, Some(1), &[3]);
    let report = engine
        .analyze(&AnalysisRequest::new("skipOne").inputs(list_inputs("SNode", 2, Some(1), &[3])))
        .unwrap();

    // Re-collect models and check each invariant formula.
    let ctx = CheckCtx::new(engine.types(), engine.preds());
    for source in &inputs {
        let mut vm = Vm::new(engine.program(), VmConfig::default());
        let args = source.build(&mut vm.heap);
        vm.set_tracer(Tracer::new(sym("skipOne"), TraceConfig::default()));
        let _ = vm.call(sym("skipOne"), &args);
        let tracer = vm.take_tracer().unwrap();
        for snap in &tracer.snapshots {
            let Some(analysis) = report.at(snap.location) else {
                continue;
            };
            for inv in &analysis.invariants {
                if !inv.spurious {
                    assert!(
                        ctx.check(&snap.model, &inv.formula).is_some(),
                        "invariant {} fails on a model at {}",
                        inv.formula,
                        snap.location
                    );
                }
            }
        }
    }
}
