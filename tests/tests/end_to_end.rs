//! End-to-end integration tests spanning every crate: MiniC parsing →
//! tracing → model checking → inference → validation → matching.

use sling::{analyze, SlingConfig};
use sling_lang::{check_program, parse_program, Location};
use sling_logic::{parse_formula, parse_predicates, PredEnv, Symbol};
use sling_suite::matcher::subsumes;
use sling_tests::list_inputs;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn sll_preds() -> PredEnv {
    let mut preds = PredEnv::new();
    for d in parse_predicates(
        "pred sll(x: SNode*) := emp & x == nil
           | exists u, d. x -> SNode{next: u, data: d} * sll(u);
         pred lseg(x: SNode*, y: SNode*) := emp & x == y
           | exists u, d. x -> SNode{next: u, data: d} * lseg(u, y);",
    )
    .unwrap()
    {
        preds.define(d).unwrap();
    }
    preds
}

#[test]
fn reverse_full_pipeline() {
    let program = parse_program(
        "struct SNode { next: SNode*; data: int; }
         fn reverse(x: SNode*) -> SNode* {
             var r: SNode* = null;
             while @inv (x != null) {
                 var t: SNode* = x->next;
                 x->next = r;
                 r = x;
                 x = t;
             }
             return r;
         }",
    )
    .unwrap();
    check_program(&program).unwrap();
    let types = program.type_env();
    let preds = sll_preds();
    let inputs = list_inputs("SNode", 2, Some(1), &[1, 5, 10]);
    let outcome =
        analyze(&program, sym("reverse"), &inputs, &types, &preds, &SlingConfig::default());

    // Precondition: sll(x).
    let entry = outcome.at(Location::Entry).expect("entry reached");
    let doc = parse_formula("sll(x)").unwrap();
    assert!(entry.invariants.iter().any(|i| subsumes(&i.formula, &doc)));

    // Loop invariant: sll(x) * sll(r).
    let head = outcome.at(Location::LoopHead(sym("inv"))).expect("loop reached");
    let doc = parse_formula("sll(x) * sll(r)").unwrap();
    assert!(
        head.invariants.iter().any(|i| subsumes(&i.formula, &doc)),
        "loop invariants: {:?}",
        head.invariants.iter().map(|i| i.formula.to_string()).collect::<Vec<_>>()
    );

    // Postcondition: sll(res), plus the paper's bonus x == nil.
    let exit = outcome.at(Location::Exit(0)).expect("exit reached");
    let doc = parse_formula("sll(res) & x == nil").unwrap();
    assert!(
        exit.invariants.iter().any(|i| !i.spurious && subsumes(&i.formula, &doc)),
        "exit invariants: {:?}",
        exit.invariants.iter().map(|i| i.formula.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn frame_validation_flags_impossible_specs() {
    // A function that frees a node its caller still references: the exit
    // invariants are built from tainted traces and must be spurious.
    let program = parse_program(
        "struct SNode { next: SNode*; data: int; }
         fn dropHead(x: SNode*) -> SNode* {
             if (x == null) { return null; }
             var rest: SNode* = x->next;
             free(x);
             return rest;
         }",
    )
    .unwrap();
    check_program(&program).unwrap();
    let types = program.type_env();
    let preds = sll_preds();
    let inputs = list_inputs("SNode", 2, Some(1), &[3, 6]);
    let outcome =
        analyze(&program, sym("dropHead"), &inputs, &types, &preds, &SlingConfig::default());
    let exit = outcome.at(Location::Exit(1)).expect("non-nil exit reached");
    assert!(exit.tainted, "freed cells must taint the exit");
    assert!(exit.invariants.iter().all(|i| i.spurious));
}

#[test]
fn baseline_and_sling_agree_on_recursive_list_code() {
    let src = "struct SNode { next: SNode*; data: int; }
         fn insertBack(x: SNode*, k: int) -> SNode* {
             if (x == null) { return new SNode { data: k }; }
             x->next = insertBack(x->next, k);
             return x;
         }";
    let program = parse_program(src).unwrap();
    check_program(&program).unwrap();
    let types = program.type_env();
    let preds = sll_preds();

    // Baseline.
    let spec = sling_biabduce::infer_spec(&program, sym("insertBack"), &preds)
        .expect("in the supported fragment");
    assert_eq!(spec.pre.to_string(), "sll(x)");

    // SLING.
    let mut inputs = list_inputs("SNode", 2, Some(1), &[4]);
    // insertBack takes a key too: adapt the builders.
    inputs = inputs
        .into_iter()
        .map(|b| {
            let f: sling::InputBuilder = Box::new(move |heap: &mut sling_lang::RtHeap| {
                let mut args = b(heap);
                args.push(sling_models::Val::Int(7));
                args
            });
            f
        })
        .collect();
    let outcome =
        analyze(&program, sym("insertBack"), &inputs, &types, &preds, &SlingConfig::default());
    let doc = parse_formula("sll(res)").unwrap();
    for (exit, _) in &spec.posts {
        let report = outcome.at(Location::Exit(*exit)).expect("exit reached");
        assert!(
            report.invariants.iter().any(|i| !i.spurious && subsumes(&i.formula, &doc)),
            "exit {exit}: {:?}",
            report.invariants.iter().map(|i| i.formula.to_string()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn partial_traces_from_crashing_programs() {
    // §5.4 red-black insert: the program crashes after the first
    // iteration but SLING still infers from the prefix.
    let program = parse_program(
        "struct SNode { next: SNode*; data: int; }
         fn crashy(x: SNode*) -> SNode* {
             @seen;
             var y: SNode* = x->next;
             return y->next;
         }",
    )
    .unwrap();
    check_program(&program).unwrap();
    let types = program.type_env();
    let preds = sll_preds();
    let inputs = list_inputs("SNode", 2, Some(1), &[2]);
    let outcome =
        analyze(&program, sym("crashy"), &inputs, &types, &preds, &SlingConfig::default());
    assert!(outcome.faulted_runs > 0, "the program crashes");
    let seen = outcome.at(Location::Label(sym("seen"))).expect("prefix traced");
    assert!(!seen.invariants.is_empty(), "partial invariants inferred");
}

#[test]
fn checker_agrees_with_inferred_invariants() {
    // Round-trip: every non-spurious inferred invariant must hold on the
    // models it was inferred from.
    use sling_checker::CheckCtx;
    use sling_lang::{TraceConfig, Tracer, Vm, VmConfig};

    let program = parse_program(
        "struct SNode { next: SNode*; data: int; }
         fn skipOne(x: SNode*) -> SNode* {
             if (x == null) { return null; }
             return x->next;
         }",
    )
    .unwrap();
    check_program(&program).unwrap();
    let types = program.type_env();
    let preds = sll_preds();
    let inputs = list_inputs("SNode", 2, Some(1), &[3]);
    let outcome =
        analyze(&program, sym("skipOne"), &inputs, &types, &preds, &SlingConfig::default());

    // Re-collect models and check each invariant formula.
    let ctx = CheckCtx::new(&types, &preds);
    for builder in &inputs {
        let mut vm = Vm::new(&program, VmConfig::default());
        let args = builder(&mut vm.heap);
        vm.set_tracer(Tracer::new(sym("skipOne"), TraceConfig::default()));
        let _ = vm.call(sym("skipOne"), &args);
        let tracer = vm.take_tracer().unwrap();
        for snap in &tracer.snapshots {
            let Some(report) = outcome.at(snap.location) else { continue };
            for inv in &report.invariants {
                if !inv.spurious {
                    assert!(
                        ctx.check(&snap.model, &inv.formula).is_some(),
                        "invariant {} fails on a model at {}",
                        inv.formula,
                        snap.location
                    );
                }
            }
        }
    }
}
