//! Property tests for the `sling::wire` codec and the `sling7` frame
//! layer on top of it: arbitrary `InputSpec`/`Report`/`CacheStats`
//! values round-trip bit-identically, requests round-trip with and
//! without per-request [`SlingConfig`] overrides, `analyze` frames
//! round-trip with and without a [`ProgramUpload`], frames tagged with
//! previous protocols (`sling6` and older) are rejected as
//! [`WireError::Version`], and arbitrary byte mutations of a valid
//! frame never panic — every malformed input is rejected with a typed
//! error.
//!
//! Values are generated from the deterministic `proptest` stub RNG
//! (seeded per case), so failures reproduce.

use proptest::prelude::*;
use proptest::TestRng;

use sling::wire::{self, WireError, WireReader, WireWriter};
use sling::{
    AnalysisRequest, CacheStats, DataOrder, Diagnostic, ExactCell, ExactVal, InputSpec, Invariant,
    InvariantGrade, InvariantStats, LocationAnalysis, Report, RunMetrics, Severity, SlingConfig,
    TreeKind, ValueSpec, VerifyConfig, VerifySettings,
};
use sling_lang::{ListLayout, Location, TreeLayout};
use sling_logic::{parse_formula, Span, SymHeap, Symbol};
use sling_models::{Heap, HeapCell, Loc, Val};
use sling_serve::proto::{encode_analyze_frame, ClientFrame};
use sling_serve::ProgramUpload;

fn rng_for(name: &str, case: u64) -> TestRng {
    TestRng::deterministic(&format!("{name}-{case}"))
}

/// A value that exercises a tag's whole range: extremes early, then
/// arbitrary.
fn pick_i64(rng: &mut TestRng) -> i64 {
    match rng.next_u64() % 5 {
        0 => i64::MIN,
        1 => i64::MAX,
        2 => 0,
        3 => -1,
        _ => rng.next_u64() as i64,
    }
}

fn pick_u64(rng: &mut TestRng) -> u64 {
    match rng.next_u64() % 4 {
        0 => 0,
        1 => u64::MAX,
        _ => rng.next_u64(),
    }
}

fn arb_list_layout(rng: &mut TestRng) -> ListLayout {
    let nfields = 1 + (rng.next_u64() % 4) as usize;
    ListLayout {
        ty: Symbol::intern(&format!("WpNode{}", rng.next_u64() % 4)),
        nfields,
        next: 0,
        prev: (rng.next_u64().is_multiple_of(2) && nfields > 1).then_some(1),
        data: (rng.next_u64().is_multiple_of(2) && nfields > 2).then_some(2),
    }
}

fn arb_tree_layout(rng: &mut TestRng) -> TreeLayout {
    let nfields = 2 + (rng.next_u64() % 4) as usize;
    TreeLayout {
        ty: Symbol::intern(&format!("WpTree{}", rng.next_u64() % 4)),
        nfields,
        left: 0,
        right: 1,
        parent: (rng.next_u64().is_multiple_of(2) && nfields > 2).then_some(2),
        data: (rng.next_u64().is_multiple_of(2) && nfields > 3).then_some(3),
        color: (rng.next_u64().is_multiple_of(2) && nfields > 4).then_some(4),
    }
}

fn arb_exact_spec(rng: &mut TestRng) -> ValueSpec {
    let ncells = (rng.next_u64() % 4) as usize;
    let cells = (0..ncells)
        .map(|_| ExactCell {
            ty: Symbol::intern(&format!("WpNode{}", rng.next_u64() % 4)),
            fields: (0..1 + rng.next_u64() % 3)
                .map(|_| match rng.next_u64() % 3 {
                    0 => ExactVal::Nil,
                    1 => ExactVal::Int(pick_i64(rng)),
                    _ => ExactVal::Cell((rng.next_u64() % ncells as u64) as usize),
                })
                .collect(),
        })
        .collect();
    ValueSpec::exact(cells)
}

fn arb_value_spec(rng: &mut TestRng) -> ValueSpec {
    match rng.next_u64() % 6 {
        0 => ValueSpec::nil(),
        5 => arb_exact_spec(rng),
        1 => ValueSpec::int(pick_i64(rng)),
        2 => {
            let (a, b) = (pick_i64(rng), pick_i64(rng));
            ValueSpec::int_in(a.min(b), a.max(b))
        }
        3 => {
            let layout = arb_list_layout(rng);
            let len = (rng.next_u64() % 64) as usize;
            let order = match rng.next_u64() % 3 {
                0 => DataOrder::Random,
                1 => DataOrder::Sorted,
                _ => DataOrder::Reversed,
            };
            let base = if rng.next_u64().is_multiple_of(2) {
                ValueSpec::sll(layout, len)
            } else if layout.prev.is_some() {
                ValueSpec::dll(layout, len)
            } else {
                ValueSpec::cyclic(layout, len)
            };
            base.with_order(order)
        }
        _ => {
            let kind = match rng.next_u64() % 4 {
                0 => TreeKind::Random,
                1 => TreeKind::Bst,
                2 => TreeKind::Balanced,
                _ => TreeKind::RedBlack,
            };
            ValueSpec::tree(arb_tree_layout(rng), (rng.next_u64() % 32) as usize, kind)
        }
    }
}

fn arb_input_spec(rng: &mut TestRng) -> InputSpec {
    let mut spec = InputSpec::seeded(pick_u64(rng));
    for _ in 0..(rng.next_u64() % 4) {
        spec = spec.arg(arb_value_spec(rng));
    }
    spec
}

fn arb_config(rng: &mut TestRng) -> SlingConfig {
    let mut config = SlingConfig::default();
    config.check.node_budget = pick_u64(rng);
    config.check.fuel_slack = rng.next_u64() as u32;
    config.infer.max_results_per_var = (rng.next_u64() % (1 << 20)) as usize;
    config.infer.max_candidates_per_pred = (rng.next_u64() % (1 << 20)) as usize;
    config.infer.require_nonvacuous = rng.next_u64().is_multiple_of(2);
    config.max_results_per_location = (rng.next_u64() % (1 << 20)) as usize;
    config.dedupe_models = rng.next_u64().is_multiple_of(2);
    config.max_models_per_location = (rng.next_u64() % (1 << 20)) as usize;
    config.vm.max_steps = pick_u64(rng);
    config.vm.max_depth = (rng.next_u64() % (1 << 20)) as usize;
    config.trace.observe_freed = rng.next_u64().is_multiple_of(2);
    config.executor = if rng.next_u64().is_multiple_of(2) {
        sling::Executor::Bytecode
    } else {
        sling::Executor::Treewalk
    };
    config.verify = rng.next_u64().is_multiple_of(2).then(|| VerifySettings {
        prover: VerifyConfig {
            fuel: rng.next_u64() as u32,
            max_depth: rng.next_u64() as u32,
            max_models: (rng.next_u64() % (1 << 20)) as usize,
            max_references: (rng.next_u64() % (1 << 20)) as usize,
        },
        cegir_rounds: (rng.next_u64() % 16) as usize,
    });
    config
}

fn arb_request(rng: &mut TestRng) -> AnalysisRequest {
    let hostile_names = [
        "plain",
        "with space",
        "quo\"te",
        "esc\\ape",
        "multi\nline\ttabs",
        "",
    ];
    let name = hostile_names[(rng.next_u64() % hostile_names.len() as u64) as usize];
    let mut request = AnalysisRequest::new(name);
    for _ in 0..(rng.next_u64() % 3) {
        request = request.input(arb_input_spec(rng));
    }
    // Half the requests carry a per-request config override (sling5's
    // `cfg` slot), half ride the engine default (`-`).
    if rng.next_u64().is_multiple_of(2) {
        request = request.config(arb_config(rng));
    }
    request
}

/// Hostile-but-encodable program/predicate sources: quoting, escapes,
/// newlines, emptiness — the text codec must carry them unharmed.
fn arb_upload(rng: &mut TestRng) -> ProgramUpload {
    let sources = [
        "",
        "fn broken( {",
        "struct N { next: N*; }\nfn id(x: N*) -> N* { return x; }",
        "quo\"te \\esc\\ape\ttabs",
        "line one\nline two\r\nline three",
    ];
    ProgramUpload {
        program: sources[(rng.next_u64() % sources.len() as u64) as usize].to_string(),
        predicates: sources[(rng.next_u64() % sources.len() as u64) as usize].to_string(),
    }
}

fn arb_cache_stats(rng: &mut TestRng) -> CacheStats {
    CacheStats {
        hits: pick_u64(rng),
        warm_hits: pick_u64(rng),
        misses: pick_u64(rng),
        entries: pick_u64(rng),
        evictions: pick_u64(rng),
        resident_bytes: pick_u64(rng),
        remote_hits: pick_u64(rng),
        remote_misses: pick_u64(rng),
        remote_degraded: pick_u64(rng),
        remote_nanos: pick_u64(rng),
    }
}

fn arb_metrics(rng: &mut TestRng) -> RunMetrics {
    RunMetrics {
        traces: (rng.next_u64() % (1 << 20)) as usize,
        runs: (rng.next_u64() % (1 << 20)) as usize,
        faulted_runs: (rng.next_u64() % (1 << 20)) as usize,
        workers: (rng.next_u64() % 256) as usize,
        // Arbitrary bit patterns, including NaNs and infinities: the
        // codec ships IEEE bits, so all must survive exactly.
        seconds: f64::from_bits(pick_u64(rng)),
        verified: (rng.next_u64() % (1 << 20)) as usize,
        refuted: (rng.next_u64() % (1 << 20)) as usize,
        confirmed: (rng.next_u64() % (1 << 20)) as usize,
        unknown: (rng.next_u64() % (1 << 20)) as usize,
        refuted_initial: (rng.next_u64() % (1 << 20)) as usize,
        cegir_rounds: (rng.next_u64() % 16) as usize,
        verify_seconds: f64::from_bits(pick_u64(rng)),
        collect_seconds: f64::from_bits(pick_u64(rng)),
        compile_seconds: f64::from_bits(pick_u64(rng)),
        executor: if rng.next_u64().is_multiple_of(2) {
            sling::Executor::Bytecode
        } else {
            sling::Executor::Treewalk
        },
        static_warnings: (rng.next_u64() % (1 << 20)) as usize,
        remote_hits: pick_u64(rng),
        remote_misses: pick_u64(rng),
        remote_degraded: pick_u64(rng),
        remote_seconds: f64::from_bits(pick_u64(rng)),
    }
}

fn arb_diagnostic(rng: &mut TestRng) -> Diagnostic {
    let codes = ["SA001", "SA003", "SA006", "SL001", "quo\"te", ""];
    let texts = ["", "plain", "with space", "esc\\ape\ttabs", "multi\nline"];
    let pick_text = |rng: &mut TestRng| -> String {
        texts[(rng.next_u64() % texts.len() as u64) as usize].to_string()
    };
    Diagnostic {
        code: codes[(rng.next_u64() % codes.len() as u64) as usize].to_string(),
        severity: if rng.next_u64().is_multiple_of(2) {
            Severity::Warning
        } else {
            Severity::Deny
        },
        function: rng
            .next_u64()
            .is_multiple_of(2)
            .then(|| Symbol::intern(&format!("wp_fn{}", rng.next_u64() % 4))),
        span: Span::new(
            (rng.next_u64() % 1000) as u32,
            (rng.next_u64() >> 16) as u32,
        ),
        message: pick_text(rng),
        notes: (0..rng.next_u64() % 3).map(|_| pick_text(rng)).collect(),
    }
}

fn arb_location(rng: &mut TestRng) -> Location {
    match rng.next_u64() % 4 {
        0 => Location::Entry,
        1 => Location::Exit((rng.next_u64() % 16) as usize),
        2 => Location::Label(Symbol::intern(&format!("lbl{}", rng.next_u64() % 8))),
        _ => Location::LoopHead(Symbol::intern(&format!("loop{}", rng.next_u64() % 8))),
    }
}

/// A formula pool normalized to print/parse fixpoints, so decoded
/// formulas are `Debug`-identical to the originals.
fn formula_pool() -> Vec<SymHeap> {
    [
        "emp & x == nil",
        "wplist(x)",
        "wpseg(x, y) * wplist(y)",
        "exists u. x -> WpNode0{next: u} * wplist(u)",
        "exists u, d. x -> WpNode1{next: u, data: d} * wpseg(u, y) & x != y",
    ]
    .iter()
    .map(|text| {
        let parsed = parse_formula(text).expect("pool parses");
        parse_formula(&parsed.to_string()).expect("printer round-trips")
    })
    .collect()
}

fn arb_heap(rng: &mut TestRng) -> Heap {
    let mut heap = Heap::new();
    for _ in 0..(rng.next_u64() % 4) {
        let loc = Loc::new(1 + rng.next_u64() % 1000); // 0 is nil, reserved
        let nfields = 1 + rng.next_u64() % 3;
        let fields = (0..nfields)
            .map(|_| match rng.next_u64() % 3 {
                0 => Val::Nil,
                1 => Val::Int(pick_i64(rng)),
                _ => Val::Addr(Loc::new(1 + rng.next_u64() % 1000)),
            })
            .collect();
        heap.insert(
            loc,
            HeapCell::new(
                Symbol::intern(&format!("WpNode{}", rng.next_u64() % 2)),
                fields,
            ),
        );
    }
    heap
}

fn arb_invariant(rng: &mut TestRng, pool: &[SymHeap]) -> Invariant {
    Invariant {
        location: arb_location(rng),
        formula: pool[(rng.next_u64() % pool.len() as u64) as usize].clone(),
        residues: (0..rng.next_u64() % 3).map(|_| arb_heap(rng)).collect(),
        activations: (0..rng.next_u64() % 5).map(|_| pick_u64(rng)).collect(),
        stats: InvariantStats {
            singletons: (rng.next_u64() % 16) as usize,
            preds: (rng.next_u64() % 16) as usize,
            pures: (rng.next_u64() % 16) as usize,
        },
        spurious: rng.next_u64().is_multiple_of(2),
        grade: match rng.next_u64() % 5 {
            0 => InvariantGrade::Ungraded,
            1 => InvariantGrade::Verified,
            2 => InvariantGrade::Refuted,
            3 => InvariantGrade::Confirmed,
            _ => InvariantGrade::Unknown,
        },
    }
}

fn arb_report(rng: &mut TestRng, pool: &[SymHeap]) -> Report {
    Report {
        target: Symbol::intern(&format!(
            "fn {} \"{}\"",
            rng.next_u64() % 8,
            rng.next_u64() % 8
        )),
        locations: (0..rng.next_u64() % 4)
            .map(|_| LocationAnalysis {
                location: arb_location(rng),
                invariants: (0..rng.next_u64() % 3)
                    .map(|_| arb_invariant(rng, pool))
                    .collect(),
                models_used: (rng.next_u64() % 64) as usize,
                snapshots_seen: (rng.next_u64() % 64) as usize,
                tainted: rng.next_u64().is_multiple_of(2),
            })
            .collect(),
        declared_locations: (0..rng.next_u64() % 4).map(|_| arb_location(rng)).collect(),
        metrics: arb_metrics(rng),
        cache: arb_cache_stats(rng),
        static_warnings: (0..rng.next_u64() % 3)
            .map(|_| arb_diagnostic(rng))
            .collect(),
        unreachable_locations: (0..rng.next_u64() % 3).map(|_| arb_location(rng)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary spec-built requests round-trip Debug-identically, and
    /// the decoded specs materialize bit-identical inputs.
    #[test]
    fn requests_round_trip(case in 0u64..1_000_000) {
        let mut rng = rng_for("wire-req", case);
        let request = arb_request(&mut rng);
        let line = wire::encode_request(&request).expect("specs always encode");
        let back = wire::decode_request(&line).expect("valid frames decode");
        prop_assert_eq!(format!("{back:?}"), format!("{request:?}"));
    }

    /// Arbitrary cache stats round-trip value-identically (all six
    /// counters, extremes included).
    #[test]
    fn cache_stats_round_trip(case in 0u64..1_000_000) {
        let mut rng = rng_for("wire-stats", case);
        let stats = arb_cache_stats(&mut rng);
        let mut w = WireWriter::new();
        wire::write_cache_stats(&mut w, &stats);
        let line = w.finish();
        let mut r = WireReader::new(&line);
        let back = wire::read_cache_stats(&mut r).expect("round trip decodes");
        r.finish().expect("no trailing tokens");
        prop_assert_eq!(back, stats);
    }

    /// Arbitrary metrics round-trip with exact `f64` bits — NaN
    /// payloads and infinities included.
    #[test]
    fn metrics_round_trip_bit_exact(case in 0u64..1_000_000) {
        let mut rng = rng_for("wire-metrics", case);
        let metrics = arb_metrics(&mut rng);
        let mut w = WireWriter::new();
        wire::write_metrics(&mut w, &metrics);
        let line = w.finish();
        let mut r = WireReader::new(&line);
        let back = wire::read_metrics(&mut r).expect("round trip decodes");
        r.finish().expect("no trailing tokens");
        prop_assert_eq!(back.seconds.to_bits(), metrics.seconds.to_bits());
        prop_assert_eq!(back.verify_seconds.to_bits(), metrics.verify_seconds.to_bits());
        prop_assert_eq!(
            (back.traces, back.runs, back.faulted_runs, back.workers),
            (metrics.traces, metrics.runs, metrics.faulted_runs, metrics.workers)
        );
        prop_assert_eq!(
            (back.verified, back.refuted, back.confirmed, back.unknown),
            (metrics.verified, metrics.refuted, metrics.confirmed, metrics.unknown)
        );
        prop_assert_eq!(
            (back.refuted_initial, back.cegir_rounds),
            (metrics.refuted_initial, metrics.cegir_rounds)
        );
    }

    /// Arbitrary synthetic reports — hostile target names, random
    /// residue heaps, extreme counters — round-trip Debug-identically.
    #[test]
    fn reports_round_trip(case in 0u64..1_000_000) {
        let mut rng = rng_for("wire-report", case);
        let pool = formula_pool();
        let report = arb_report(&mut rng, &pool);
        let line = wire::encode_report(&report);
        let back = wire::decode_report(&line).expect("valid frames decode");
        prop_assert_eq!(format!("{back:?}"), format!("{report:?}"));
    }

    /// `analyze` frames round-trip Debug-identically with and without
    /// an uploaded tenant — hostile sources, per-request config
    /// overrides, extreme batch ids included.
    #[test]
    fn analyze_frames_round_trip(case in 0u64..1_000_000) {
        let mut rng = rng_for("wire-analyze", case);
        let id = pick_u64(&mut rng);
        let upload = rng.next_u64().is_multiple_of(2).then(|| arb_upload(&mut rng));
        let requests: Vec<AnalysisRequest> =
            (0..rng.next_u64() % 3).map(|_| arb_request(&mut rng)).collect();
        let line = encode_analyze_frame(id, upload.as_ref(), &requests)
            .expect("spec-built requests always encode");
        let back = ClientFrame::decode(&line).expect("valid frames decode");
        let expected = ClientFrame::Analyze { id, upload, requests };
        prop_assert_eq!(format!("{back:?}"), format!("{expected:?}"));
        prop_assert_eq!(ClientFrame::salvage_id(&line), id);
    }

    /// Every frame shape tagged with the previous protocol version is
    /// rejected as `WireError::Version` carrying the found tag — old
    /// clients get a typed refusal, not a misparse of the new grammar.
    #[test]
    fn previous_protocol_versions_are_rejected_typed(case in 0u64..1_000_000) {
        let mut rng = rng_for("wire-downlevel", case);
        let pool = formula_pool();
        let request_line =
            wire::encode_request(&arb_request(&mut rng)).expect("specs always encode");
        let report_line = wire::encode_report(&arb_report(&mut rng, &pool));
        let upload = arb_upload(&mut rng);
        let analyze_line = encode_analyze_frame(pick_u64(&mut rng), Some(&upload), &[])
            .expect("upload-only frames encode");
        for old in ["sling6", "sling5", "sling4", "sling3", "sling2", "sling1"] {
            let downlevel = |line: &str| line.replacen(wire::WIRE_VERSION, old, 1);
            prop_assert!(matches!(
                wire::decode_request(&downlevel(&request_line)),
                Err(WireError::Version(v)) if v == old
            ));
            prop_assert!(matches!(
                wire::decode_report(&downlevel(&report_line)),
                Err(WireError::Version(v)) if v == old
            ));
            prop_assert!(matches!(
                ClientFrame::decode(&downlevel(&analyze_line)),
                Err(WireError::Version(v)) if v == old
            ));
        }
    }

    /// Byte-level mutations of valid frames never panic the decoder:
    /// every outcome is a clean `Ok` (the mutation landed somewhere
    /// harmless) or a typed `WireError`.
    #[test]
    fn mutated_frames_never_panic(case in 0u64..1_000_000) {
        let mut rng = rng_for("wire-mutate", case);
        let pool = formula_pool();
        let report_line = wire::encode_report(&arb_report(&mut rng, &pool));
        let request_line =
            wire::encode_request(&arb_request(&mut rng)).expect("specs always encode");
        let upload = arb_upload(&mut rng);
        let analyze_line = encode_analyze_frame(
            pick_u64(&mut rng),
            Some(&upload),
            &[arb_request(&mut rng)],
        )
        .expect("specs always encode");
        for line in [report_line, request_line, analyze_line] {
            let mut bytes = line.clone().into_bytes();
            for _ in 0..8 {
                match rng.next_u64() % 3 {
                    0 if !bytes.is_empty() => {
                        // Overwrite one byte with an arbitrary one.
                        let at = (rng.next_u64() % bytes.len() as u64) as usize;
                        bytes[at] = (rng.next_u64() & 0xff) as u8;
                    }
                    1 if !bytes.is_empty() => {
                        // Truncate at an arbitrary point.
                        let at = (rng.next_u64() % bytes.len() as u64) as usize;
                        bytes.truncate(at);
                    }
                    _ => {
                        // Insert an arbitrary byte.
                        let at = (rng.next_u64() % (bytes.len() as u64 + 1)) as usize;
                        bytes.insert(at, (rng.next_u64() & 0xff) as u8);
                    }
                }
                let mutated = String::from_utf8_lossy(&bytes).into_owned();
                // Every decoder entry point must return, not panic;
                // errors must be the typed WireError (guaranteed by the
                // signature — the assertion is that we get here at all).
                let _ = wire::decode_report(&mutated);
                let _ = wire::decode_request(&mutated);
                let _ = ClientFrame::decode(&mutated);
                let _ = ClientFrame::salvage_id(&mutated);
            }
        }
    }
}

/// The report encoder asserts (debug builds) that atoms stay bare; the
/// public writer API must uphold it for every value the proptests
/// generate. This spot-checks the token layer against quoting abuse.
#[test]
fn token_layer_handles_hostile_strings() {
    let hostile = "a\\b\"c\nd\re\tf g";
    let mut w = WireWriter::new();
    w.text(hostile);
    let line = w.finish();
    let mut r = WireReader::new(&line);
    assert_eq!(r.text().unwrap(), hostile);
    r.finish().unwrap();
}
