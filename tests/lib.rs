//! Shared helpers for the cross-crate integration tests in `tests/`.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use sling::InputBuilder;
use sling_lang::{gen_list, DataOrder, ListLayout, RtHeap};
use sling_logic::Symbol;

/// Input builders for a one-list function: nil plus lists of the given
/// sizes.
pub fn list_inputs(
    ty: &str,
    nfields: usize,
    data: Option<usize>,
    sizes: &[usize],
) -> Vec<InputBuilder> {
    let layout = ListLayout {
        ty: Symbol::intern(ty),
        nfields,
        next: 0,
        prev: None,
        data,
    };
    let mut out: Vec<InputBuilder> = vec![Box::new(|_: &mut RtHeap| vec![sling_models::Val::Nil])];
    for (i, &n) in sizes.iter().enumerate() {
        let builder: InputBuilder = Box::new(move |heap: &mut RtHeap| {
            let mut rng = StdRng::seed_from_u64(i as u64 + 1);
            vec![gen_list(heap, &layout, n, DataOrder::Random, &mut rng)]
        });
        out.push(builder);
    }
    out
}
