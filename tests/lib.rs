//! Shared helpers for the cross-crate integration tests in `tests/`.

#![warn(missing_docs)]

use sling::{InputSource, InputSpec, ListLayout, ValueSpec};
use sling_logic::Symbol;

/// Test inputs for a one-list function: nil plus seeded random lists of
/// the given sizes, as declarative specs.
pub fn list_inputs(
    ty: &str,
    nfields: usize,
    data: Option<usize>,
    sizes: &[usize],
) -> Vec<InputSource> {
    let layout = ListLayout {
        ty: Symbol::intern(ty),
        nfields,
        next: 0,
        prev: None,
        data,
    };
    let mut out: Vec<InputSource> = vec![InputSpec::new().arg(ValueSpec::nil()).into()];
    for (i, &n) in sizes.iter().enumerate() {
        out.push(
            InputSpec::seeded(i as u64 + 1)
                .arg(ValueSpec::sll(layout, n))
                .into(),
        );
    }
    out
}
