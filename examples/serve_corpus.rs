//! Replaying the list corpus through the analysis service.
//!
//! Boots a `sling-serve` service (in-process on an ephemeral loopback
//! port by default), replays the four-function `ListCorpus` batch
//! through the blocking client, and diffs every served formula against
//! an in-process `Engine::analyze_all` over the same corpus — the two
//! must agree formula for formula, which makes this example double as
//! an end-to-end check of the wire protocol:
//!
//! ```sh
//! cargo run -p sling-examples --example serve_corpus
//! # or against an already-running server (which must serve the same corpus):
//! sling-serve --corpus ServeCorpusNode --addr 127.0.0.1:7341 &
//! cargo run -p sling-examples --example serve_corpus -- 127.0.0.1:7341
//! # a custom node-type name needs to match on both sides:
//! cargo run -p sling-examples --example serve_corpus -- 127.0.0.1:7341 CiNode
//! ```
//!
//! Exits nonzero when any served formula differs from its in-process
//! counterpart.

use std::time::Duration;

use sling::{Engine, Report};
use sling_serve::{Client, Service};
use sling_suite::fixtures::ListCorpus;

/// Everything formula-relevant about a report, for the served-equals-
/// in-process diff (timing and cache deltas legitimately differ).
fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{}\n", report.target);
    for loc in &report.locations {
        let _ = writeln!(out, "  {}", loc.location);
        for inv in &loc.invariants {
            let _ = writeln!(out, "    [spurious={}] {}", inv.spurious, inv.formula);
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::args().nth(1);
    let node = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "ServeCorpusNode".to_string());
    let corpus = ListCorpus::new(&node);
    let batch = corpus.batch(1);

    // The in-process reference: same corpus, same engine defaults.
    let reference = Engine::builder()
        .program_source(&corpus.program())?
        .predicates_source(&corpus.predicates())?
        .build()?
        .analyze_all(&batch)?;

    // The served run: an external server when an address was given,
    // else an in-process service on an ephemeral loopback port.
    let local = match addr {
        Some(_) => None,
        None => {
            let engine = Engine::builder()
                .program_source(&corpus.program())?
                .predicates_source(&corpus.predicates())?
                .build()?;
            Some(Service::bind(engine, "127.0.0.1:0")?)
        }
    };
    let target = match (&addr, &local) {
        (Some(addr), _) => addr.clone(),
        (None, Some(service)) => service.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    let mut client = Client::connect_retry(target.as_str(), Duration::from_secs(10))?;
    println!(
        "connected to {target} ({} warm cache entries, {} workers)",
        client.warm_entries(),
        client.parallelism()
    );
    let mut streamed = 0usize;
    let served = client.analyze_all_with(&batch, |index, report| {
        streamed += 1;
        println!(
            "  streamed report {index}: {} ({} invariants)",
            report.target,
            report.invariant_count()
        );
    })?;
    assert_eq!(
        streamed,
        batch.len(),
        "every report must stream exactly once"
    );

    let mut mismatches = 0;
    for (mine, theirs) in reference.reports.iter().zip(&served.reports) {
        if fingerprint(mine) != fingerprint(theirs) {
            eprintln!(
                "MISMATCH for `{}`:\n--- in-process ---\n{}--- served ---\n{}",
                mine.target,
                fingerprint(mine),
                fingerprint(theirs)
            );
            mismatches += 1;
        }
    }
    if let Some(service) = local {
        service.shutdown()?;
    }
    if mismatches > 0 {
        return Err(format!("{mismatches} served reports diverged").into());
    }
    println!(
        "served output identical to in-process analyze_all: {} targets, {} invariants, cache {}",
        served.reports.len(),
        served
            .reports
            .iter()
            .map(Report::invariant_count)
            .sum::<usize>(),
        served.cache
    );
    Ok(())
}
