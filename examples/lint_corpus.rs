//! The corpus lint gate: runs the static diagnostics pass
//! (`sling-analysis`, the same lints `EngineBuilder::static_analysis`
//! and the serve upload gate enforce) over every benchmark and fails
//! if any *deny* finding appears — the corpus must always build under
//! the strictest gate. Warnings are tolerated only where expected: the
//! five seeded-bug `∗` programs carry a snapshot of their warning
//! fingerprints below, and any drift (a new warning anywhere, or a
//! snapshotted one disappearing without this file being updated) fails
//! the gate too.
//!
//! ```sh
//! cargo run --release -p sling-examples --example lint_corpus
//! # optional bench-name substring filters:
//! cargo run --release -p sling-examples --example lint_corpus -- sll
//! ```
//!
//! Exit status: 0 when the corpus is lint-clean (modulo the snapshot),
//! 1 on any deny finding or warning drift, 2 on misuse.

use sling::{analyze_program, AnalysisSettings, Severity};
use sling_lang::{check_program, parse_program};
use sling_suite::corpus::all_benches;

/// Expected warnings, one `"bench-name code function"` fingerprint per
/// finding. Add a fingerprint here (with a justification) only when a
/// benchmark *must* warn — a seeded-bug or paper-verbatim program whose
/// finding is the bug.
const EXPECTED_WARNINGS: &[&str] = &[
    // The §5.4 bug-explanation program, verbatim from the paper: the
    // seeded bug comments out `j = k;`, so `j` is never read — but the
    // tracer still snapshots it at `@inv` and the expected invariant
    // names it, so the variable must stay.
    "afwp_dll/dll_fix SA004 dll_fix",
];

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).collect();
    let benches: Vec<_> = all_benches()
        .into_iter()
        .filter(|b| filters.is_empty() || filters.iter().any(|f| b.name.contains(f.as_str())))
        .collect();
    if benches.is_empty() {
        eprintln!("no benchmark matches {filters:?}");
        std::process::exit(2);
    }

    let settings = AnalysisSettings::default();
    let mut denies = 0usize;
    let mut warnings: Vec<String> = Vec::new();
    for bench in &benches {
        let program = match parse_program(bench.source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: parse error: {e}", bench.name);
                std::process::exit(1);
            }
        };
        if let Err(e) = check_program(&program) {
            eprintln!("{}: type error: {e}", bench.name);
            std::process::exit(1);
        }
        let analysis = analyze_program(&program, &settings);
        for d in analysis.diagnostics.iter() {
            let fn_name = d.function.map(|f| f.to_string()).unwrap_or_default();
            match d.severity {
                Severity::Deny => {
                    denies += 1;
                    eprintln!(
                        "{}: DENY [{}] {} ({})",
                        bench.name, d.code, d.message, fn_name
                    );
                }
                Severity::Warning => {
                    let fingerprint = format!("{} {} {}", bench.name, d.code, fn_name);
                    eprintln!("{}: warning [{}] {}", bench.name, d.code, d.message);
                    warnings.push(fingerprint);
                }
            }
        }
    }

    let unexpected: Vec<_> = warnings
        .iter()
        .filter(|w| !EXPECTED_WARNINGS.contains(&w.as_str()))
        .collect();
    let missing: Vec<_> = EXPECTED_WARNINGS
        .iter()
        .filter(|e| filters.is_empty() && !warnings.iter().any(|w| w == *e))
        .collect();

    println!(
        "corpus lint: {} benchmark(s), {} deny finding(s), {} warning(s) \
         ({} unexpected, {} snapshotted-but-gone)",
        benches.len(),
        denies,
        warnings.len(),
        unexpected.len(),
        missing.len(),
    );
    if denies > 0 || !unexpected.is_empty() || !missing.is_empty() {
        for w in unexpected {
            eprintln!("unexpected warning: {w}");
        }
        for e in missing {
            eprintln!("snapshotted warning no longer fires: {e}");
        }
        std::process::exit(1);
    }
}
