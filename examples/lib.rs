//! Shared nothing: this package only hosts the runnable examples
//! (`cargo run -p sling-examples --example quickstart`).
