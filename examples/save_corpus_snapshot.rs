//! Saves an entailment-cache snapshot from a subset of the list
//! corpus — the seed tool for snapshot-directory demos and the CI
//! merge check.
//!
//! ```sh
//! # Two siblings cover disjoint corpus halves into one directory:
//! cargo run -p sling-examples --example save_corpus_snapshot -- \
//!     /tmp/snaps/a.snap MergeNode reverse traverse
//! cargo run -p sling-examples --example save_corpus_snapshot -- \
//!     /tmp/snaps/b.snap MergeNode append last
//! # A daemon booted on the directory merges both at boot:
//! sling-serve --corpus MergeNode --cache /tmp/snaps --addr 127.0.0.1:0
//! ```
//!
//! With no target arguments the whole corpus runs. The process exits
//! nonzero when nothing was written (an empty snapshot would make the
//! merge checks vacuous).

use sling::Engine;
use sling_suite::fixtures::ListCorpus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let (Some(path), Some(node)) = (args.next(), args.next()) else {
        eprintln!(
            "usage: save_corpus_snapshot <path> <node-type> [target...]\n\
             targets default to the whole corpus (reverse traverse append last)"
        );
        std::process::exit(2);
    };
    let targets: Vec<String> = args.collect();

    let corpus = ListCorpus::new(node);
    let engine = Engine::builder()
        .program_source(&corpus.program())?
        .predicates_source(&corpus.predicates())?
        .build()?;

    let requests: Vec<_> = corpus
        .batch(1)
        .into_iter()
        .filter(|request| {
            targets.is_empty() || targets.iter().any(|t| *t == request.target.to_string())
        })
        .collect();
    if requests.is_empty() {
        eprintln!("no corpus target matches {targets:?}");
        std::process::exit(2);
    }
    let batch = engine.analyze_all(&requests)?;
    let written = engine.save_cache_to(&path)?;
    println!(
        "{written} entries -> {path} ({} invariants across {} target(s); cache: {})",
        batch.invariant_count(),
        batch.reports.len(),
        batch.cache
    );
    if written == 0 {
        eprintln!("snapshot is empty; refusing to pretend this seeded anything");
        std::process::exit(1);
    }
    Ok(())
}
