//! Two tenants, one daemon: analysis as a service over `sling5`.
//!
//! Connects to a `sling-serve` daemon (an external one when an address
//! is given, else an in-process service booted with *no* default
//! program), uploads two distinct list corpora from two concurrent
//! client threads, and diffs every served formula against an
//! in-process `Engine::analyze_all` over the same sources. The daemon
//! never saw either program before the upload — the pool builds each
//! tenant on first sight and reuses it after — so this example doubles
//! as an end-to-end check of multi-tenant isolation:
//!
//! ```sh
//! cargo run -p sling-examples --example multi_tenant
//! # or against an already-running uploads-only daemon:
//! sling-serve --pool-cap 4 --addr 127.0.0.1:7343 &
//! cargo run -p sling-examples --example multi_tenant -- 127.0.0.1:7343
//! # custom node-type names for the two tenants:
//! cargo run -p sling-examples --example multi_tenant -- 127.0.0.1:7343 CiNodeA CiNodeB
//! ```
//!
//! Exits nonzero when any served formula differs from its in-process
//! counterpart, and prints the pool's hit/miss/eviction counters as
//! seen on the wire.

use std::time::Duration;

use sling::{Engine, Report};
use sling_serve::{Client, EnginePool, PoolSettings, ProgramUpload, ServeOptions, Service};
use sling_suite::fixtures::ListCorpus;

/// Everything formula-relevant about a report, for the served-equals-
/// in-process diff (timing and cache deltas legitimately differ).
fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{}\n", report.target);
    for loc in &report.locations {
        let _ = writeln!(out, "  {}", loc.location);
        for inv in &loc.invariants {
            let _ = writeln!(out, "    [spurious={}] {}", inv.spurious, inv.formula);
        }
    }
    out
}

/// One tenant's round trip: upload its sources, run its batch, return
/// the served reports for the main thread to diff.
fn run_tenant(
    target: &str,
    corpus: &ListCorpus,
) -> Result<Vec<Report>, Box<dyn std::error::Error + Send + Sync>> {
    let mut client = Client::connect_retry(target, Duration::from_secs(10))?;
    let upload = ProgramUpload {
        program: corpus.program(),
        predicates: corpus.predicates(),
    };
    let served = client.analyze_all_uploaded(&upload, &corpus.batch(1))?;
    let pool = client.pool_stats();
    println!(
        "  tenant {}: {} reports served (pool: {} hits, {} misses, {} evictions, {}/{} resident)",
        corpus.node(),
        served.reports.len(),
        pool.hits,
        pool.misses,
        pool.evictions,
        pool.resident,
        pool.capacity,
    );
    Ok(served.reports)
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let addr = std::env::args().nth(1);
    let node_a = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "MtExampleA".into());
    let node_b = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "MtExampleB".into());
    let tenants = [ListCorpus::new(&node_a), ListCorpus::new(&node_b)];

    // The served run: an external daemon when an address was given,
    // else an in-process service with an empty pool — either way the
    // server has no baked-in program and learns both tenants from the
    // uploads alone.
    let local = match addr {
        Some(_) => None,
        None => {
            let pool = EnginePool::new(None, 4, PoolSettings::default());
            Some(Service::bind_pool(
                pool,
                "127.0.0.1:0",
                ServeOptions::default(),
            )?)
        }
    };
    let target = match (&addr, &local) {
        (Some(addr), _) => addr.clone(),
        (None, Some(service)) => service.local_addr().to_string(),
        (None, None) => unreachable!(),
    };
    println!("driving two tenants through {target} concurrently");

    let [corpus_a, corpus_b] = &tenants;
    let (served_a, served_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run_tenant(&target, corpus_a));
        let b = scope.spawn(|| run_tenant(&target, corpus_b));
        (
            a.join().expect("tenant thread"),
            b.join().expect("tenant thread"),
        )
    });
    let served = [served_a?, served_b?];

    // The in-process references: same sources, same engine defaults.
    let mut mismatches = 0;
    for (corpus, served) in tenants.iter().zip(&served) {
        let reference = Engine::builder()
            .program_source(&corpus.program())?
            .predicates_source(&corpus.predicates())?
            .build()?
            .analyze_all(&corpus.batch(1))?;
        for (mine, theirs) in reference.reports.iter().zip(served) {
            if fingerprint(mine) != fingerprint(theirs) {
                eprintln!(
                    "MISMATCH for tenant {} `{}`:\n--- in-process ---\n{}--- served ---\n{}",
                    corpus.node(),
                    mine.target,
                    fingerprint(mine),
                    fingerprint(theirs)
                );
                mismatches += 1;
            }
        }
    }
    if let Some(service) = local {
        service.shutdown()?;
    }
    if mismatches > 0 {
        return Err(format!("{mismatches} served reports diverged").into());
    }
    println!(
        "both tenants identical to in-process analyze_all: {} targets total",
        served.iter().map(Vec::len).sum::<usize>()
    );
    Ok(())
}
