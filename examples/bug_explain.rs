//! §5.4 "Explaining Bugs": the AFWP `dll_fix` benchmark. With the guard
//! commented out (as shipped in the corpus), SLING's loop invariant says
//! `k == nil` — the *opposite* of the expected invariant — which is what
//! alerted the paper's authors to the seeded bug. Restoring the guard
//! restores the expected mixed sll/dll invariant.
//!
//! ```sh
//! cargo run -p sling-examples --example bug_explain
//! ```

use sling::{analyze, SlingConfig};
use sling_lang::{check_program, parse_program, Location};
use sling_logic::Symbol;
use sling_suite::corpus::all_benches;

const FIXED: &str = r#"
struct AdNode { next: AdNode*; prev: AdNode*; }
fn dll_fix(h: AdNode*) {
    var i: AdNode* = h;
    var j: AdNode* = null;
    var k: AdNode* = null;
    while @inv (i != null) {
        var t: AdNode* = i->next;
        i->next = k;
        i->prev = null;
        if (k != null) { k->prev = i; }      // the guard, restored
        j = k;
        k = i;
        i = t;
    }
    return;
}
"#;

fn show(loop_invs: &sling::AnalysisOutcome, label: &str) {
    let Some(report) = loop_invs.at(Location::LoopHead(Symbol::intern("inv"))) else {
        println!("  loop head unreached");
        return;
    };
    println!("  {label}:");
    for inv in report.invariants.iter().take(3) {
        println!("    {}", inv.formula);
    }
}

fn main() {
    let bench = all_benches().into_iter().find(|b| b.name == "afwp_dll/dll_fix").unwrap();
    let config = SlingConfig::default();

    // Buggy version (as found in the corpus).
    let buggy = sling_suite::eval::compile(&bench);
    let types = buggy.type_env();
    let preds = sling_suite::predicates::pred_env(bench.category);
    let inputs = bench.input_builders(7);
    let buggy_out =
        analyze(&buggy, Symbol::intern("dll_fix"), &inputs, &types, &preds, &config);
    println!("== buggy dll_fix (guard commented out) ==");
    show(&buggy_out, "loop invariant");
    println!(
        "  → `k == nil` in the invariant: k never advances. The expected\n\
         invariant says k heads a growing dll — SLING shows the opposite,\n\
         pointing straight at the commented-out bookkeeping.\n"
    );

    // Fixed version.
    let fixed = parse_program(FIXED).expect("fixed version parses");
    check_program(&fixed).expect("fixed version checks");
    let inputs = bench.input_builders(7);
    let fixed_out =
        analyze(&fixed, Symbol::intern("dll_fix"), &inputs, &types, &preds, &config);
    println!("== fixed dll_fix (guard restored) ==");
    show(&fixed_out, "loop invariant");
    println!("  → the sll/dll mixed shape reappears, as the paper reports.");
}
