//! §5.4 "Explaining Bugs": the AFWP `dll_fix` benchmark. With the guard
//! commented out (as shipped in the corpus), SLING's loop invariant says
//! `k == nil` — the *opposite* of the expected invariant — which is what
//! alerted the paper's authors to the seeded bug. Restoring the guard
//! restores the expected mixed sll/dll invariant.
//!
//! ```sh
//! cargo run -p sling-examples --example bug_explain
//! ```

use sling::{AnalysisRequest, Engine, Report};
use sling_lang::Location;
use sling_logic::Symbol;
use sling_suite::corpus::all_benches;
use sling_suite::eval::{engine_for, EvalConfig};

const FIXED: &str = r#"
struct AdNode { next: AdNode*; prev: AdNode*; }
fn dll_fix(h: AdNode*) {
    var i: AdNode* = h;
    var j: AdNode* = null;
    var k: AdNode* = null;
    while @inv (i != null) {
        var t: AdNode* = i->next;
        i->next = k;
        i->prev = null;
        if (k != null) { k->prev = i; }      // the guard, restored
        j = k;
        k = i;
        i = t;
    }
    return;
}
"#;

fn show(report: &Report, label: &str) {
    let Some(analysis) = report.at(Location::LoopHead(Symbol::intern("inv"))) else {
        println!("  loop head unreached");
        return;
    };
    println!("  {label}:");
    for inv in analysis.invariants.iter().take(3) {
        println!("    {}", inv.formula);
    }
}

fn main() {
    let bench = all_benches()
        .into_iter()
        .find(|b| b.name == "afwp_dll/dll_fix")
        .unwrap();
    let config = EvalConfig::default();

    // Buggy version (as found in the corpus).
    let buggy = engine_for(&bench, &config, None);
    let request = || AnalysisRequest::new("dll_fix").inputs(bench.inputs(7));
    let buggy_report = buggy
        .analyze(&request())
        .expect("dll_fix is the corpus target");
    println!("== buggy dll_fix (guard commented out) ==");
    show(&buggy_report, "loop invariant");
    println!(
        "  → `k == nil` in the invariant: k never advances. The expected\n\
         invariant says k heads a growing dll — SLING shows the opposite,\n\
         pointing straight at the commented-out bookkeeping.\n"
    );

    // Fixed version: its own engine, sharing the buggy run's predicate
    // library via the category environment.
    let fixed = Engine::builder()
        .program_source(FIXED)
        .expect("fixed version parses")
        .pred_env(sling_suite::predicates::pred_env(bench.category))
        .config(config.sling)
        .build()
        .expect("fixed version checks");
    let fixed_report = fixed.analyze(&request()).expect("same target name");
    println!("== fixed dll_fix (guard restored) ==");
    show(&fixed_report, "loop invariant");
    println!("  → the sll/dll mixed shape reappears, as the paper reports.");
}
