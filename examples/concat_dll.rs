//! The paper's §2 walkthrough: `concat` over doubly linked lists
//! (Figure 1), traced on the Figure 2 inputs, reproducing the
//! preconditions and postconditions of §2.1/§2.3.
//!
//! ```sh
//! cargo run -p sling-examples --example concat_dll
//! ```

use sling::AnalysisRequest;
use sling_lang::Location;
use sling_logic::Symbol;
use sling_suite::corpus::all_benches;
use sling_suite::eval::{engine_for, EvalConfig};

fn main() {
    let bench = all_benches()
        .into_iter()
        .find(|b| b.name == "dll/concat")
        .unwrap();
    let config = EvalConfig::default();
    let engine = engine_for(&bench, &config, None);
    let request = AnalysisRequest::new("concat").inputs(bench.inputs(config.seed));

    println!("== Figure 1: the program ==\n{}", bench.source.trim());
    let report = engine.analyze(&request).expect("concat is a corpus target");

    println!(
        "\n== Inference ({} runs, {} traces) ==",
        report.metrics.runs, report.metrics.traces
    );
    let show = |title: &str, loc: Location| {
        let Some(analysis) = report.at(loc) else {
            println!("\n{title}: unreached");
            return;
        };
        println!("\n{title} ({} models):", analysis.models_used);
        for inv in analysis.invariants.iter().take(4) {
            let mark = if inv.spurious { " [spurious]" } else { "" };
            println!("    {}{mark}", inv.formula);
        }
    };
    show(
        "precondition (paper's F'_L1, at @L1)",
        Location::Label(Symbol::intern("L1")),
    );
    show(
        "x == nil postcondition (F'_L2, at @L2)",
        Location::Label(Symbol::intern("L2")),
    );
    show(
        "x != nil postcondition (F'_L3, at the return)",
        Location::Exit(1),
    );
    show("empty-list exit (return y)", Location::Exit(0));

    println!(
        "\nThe paper's F'_L3 shape — dll(x,·,x,tmp) * dll(tmp,·,·,y) * dll(y,·,·,nil)\n\
         with res == x — appears above, with the out-of-scope local tmp\n\
         existentially quantified (§2.3)."
    );
}
