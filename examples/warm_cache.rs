//! Warm-starting the entailment cache across processes.
//!
//! First run: no snapshot exists, the engine starts cold, analyzes a
//! small corpus, and saves its cache. Second run (same command): the
//! engine restores the snapshot at build time and answers the corpus
//! from it — `CacheStats::warm_hits` shows how many checker searches
//! the warm start skipped. When a snapshot was actually restored, the
//! example asserts that it carried load, so running it twice doubles as
//! an end-to-end check of the persistence path:
//!
//! ```sh
//! cargo run -p sling-examples --example warm_cache   # cold: writes the snapshot
//! cargo run -p sling-examples --example warm_cache   # warm: reads it back
//! ```
//!
//! A snapshot that exists but is rejected (corrupt, or written under a
//! different predicate library or format version) is *not* an error:
//! the engine starts cold and this run overwrites the file with a fresh
//! snapshot. The snapshot lives under the system temp directory; pass a
//! path as the first argument to put it somewhere else.

use sling::Engine;
use sling_suite::fixtures::ListCorpus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("sling-warm-cache-example.bin"));
    let had_snapshot = path.exists();

    let corpus = ListCorpus::new("WarmCacheNode");
    let engine = Engine::builder()
        .program_source(&corpus.program())?
        .predicates_source(&corpus.predicates())?
        .cache_path(&path)
        .build()?;

    let restored = engine.warm_entries();
    match (had_snapshot, restored) {
        (false, _) => println!("cold start: no snapshot at {}", path.display()),
        (true, 0) => println!(
            "cold start: snapshot at {} was rejected (stale or corrupt); overwriting",
            path.display()
        ),
        (true, n) => println!("warm start: {n} entries restored from {}", path.display()),
    }

    let batch = engine.analyze_all(&corpus.batch(1))?;
    println!(
        "{} invariants across {} targets; cache: {}",
        batch.invariant_count(),
        batch.reports.len(),
        batch.cache
    );

    if restored > 0 {
        // A restored snapshot must have answered corpus queries.
        assert!(
            batch.cache.warm_hits > 0,
            "warm start restored {restored} entries but answered no queries"
        );
        println!(
            "warm start verified: {} of {} hits came from the snapshot",
            batch.cache.warm_hits, batch.cache.hits
        );
    }

    let written = engine.save_cache()?;
    println!("snapshot saved: {written} entries -> {}", path.display());
    Ok(())
}
