//! A two-engine fleet sharing one entailment-cache server.
//!
//! Boots a cache server (an external one when an address is given,
//! else in-process), runs one engine cold so its fresh verdicts ride
//! the write-behind queue up to the server, then runs a second engine
//! with a fresh local cache over the same corpus and shows it
//! answering from the tier. Every formula from both engines is diffed
//! against a local-only `Engine::analyze_all` — the tier is an
//! accelerator, and this example doubles as the proof that it never
//! changes a result:
//!
//! ```sh
//! cargo run -p sling-examples --example cache_tier
//! # or against an already-running cache server:
//! sling-serve --cache-server --addr 127.0.0.1:7350 &
//! cargo run -p sling-examples --example cache_tier -- 127.0.0.1:7350
//! # custom node-type name (distinct corpora get distinct cache keys):
//! cargo run -p sling-examples --example cache_tier -- 127.0.0.1:7350 CiCacheNode
//! ```
//!
//! Exits nonzero when the second engine saw no remote hits or any
//! formula differs from the local-only run.

use std::time::Duration;

use sling::{Engine, Report};
use sling_serve::CacheServer;
use sling_suite::fixtures::ListCorpus;

/// Everything formula-relevant about a report (timing and cache deltas
/// legitimately differ between remote-backed and local-only runs).
fn fingerprint(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{}\n", report.target);
    for loc in &report.locations {
        let _ = writeln!(out, "  {}", loc.location);
        for inv in &loc.invariants {
            let _ = writeln!(out, "    [spurious={}] {}", inv.spurious, inv.formula);
        }
    }
    out
}

fn build(corpus: &ListCorpus) -> Result<sling::EngineBuilder, Box<dyn std::error::Error>> {
    Ok(Engine::builder()
        .program_source(&corpus.program())?
        .predicates_source(&corpus.predicates())?
        .parallelism(1))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let external = std::env::args().nth(1);
    let node = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "CacheTierExample".into());
    let corpus = ListCorpus::new(&node);
    let batch = corpus.batch(1);

    // The local-only reference: the formulas both fleet engines must
    // reproduce exactly.
    let reference = build(&corpus)?.build()?.analyze_all(&batch)?;

    let local = match external {
        Some(_) => None,
        None => Some(CacheServer::bind("127.0.0.1:0")?),
    };
    let addr = match (&external, &local) {
        (Some(addr), _) => addr.clone(),
        (None, Some(server)) => server.local_addr().to_string(),
        (None, None) => unreachable!(),
    };
    println!("cache tier at {addr}");

    // Engine A: cold local cache, empty (or foreign) server — remote
    // misses, then write-behind publish of every fresh verdict.
    let engine_a = build(&corpus)?.remote_cache(&addr).build()?;
    let batch_a = engine_a.analyze_all(&batch)?;
    let client_a = engine_a.remote_cache().expect("remote tier configured");
    if !client_a.flush(Duration::from_secs(10)) {
        return Err("write-behind queue did not drain".into());
    }
    println!(
        "  engine A: {} reports, {} remote misses, {} entries published",
        batch_a.reports.len(),
        batch_a.cache.remote_misses,
        client_a.stats().published,
    );

    // Engine B: fresh local cache, same predicate library — its local
    // misses come back as remote hits.
    let engine_b = build(&corpus)?.remote_cache(&addr).build()?;
    let batch_b = engine_b.analyze_all(&batch)?;
    println!(
        "  engine B: {} reports, {} remote hits, {} remote misses",
        batch_b.reports.len(),
        batch_b.cache.remote_hits,
        batch_b.cache.remote_misses,
    );

    let mut mismatches = 0;
    for served in [&batch_a, &batch_b] {
        for (mine, theirs) in reference.reports.iter().zip(&served.reports) {
            if fingerprint(mine) != fingerprint(theirs) {
                eprintln!(
                    "MISMATCH for `{}`:\n--- local-only ---\n{}--- via cache tier ---\n{}",
                    mine.target,
                    fingerprint(mine),
                    fingerprint(theirs)
                );
                mismatches += 1;
            }
        }
    }
    if let Some(server) = local {
        let stats = server.stats();
        println!(
            "  server: {} gets ({} hits), {} puts, {} entries resident",
            stats.gets, stats.hits, stats.puts, stats.entries
        );
        server.shutdown();
    }
    if mismatches > 0 {
        return Err(format!("{mismatches} reports diverged from local-only").into());
    }
    if batch_b.cache.remote_hits == 0 {
        return Err("second engine saw no remote hits".into());
    }
    println!(
        "fleet identical to local-only analyze_all: {} targets per engine",
        reference.reports.len()
    );
    Ok(())
}
