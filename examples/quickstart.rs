//! Quickstart: infer separation-logic invariants for a tiny list program.
//!
//! ```sh
//! cargo run -p sling-examples --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sling::{analyze, InputBuilder, SlingConfig};
use sling_lang::{
    check_program, gen_list, parse_program, DataOrder, ListLayout, Location, RtHeap,
};
use sling_logic::{parse_predicates, PredEnv, Symbol};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A program with breakpoints: entry/exits are automatic, the loop
    //    head is labelled @inv.
    let program = parse_program(
        "struct SNode { next: SNode*; data: int; }
         fn reverse(x: SNode*) -> SNode* {
             var r: SNode* = null;
             while @inv (x != null) {
                 var t: SNode* = x->next;
                 x->next = r;
                 r = x;
                 x = t;
             }
             return r;
         }",
    )?;
    check_program(&program)?;

    // 2. The predicate vocabulary SLING searches over.
    let mut preds = PredEnv::new();
    for def in parse_predicates(
        "pred sll(x: SNode*) := emp & x == nil
           | exists u, d. x -> SNode{next: u, data: d} * sll(u);
         pred lseg(x: SNode*, y: SNode*) := emp & x == y
           | exists u, d. x -> SNode{next: u, data: d} * lseg(u, y);",
    )? {
        preds.define(def)?;
    }
    let types = program.type_env();

    // 3. Test inputs: nil plus random lists (the paper uses size 10).
    let layout = ListLayout {
        ty: Symbol::intern("SNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    };
    let inputs: Vec<InputBuilder> = [0usize, 1, 10]
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let builder: InputBuilder = Box::new(move |heap: &mut RtHeap| {
                let mut rng = StdRng::seed_from_u64(i as u64);
                vec![gen_list(heap, &layout, n, DataOrder::Random, &mut rng)]
            });
            builder
        })
        .collect();

    // 4. Run SLING.
    let outcome = analyze(
        &program,
        Symbol::intern("reverse"),
        &inputs,
        &types,
        &preds,
        &SlingConfig::default(),
    );

    println!("reverse: {} runs, {} traces, {:.2}s\n", outcome.runs, outcome.traces, outcome.seconds);
    for loc in [
        Location::Entry,
        Location::LoopHead(Symbol::intern("inv")),
        Location::Exit(0),
    ] {
        let Some(report) = outcome.at(loc) else { continue };
        println!("at {loc} ({} models):", report.models_used);
        for inv in report.invariants.iter().take(3) {
            println!("    {}", inv.formula);
        }
    }
    Ok(())
}
