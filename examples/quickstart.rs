//! Quickstart: infer separation-logic invariants for a tiny list program
//! through the engine API, with declarative `InputSpec` test inputs.
//!
//! ```sh
//! cargo run -p sling-examples --example quickstart
//! ```

use sling::{AnalysisRequest, Engine, InputSpec, ListLayout, ValueSpec};
use sling_lang::Location;
use sling_logic::Symbol;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the engine once: the program (breakpoints: entry/exits are
    //    automatic, the loop head is labelled @inv), the predicate
    //    vocabulary SLING searches over, and the default configuration.
    let engine = Engine::builder()
        .program_source(
            "struct SNode { next: SNode*; data: int; }
             fn reverse(x: SNode*) -> SNode* {
                 var r: SNode* = null;
                 while @inv (x != null) {
                     var t: SNode* = x->next;
                     x->next = r;
                     r = x;
                     x = t;
                 }
                 return r;
             }",
        )?
        .predicates_source(
            "pred sll(x: SNode*) := emp & x == nil
               | exists u, d. x -> SNode{next: u, data: d} * sll(u);
             pred lseg(x: SNode*, y: SNode*) := emp & x == y
               | exists u, d. x -> SNode{next: u, data: d} * lseg(u, y);",
        )?
        .build()?;

    // 2. Describe the work declaratively: the target function plus test
    //    inputs — nil and seeded random lists (the paper uses size 10).
    //    Specs are plain data: Send + Sync + Clone + Debug, so the same
    //    request can be logged, replayed, or fanned out across threads.
    let layout = ListLayout {
        ty: Symbol::intern("SNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    };
    let request = AnalysisRequest::new("reverse").inputs(
        [0usize, 1, 10]
            .into_iter()
            .enumerate()
            .map(|(i, n)| InputSpec::seeded(i as u64).arg(ValueSpec::sll(layout, n))),
    );

    // 3. Run SLING. The same engine can keep serving requests — further
    //    inputs, other functions — with its entailment cache warm, and
    //    `analyze_all` fans whole batches out across worker threads.
    let report = engine.analyze(&request)?;

    println!(
        "reverse: {} runs, {} traces, {:.2}s; cache: {}\n",
        report.metrics.runs, report.metrics.traces, report.metrics.seconds, report.cache
    );
    for loc in [
        Location::Entry,
        Location::LoopHead(Symbol::intern("inv")),
        Location::Exit(0),
    ] {
        let Some(analysis) = report.at(loc) else {
            continue;
        };
        println!("at {loc} ({} models):", analysis.models_used);
        for inv in analysis.invariants.iter().take(3) {
            println!("    {}", inv.formula);
        }
    }
    Ok(())
}
