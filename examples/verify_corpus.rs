//! The corpus verification gate: runs every benchmark with the static
//! verification post-pass on and fails if any invariant is still
//! graded `Refuted` after the final counterexample-guided refinement
//! round — either the refinement loop found a real countermodel the
//! dynamic run cannot explain away (an inference bug), or the prover
//! regressed.
//!
//! ```sh
//! cargo run --release -p sling-examples --example verify_corpus
//! # optional bench-name substring filters:
//! cargo run --release -p sling-examples --example verify_corpus -- glib_sll
//! ```
//!
//! Exit status: 0 when no refutation survives (grades printed), 1 when
//! one does, 2 on misuse. `SLING_VERIFY=off` in the environment makes
//! the pass inert; the gate reports that and passes vacuously.

use sling::{InvariantGrade, VerifySettings};
use sling_suite::eval::{grade_summary, run_corpus, EvalConfig};

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).collect();
    let mut config = EvalConfig::default();
    config.sling.verify = Some(VerifySettings::default());

    let filter = |b: &sling_suite::program::Bench| {
        filters.is_empty() || filters.iter().any(|f| b.name.contains(f.as_str()))
    };
    let runs = run_corpus(&config, Some(&filter));
    if runs.is_empty() {
        eprintln!("no benchmark matches {filters:?}");
        std::process::exit(2);
    }

    let mut surviving_refutations = 0usize;
    for run in &runs {
        let m = &run.report.metrics;
        println!(
            "{:<24} invs={:<3} verified={:<3} confirmed={:<3} unknown={:<3} \
             refuted={} (initial {}, {} refinement round(s), {:.3}s)",
            run.bench.name,
            run.report.invariant_count(),
            m.verified,
            m.confirmed,
            m.unknown,
            m.refuted,
            m.refuted_initial,
            m.cegir_rounds,
            m.verify_seconds,
        );
        for loc in &run.report.locations {
            for inv in &loc.invariants {
                if inv.grade == InvariantGrade::Refuted {
                    surviving_refutations += 1;
                    eprintln!("  REFUTED at {}: {}", loc.location, inv.formula);
                }
            }
        }
    }

    let summary = grade_summary(&runs);
    match summary.precision() {
        Some(precision) => println!(
            "corpus: {} verified, {} confirmed, {} unknown, {} refuted \
             ({} pre-refinement refutations, {} refinement round(s)) — \
             graded precision {:.3}",
            summary.verified,
            summary.confirmed,
            summary.unknown,
            summary.refuted,
            summary.refuted_initial,
            summary.cegir_rounds,
            precision,
        ),
        None => {
            // Nothing graded: the pass was disabled from the outside.
            println!(
                "corpus: no invariant graded (SLING_VERIFY off?); \
                 gate passes vacuously"
            );
            return;
        }
    }
    if surviving_refutations > 0 {
        eprintln!(
            "{surviving_refutations} refutation(s) survived the final \
             refinement round"
        );
        std::process::exit(1);
    }
}
