//! The executor differential gate: every corpus benchmark runs under
//! both execution tiers — the compiled bytecode VM (the default hot
//! path) and the tree-walk interpreter (the reference oracle) — and
//! the two must agree trace-for-trace *and* report-for-report. Any
//! divergence (a snapshot that differs, a fault at a different point,
//! an invariant that changes) fails the gate.
//!
//! ```sh
//! cargo run --release -p sling-examples --example diff_executors
//! # optional bench-name substring filters:
//! cargo run --release -p sling-examples --example diff_executors -- rbt bst
//! ```
//!
//! Exit status: 0 when every benchmark agrees, 1 on any divergence,
//! 2 on misuse.

use sling_lang::{check_program, parse_program, TraceConfig, VmConfig};
use sling_logic::Symbol;
use sling_suite::corpus::all_benches;
use sling_suite::eval::EvalConfig;

use sling::{collect_models, AnalysisRequest, Compiler, Executor};

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).collect();
    let benches: Vec<_> = all_benches()
        .into_iter()
        .filter(|b| filters.is_empty() || filters.iter().any(|f| b.name.contains(f.as_str())))
        .collect();
    if benches.is_empty() {
        eprintln!("no benchmark matches {filters:?}");
        std::process::exit(2);
    }

    let config = EvalConfig::default();
    let mut divergent = 0usize;
    let mut faulting = 0usize;
    for bench in &benches {
        let program = parse_program(bench.source).expect("corpus parses");
        check_program(&program).expect("corpus type-checks");
        let compiled = Compiler::compile(&program);
        let target = Symbol::intern(bench.target);

        // Trace level: snapshot-for-snapshot, fault-for-fault.
        let collect = |executor| {
            collect_models(
                &program,
                &compiled,
                target,
                &bench.inputs(config.seed),
                VmConfig::default(),
                TraceConfig::default(),
                executor,
            )
        };
        let bc = collect(Executor::Bytecode);
        let tw = collect(Executor::Treewalk);
        let mut diverged = false;
        if bc.runs.len() != tw.runs.len() {
            eprintln!(
                "DIVERGENCE {}: {} vs {} runs",
                bench.name,
                bc.runs.len(),
                tw.runs.len()
            );
            diverged = true;
        }
        for (i, (b, t)) in bc.runs.iter().zip(&tw.runs).enumerate() {
            if b.error != t.error {
                eprintln!(
                    "DIVERGENCE {}: run {i} faults {:?} (bytecode) vs {:?} (treewalk)",
                    bench.name, b.error, t.error
                );
                diverged = true;
            }
            if b.snapshots != t.snapshots {
                eprintln!("DIVERGENCE {}: run {i} snapshots differ", bench.name);
                diverged = true;
            }
        }
        if bc.faulted_runs() > 0 {
            faulting += 1;
        }

        // Report level: formula-identical analysis output. The
        // executor is pinned at the builder level so the gate stays a
        // real bytecode-vs-treewalk comparison even when the process
        // runs under `SLING_EXECUTOR`.
        let analyze = |executor| {
            let engine = sling::Engine::builder()
                .program(sling_suite::eval::compile(bench))
                .pred_env(sling_suite::predicates::pred_env(bench.category))
                .config(config.sling)
                .executor(executor)
                .build()
                .unwrap_or_else(|e| panic!("{}: engine build error: {e}", bench.name));
            let request = AnalysisRequest::new(target).inputs(bench.inputs(config.seed));
            engine.analyze(&request).expect("corpus analyzes")
        };
        let rb = analyze(Executor::Bytecode);
        let rt = analyze(Executor::Treewalk);
        if format!("{:?}", rb.locations) != format!("{:?}", rt.locations) {
            eprintln!("DIVERGENCE {}: inferred invariants differ", bench.name);
            diverged = true;
        }

        if diverged {
            divergent += 1;
        } else {
            println!(
                "{:<24} ok: {} run(s), {} snapshot(s), {} invariant(s){}",
                bench.name,
                bc.runs.len(),
                bc.total_snapshots(),
                rb.invariant_count(),
                if bench.bug.is_some() {
                    " [seeded bug, partial traces identical]"
                } else {
                    ""
                }
            );
        }
    }

    println!(
        "{} benchmark(s): {} divergent, {} with faulting runs",
        benches.len(),
        divergent,
        faulting
    );
    if divergent > 0 {
        std::process::exit(1);
    }
}
