//! §5.4 "Identifying Spurious Warnings": FBInfer flags a memory leak in
//! the *correct* glib `sortMerge` because it believes `l->next` becomes
//! unreachable. SLING's invariants at that point show `l->next` is still
//! reachable through live aliases, refuting the warning — while for the
//! *buggy* `sortMerge` (the §5.4 typo), SLING's `res == nil`
//! postcondition confirms something is genuinely wrong.
//!
//! ```sh
//! cargo run -p sling-examples --example spurious_warning
//! ```

use sling::VerifySettings;
use sling_lang::Location;
use sling_suite::corpus::all_benches;
use sling_suite::eval::{run_bench, EvalConfig};

fn main() {
    // Grade every invariant with the static verification post-pass:
    // `res == nil` surviving as *Verified* is what separates a real bug
    // from an inference artifact.
    let mut config = EvalConfig::default();
    config.sling.verify = Some(VerifySettings::default());

    // The correct merge sort: the "leak" FBInfer reports is refuted by
    // the alias equalities in the inferred invariants.
    let real = all_benches()
        .into_iter()
        .find(|b| b.name == "glib_sll/sortReal")
        .unwrap();
    let run = run_bench(&real, &config);
    println!("== correct sortReal ==");
    if let Some(report) = run.report.at(Location::Exit(1)) {
        for inv in report.invariants.iter().take(3) {
            println!("    [{}] {}", inv.grade, inv.formula);
        }
        println!(
            "  → the result is a well-formed list reachable from `res`;\n\
             no cell is leaked at the split point. A leak warning there\n\
             is spurious.\n"
        );
    }

    // The buggy sortMerge: the unexpected `res == nil` postcondition is
    // the tell.
    let buggy = all_benches()
        .into_iter()
        .find(|b| b.name == "glib_sll/sortMerge")
        .unwrap();
    let run = run_bench(&buggy, &config);
    println!("== buggy sortMerge (the paper's typo) ==");
    if let Some(report) = run.report.at(Location::Exit(0)) {
        for inv in report.invariants.iter().take(3) {
            println!("    [{}] {}", inv.grade, inv.formula);
        }
    }
    println!(
        "  → SLING reports the result is always nil — and the verifier\n\
         endorses it: the function returns the scratch variable instead\n\
         of the merged list (§5.4). The bug is real, not an inference\n\
         artifact."
    );
}
