//! Shared fixtures for the SLING benchmarks (see `benches/` and the
//! `table1`/`table2` binaries).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use sling_lang::{gen_list, DataOrder, ListLayout, RtHeap};
use sling_logic::{parse_predicates, FieldDef, FieldTy, PredEnv, StructDef, Symbol, TypeEnv};
use sling_models::{Stack, StackHeapModel, Val};

/// Builds the `SNode`-based type environment used by the micro-benches.
pub fn snode_types() -> TypeEnv {
    let mut types = TypeEnv::new();
    let node = Symbol::intern("SNode");
    types
        .define(StructDef {
            name: node,
            fields: vec![
                FieldDef {
                    name: Symbol::intern("next"),
                    ty: FieldTy::Ptr(node),
                },
                FieldDef {
                    name: Symbol::intern("data"),
                    ty: FieldTy::Int,
                },
            ],
        })
        .expect("fresh env");
    types
}

/// `sll`/`lseg` predicates over `SNode`.
pub fn snode_preds() -> PredEnv {
    let mut env = PredEnv::new();
    for d in parse_predicates(
        "pred sll(x: SNode*) := emp & x == nil
           | exists u, d. x -> SNode{next: u, data: d} * sll(u);
         pred lseg(x: SNode*, y: SNode*) := emp & x == y
           | exists u, d. x -> SNode{next: u, data: d} * lseg(u, y);",
    )
    .expect("predicates parse")
    {
        env.define(d).expect("fresh env");
    }
    env
}

/// A stack-heap model with `x` pointing at a random list of `n` cells.
pub fn list_model(n: usize, seed: u64) -> StackHeapModel {
    let mut heap = RtHeap::new();
    let layout = ListLayout {
        ty: Symbol::intern("SNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let head = gen_list(&mut heap, &layout, n, DataOrder::Random, &mut rng);
    let mut stack = Stack::new();
    stack.bind(Symbol::intern("x"), head);
    StackHeapModel::new(stack, heap.live().clone())
}

/// A model with `x` and `y` pointing at two disjoint lists.
pub fn two_list_model(n: usize, m: usize, seed: u64) -> StackHeapModel {
    let mut heap = RtHeap::new();
    let layout = ListLayout {
        ty: Symbol::intern("SNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let x = gen_list(&mut heap, &layout, n, DataOrder::Random, &mut rng);
    let y = gen_list(&mut heap, &layout, m, DataOrder::Random, &mut rng);
    let mut stack = Stack::new();
    stack.bind(Symbol::intern("x"), x);
    stack.bind(Symbol::intern("y"), y);
    StackHeapModel::new(stack, heap.live().clone())
}

/// A `Val` re-export so benches don't need the models crate directly.
pub type Value = Val;
