//! Regenerates the paper's Table 2: SLING vs. the bi-abduction baseline
//! ("S2") on the documented properties of the corpus.
//!
//! Usage: `cargo run --release -p sling-bench --bin table2 [category-substring]`

use sling_suite::eval::{run_corpus, table2, EvalConfig};
use sling_suite::report::render_table2;

fn main() {
    let filter_arg = std::env::args().nth(1);
    let config = EvalConfig::default();
    let filter = filter_arg.as_deref().map(|s| s.to_lowercase());
    let runs = run_corpus(
        &config,
        filter
            .as_ref()
            .map(|f| {
                let f = f.clone();
                Box::new(move |b: &sling_suite::Bench| {
                    b.category.label().to_lowercase().contains(&f)
                        || b.name.to_lowercase().contains(&f)
                }) as Box<dyn Fn(&sling_suite::Bench) -> bool>
            })
            .as_deref(),
    );
    let rows = table2(&runs);
    println!("Table 2. Comparing SLING to the S2-style baseline\n");
    println!("{}", render_table2(&rows));
}
