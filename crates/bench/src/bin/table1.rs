//! Regenerates the paper's Table 1: per-category corpus statistics,
//! trace counts, invariant counts (with spurious counts), A/S/X coverage,
//! timing, and per-invariant atom averages.
//!
//! Usage: `cargo run --release -p sling-bench --bin table1 [category-substring]`

use sling_suite::eval::{run_corpus, table1, EvalConfig};
use sling_suite::report::render_table1;

fn main() {
    let filter_arg = std::env::args().nth(1);
    let config = EvalConfig::default();
    let filter = filter_arg.as_deref().map(|s| s.to_lowercase());
    let runs = run_corpus(
        &config,
        filter
            .as_ref()
            .map(|f| {
                let f = f.clone();
                Box::new(move |b: &sling_suite::Bench| {
                    b.category.label().to_lowercase().contains(&f)
                        || b.name.to_lowercase().contains(&f)
                }) as Box<dyn Fn(&sling_suite::Bench) -> bool>
            })
            .as_deref(),
    );
    let rows = table1(&runs);
    println!(
        "Table 1. SLING on the benchmark corpus ({} programs)\n",
        runs.len()
    );
    println!("{}", render_table1(&rows));

    let total_time: f64 = rows.iter().map(|r| r.time).sum();
    let total_invs: usize = rows.iter().map(|r| r.invs).sum();
    let total_locs: usize = rows.iter().map(|r| r.ilocs).sum();
    if total_invs > 0 && total_locs > 0 {
        println!(
            "avg {:.2} invariants/location; {:.2}s/program; {:.2}s/invariant",
            total_invs as f64 / total_locs as f64,
            total_time / runs.len().max(1) as f64,
            total_time / total_invs as f64,
        );
    }
}
