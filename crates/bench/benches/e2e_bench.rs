//! End-to-end SLING cost on representative corpus programs — the shape
//! behind Table 1's Time column (list categories cheap, DLL/priority
//! categories expensive).

use criterion::{criterion_group, criterion_main, Criterion};

use sling_suite::corpus::all_benches;
use sling_suite::eval::{run_bench, EvalConfig};

fn bench_program(c: &mut Criterion, name: &str) {
    let bench = all_benches().into_iter().find(|b| b.name == name).unwrap();
    let config = EvalConfig::default();
    let id = name.replace('/', "_");
    c.bench_function(&format!("e2e_{id}"), |b| {
        b.iter(|| {
            let run = run_bench(&bench, &config);
            assert!(run.report.metrics.runs > 0);
        });
    });
}

fn e2e(c: &mut Criterion) {
    // One representative per cost regime of Table 1.
    bench_program(c, "sll/reverse"); // cheap: iterative SLL
    bench_program(c, "gh_sll_rec/concat"); // recursive SLL
    bench_program(c, "dll/concat"); // the paper's running example
    bench_program(c, "bst/find"); // trees
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = e2e
}
criterion_main!(benches);
