//! InferAtom / SplitHeap costs vs. boundary size and trace count —
//! the enumeration the paper calls exponential in predicates and
//! parameters (§4.5), and the §5 claim that few traces suffice.
//!
//! Driven through `Engine::infer_at`, the location-level entry point,
//! with the entailment cache cleared before every sample so the numbers
//! track cold inference cost rather than memo lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sling::Engine;
use sling_bench::{snode_preds, two_list_model};
use sling_lang::{Location, Snapshot};
use sling_logic::Symbol;

const PROGRAM: &str = "struct SNode { next: SNode*; data: int; }
     fn f(x: SNode*, y: SNode*) -> SNode* { return x; }";

fn engine() -> Engine {
    Engine::builder()
        .program_source(PROGRAM)
        .expect("bench program parses")
        .pred_env(snode_preds())
        .build()
        .expect("bench engine builds")
}

fn snapshot_of(model: sling_models::StackHeapModel, act: u64) -> Snapshot {
    Snapshot {
        location: Location::Entry,
        model,
        tainted: false,
        activation: act,
    }
}

fn infer_vs_traces(c: &mut Criterion) {
    let target = Symbol::intern("f");

    let mut group = c.benchmark_group("infer_vs_traces");
    for traces in [1usize, 4, 16] {
        let models: Vec<sling_models::StackHeapModel> = (0..traces)
            .map(|i| two_list_model(8, 5, i as u64))
            .collect();
        let snaps: Vec<Snapshot> = models
            .into_iter()
            .enumerate()
            .map(|(i, m)| snapshot_of(m, i as u64 + 1))
            .collect();
        let refs: Vec<&Snapshot> = snaps.iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(traces), &refs, |b, refs| {
            // Clear the cache each round so every sample measures cold
            // inference (plus intra-location reuse), not memo lookups.
            let engine = engine();
            b.iter(|| {
                engine.clear_cache();
                let report = engine
                    .infer_at(target, Location::Entry, refs)
                    .expect("target exists");
                assert!(!report.invariants.is_empty());
            });
        });
    }
    group.finish();
}

fn infer_vs_heap_size(c: &mut Criterion) {
    let target = Symbol::intern("f");

    let mut group = c.benchmark_group("infer_vs_heap_size");
    for n in [4usize, 10, 24] {
        let snaps: Vec<Snapshot> = (0..3)
            .map(|i| snapshot_of(two_list_model(n, n, i as u64), i as u64 + 1))
            .collect();
        let refs: Vec<&Snapshot> = snaps.iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &refs, |b, refs| {
            let engine = engine();
            b.iter(|| {
                engine.clear_cache();
                engine
                    .infer_at(target, Location::Entry, refs)
                    .expect("target exists")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, infer_vs_traces, infer_vs_heap_size);
criterion_main!(benches);
