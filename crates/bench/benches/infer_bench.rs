//! InferAtom / SplitHeap costs vs. boundary size and trace count —
//! the enumeration the paper calls exponential in predicates and
//! parameters (§4.5), and the §5 claim that few traces suffice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sling::{infer_at_location, SlingConfig};
use sling_bench::{snode_preds, snode_types, two_list_model};
use sling_checker::CheckCtx;
use sling_lang::{parse_program, Location, Snapshot};
use sling_logic::Symbol;

fn snapshot_of(model: sling_models::StackHeapModel, act: u64) -> Snapshot {
    Snapshot { location: Location::Entry, model, tainted: false, activation: act }
}

fn infer_vs_traces(c: &mut Criterion) {
    let types = snode_types();
    let preds = snode_preds();
    let ctx = CheckCtx::new(&types, &preds);
    let program = parse_program(
        "struct SNode { next: SNode*; data: int; }
         fn f(x: SNode*, y: SNode*) -> SNode* { return x; }",
    )
    .unwrap();
    let func = program.func(Symbol::intern("f")).unwrap();
    let config = SlingConfig::default();

    let mut group = c.benchmark_group("infer_vs_traces");
    for traces in [1usize, 4, 16] {
        let models: Vec<sling_models::StackHeapModel> =
            (0..traces).map(|i| two_list_model(8, 5, i as u64)).collect();
        let snaps: Vec<Snapshot> = models
            .into_iter()
            .enumerate()
            .map(|(i, m)| snapshot_of(m, i as u64 + 1))
            .collect();
        let refs: Vec<&Snapshot> = snaps.iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(traces), &refs, |b, refs| {
            b.iter(|| {
                let report = infer_at_location(
                    &ctx,
                    Location::Entry,
                    refs,
                    &[Symbol::intern("x"), Symbol::intern("y")],
                    func,
                    &config,
                );
                assert!(!report.invariants.is_empty());
            });
        });
    }
    group.finish();
}

fn infer_vs_heap_size(c: &mut Criterion) {
    let types = snode_types();
    let preds = snode_preds();
    let ctx = CheckCtx::new(&types, &preds);
    let program = parse_program(
        "struct SNode { next: SNode*; data: int; }
         fn f(x: SNode*, y: SNode*) -> SNode* { return x; }",
    )
    .unwrap();
    let func = program.func(Symbol::intern("f")).unwrap();
    let config = SlingConfig::default();

    let mut group = c.benchmark_group("infer_vs_heap_size");
    for n in [4usize, 10, 24] {
        let snaps: Vec<Snapshot> = (0..3)
            .map(|i| snapshot_of(two_list_model(n, n, i as u64), i as u64 + 1))
            .collect();
        let refs: Vec<&Snapshot> = snaps.iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &refs, |b, refs| {
            b.iter(|| {
                infer_at_location(
                    &ctx,
                    Location::Entry,
                    refs,
                    &[Symbol::intern("x"), Symbol::intern("y")],
                    func,
                    &config,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, infer_vs_traces, infer_vs_heap_size);
criterion_main!(benches);
