//! Execution-tier cost: the compiled bytecode VM vs the tree-walk
//! interpreter on the same workloads.
//!
//! Three regimes:
//! - traced collection on the `ListCorpus` fixtures, per-run
//!   (`reverse` alone) and per-batch (all four targets) — the shape
//!   `Engine::analyze` pays during trace collection;
//! - a long-loop stress program (execution-dominated, two snapshots);
//! - a deep-recursion stress program (call/return dominated).
//!
//! The stress pair is the headline number: the bytecode tier's whole
//! reason to exist is that tick-counted stepping through a `while`
//! loop or a recursive descent is much cheaper as a dispatch loop over
//! flat instructions than as a tree walk.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sling::{collect_models, CompiledProgram, Compiler, Executor};
use sling_lang::{check_program, parse_program, Program, TraceConfig, VmConfig};
use sling_logic::Symbol;
use sling_models::Val;
use sling_suite::fixtures::ListCorpus;

const EXECUTORS: [Executor; 2] = [Executor::Bytecode, Executor::Treewalk];

fn compiled(source: &str) -> (Program, CompiledProgram) {
    let program = parse_program(source).unwrap();
    check_program(&program).unwrap();
    let chunks = Compiler::compile(&program);
    (program, chunks)
}

/// Traced collection on the list corpus: one target per iteration
/// (per-run) and all four targets (per-batch).
fn corpus_collection(c: &mut Criterion) {
    let corpus = ListCorpus::new("VmBenchNode");
    let (program, chunks) = compiled(&corpus.program());
    let targets: Vec<(&str, Vec<sling::InputSource>)> = vec![
        (
            "reverse",
            vec![
                corpus.one(1, 0).into(),
                corpus.one(2, 8).into(),
                corpus.one(3, 16).into(),
            ],
        ),
        (
            "traverse",
            vec![corpus.one(4, 0).into(), corpus.one(5, 12).into()],
        ),
        (
            "append",
            vec![corpus.two(6, 4, 4).into(), corpus.two(7, 8, 0).into()],
        ),
        (
            "last",
            vec![corpus.one(8, 1).into(), corpus.one(9, 10).into()],
        ),
    ];
    let collect = |target: &str, inputs: &[sling::InputSource], executor| {
        collect_models(
            &program,
            &chunks,
            Symbol::intern(target),
            inputs,
            VmConfig::default(),
            TraceConfig::default(),
            executor,
        )
    };
    for executor in EXECUTORS {
        c.bench_function(&format!("vm_collect_run_reverse_{executor}"), |b| {
            b.iter(|| {
                let out = collect("reverse", &targets[0].1, executor);
                assert_eq!(out.runs.len(), 3);
                black_box(out)
            });
        });
        c.bench_function(&format!("vm_collect_batch_{executor}"), |b| {
            b.iter(|| {
                for (target, inputs) in &targets {
                    black_box(collect(target, inputs, executor));
                }
            });
        });
    }
}

/// Long unlabelled loop: execution cost dominates (only the entry and
/// exit snapshots are recorded).
fn stress_loop(c: &mut Criterion) {
    let (program, chunks) = compiled(
        "fn spin(n: int) -> int {
             var i: int = 0;
             var acc: int = 0;
             while (i < n) {
                 acc = acc + i % 7 - i % 3;
                 i = i + 1;
             }
             return acc;
         }",
    );
    let input = || vec![sling::InputSource::custom(|_| vec![Val::Int(60_000)])];
    for executor in EXECUTORS {
        c.bench_function(&format!("vm_stress_loop_{executor}"), |b| {
            b.iter(|| {
                let out = collect_models(
                    &program,
                    &chunks,
                    Symbol::intern("spin"),
                    &input(),
                    VmConfig::default(),
                    TraceConfig::default(),
                    executor,
                );
                assert_eq!(out.faulted_runs(), 0);
                black_box(out)
            });
        });
    }
}

/// Deep linear recursion: call/return and frame cost dominate. The
/// tracer targets the `run` wrapper (two snapshots total), so the
/// descent itself runs untraced at full speed in both tiers — repeated
/// enough times per call that per-activation cost is what's measured.
fn stress_recursion(c: &mut Criterion) {
    let (program, chunks) = compiled(
        "fn depth(n: int) -> int {
             if (n < 1) { return 0; }
             return 1 + depth(n - 1);
         }
         fn run(n: int) -> int {
             var reps: int = 0;
             var sum: int = 0;
             while (reps < 40) {
                 sum = sum + depth(n);
                 reps = reps + 1;
             }
             return sum;
         }",
    );
    let input = || vec![sling::InputSource::custom(|_| vec![Val::Int(1_200)])];
    for executor in EXECUTORS {
        c.bench_function(&format!("vm_stress_recursion_{executor}"), |b| {
            b.iter(|| {
                let out = collect_models(
                    &program,
                    &chunks,
                    Symbol::intern("run"),
                    &input(),
                    VmConfig::default(),
                    TraceConfig::default(),
                    executor,
                );
                assert_eq!(out.faulted_runs(), 0);
                black_box(out)
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = corpus_collection, stress_loop, stress_recursion
}
criterion_main!(benches);
