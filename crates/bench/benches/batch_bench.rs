//! Batch throughput: `Engine::analyze_all` over a multi-target batch,
//! sequential vs. parallel.
//!
//! The batch fans eight requests (four list functions × two input sets)
//! out over the engine's worker threads; the parallel run should beat
//! the sequential one roughly by the worker count on multi-core
//! machines, since requests are independent and the sharded entailment
//! cache keeps memoization from serializing on one lock.

use criterion::{criterion_group, criterion_main, Criterion};

use sling::{AnalysisRequest, Engine, InputSpec, ListLayout, ValueSpec};
use sling_logic::Symbol;

const PROGRAM: &str = "
    struct QNode { next: QNode*; data: int; }
    fn reverse(x: QNode*) -> QNode* {
        var r: QNode* = null;
        while @rev (x != null) {
            var t: QNode* = x->next;
            x->next = r;
            r = x;
            x = t;
        }
        return r;
    }
    fn traverse(x: QNode*) -> QNode* {
        var c: QNode* = x;
        while @walk (c != null) {
            c = c->next;
        }
        return x;
    }
    fn append(x: QNode*, y: QNode*) -> QNode* {
        if (x == null) { return y; }
        var t: QNode* = append(x->next, y);
        x->next = t;
        return x;
    }
    fn last(x: QNode*) -> QNode* {
        if (x == null) { return null; }
        if (x->next == null) { return x; }
        return last(x->next);
    }";

const PREDS: &str = "
    pred sll(x: QNode*) := emp & x == nil
       | exists u, d. x -> QNode{next: u, data: d} * sll(u);
    pred lseg(x: QNode*, y: QNode*) := emp & x == y
       | exists u, d. x -> QNode{next: u, data: d} * lseg(u, y);";

fn layout() -> ListLayout {
    ListLayout {
        ty: Symbol::intern("QNode"),
        nfields: 2,
        next: 0,
        prev: None,
        data: Some(1),
    }
}

fn engine(parallelism: usize) -> Engine {
    Engine::builder()
        .program_source(PROGRAM)
        .expect("program parses")
        .predicates_source(PREDS)
        .expect("predicates parse")
        .parallelism(parallelism)
        .build()
        .expect("program checks")
}

/// Eight independent requests across four targets.
fn batch() -> Vec<AnalysisRequest> {
    let one = |seed: u64, n: usize| InputSpec::seeded(seed).arg(ValueSpec::sll(layout(), n));
    let two = |seed: u64, n: usize, m: usize| {
        InputSpec::seeded(seed)
            .arg(ValueSpec::sll(layout(), n))
            .arg(ValueSpec::sll(layout(), m))
    };
    let mut out = Vec::new();
    for round in 0..2u64 {
        let s = round * 100;
        out.push(AnalysisRequest::new("reverse").inputs([
            one(s + 1, 0),
            one(s + 2, 4),
            one(s + 3, 8),
        ]));
        out.push(AnalysisRequest::new("traverse").inputs([one(s + 4, 0), one(s + 5, 6)]));
        out.push(AnalysisRequest::new("append").inputs([
            two(s + 6, 0, 2),
            two(s + 7, 3, 0),
            two(s + 8, 3, 3),
        ]));
        out.push(AnalysisRequest::new("last").inputs([one(s + 9, 1), one(s + 10, 5)]));
    }
    out
}

fn batch_throughput(c: &mut Criterion) {
    let requests = batch();
    // At least 4 workers so the parallel path is exercised even on
    // small containers; on real multi-core hardware this is the core
    // count and the wall-clock gap over sequential tracks it.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(4);

    let sequential = engine(1);
    c.bench_function("batch_8targets_sequential", |b| {
        b.iter(|| {
            // Cold cache each round so both modes measure full work.
            sequential.clear_cache();
            let batch = sequential.analyze_all(&requests).expect("targets exist");
            assert!(batch.invariant_count() > 0);
        });
    });

    let parallel = engine(workers);
    c.bench_function(&format!("batch_8targets_parallel_x{workers}"), |b| {
        b.iter(|| {
            parallel.clear_cache();
            let batch = parallel.analyze_all(&requests).expect("targets exist");
            assert!(batch.invariant_count() > 0);
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = batch_throughput
}
criterion_main!(benches);
