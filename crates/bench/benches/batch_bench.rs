//! Batch throughput: `Engine::analyze_all` over a multi-target batch,
//! sequential vs. parallel.
//!
//! The batch fans eight requests (four list functions × two input sets)
//! out over the engine's worker threads; the parallel run should beat
//! the sequential one roughly by the worker count on multi-core
//! machines, since requests are independent and the sharded entailment
//! cache keeps memoization from serializing on one lock.

use criterion::{criterion_group, criterion_main, Criterion};

use sling::Engine;
use sling_suite::fixtures::ListCorpus;

fn corpus() -> ListCorpus {
    ListCorpus::new("BatchBenchNode")
}

fn engine(parallelism: usize) -> Engine {
    let corpus = corpus();
    Engine::builder()
        .program_source(&corpus.program())
        .expect("program parses")
        .predicates_source(&corpus.predicates())
        .expect("predicates parse")
        .parallelism(parallelism)
        .build()
        .expect("program checks")
}

fn batch_throughput(c: &mut Criterion) {
    // Eight independent requests across four targets.
    let requests = corpus().batch(2);
    // At least 4 workers so the parallel path is exercised even on
    // small containers; on real multi-core hardware this is the core
    // count and the wall-clock gap over sequential tracks it.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(4);

    let sequential = engine(1);
    c.bench_function("batch_8targets_sequential", |b| {
        b.iter(|| {
            // Cold cache each round so both modes measure full work.
            sequential.clear_cache();
            let batch = sequential.analyze_all(&requests).expect("targets exist");
            assert!(batch.invariant_count() > 0);
        });
    });

    let parallel = engine(workers);
    c.bench_function(&format!("batch_8targets_parallel_x{workers}"), |b| {
        b.iter(|| {
            parallel.clear_cache();
            let batch = parallel.analyze_all(&requests).expect("targets exist");
            assert!(batch.invariant_count() > 0);
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = batch_throughput
}
criterion_main!(benches);
