//! Warm vs. cold start: the batch corpus analyzed by a fresh engine,
//! with and without a persisted entailment-cache snapshot.
//!
//! Each iteration builds a new engine — the cold variant starts with an
//! empty cache, the warm variant restores the snapshot saved by a
//! set-up run — and then serves the full eight-request batch. The gap
//! between the two is exactly what cross-run persistence buys a
//! corpus-scale workload: every entailment established by the previous
//! process is answered from disk instead of re-searched.

use criterion::{criterion_group, criterion_main, Criterion};

use sling::Engine;
use sling_suite::fixtures::ListCorpus;

fn corpus() -> ListCorpus {
    ListCorpus::new("PersistBenchNode")
}

fn engine(cache_path: Option<&std::path::Path>) -> Engine {
    let corpus = corpus();
    let mut builder = Engine::builder()
        .program_source(&corpus.program())
        .expect("program parses")
        .predicates_source(&corpus.predicates())
        .expect("predicates parse")
        .parallelism(1); // measure the cache, not the thread pool
    if let Some(path) = cache_path {
        builder = builder.cache_path(path);
    }
    builder.build().expect("program checks")
}

fn warm_vs_cold(c: &mut Criterion) {
    let requests = corpus().batch(2);
    let path = std::env::temp_dir().join(format!("sling-persist-bench-{}.bin", std::process::id()));

    // Set-up run: populate and snapshot the cache once.
    let seed_engine = engine(Some(&path));
    seed_engine.analyze_all(&requests).expect("targets exist");
    let written = seed_engine.save_cache().expect("snapshot writes");
    assert!(written > 0, "set-up run must populate the cache");
    drop(seed_engine);

    c.bench_function("corpus_cold_start", |b| {
        b.iter(|| {
            let cold = engine(None);
            let batch = cold.analyze_all(&requests).expect("targets exist");
            assert!(batch.invariant_count() > 0);
            assert_eq!(batch.cache.warm_hits, 0);
        });
    });

    c.bench_function("corpus_warm_start", |b| {
        b.iter(|| {
            let warm = engine(Some(&path));
            assert_eq!(warm.warm_entries(), written);
            let batch = warm.analyze_all(&requests).expect("targets exist");
            assert!(batch.invariant_count() > 0);
            assert!(batch.cache.warm_hits > 0, "snapshot must carry the load");
        });
    });

    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = warm_vs_cold
}
criterion_main!(benches);
