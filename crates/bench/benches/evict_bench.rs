//! Cache-capacity sweep: the corpus batch through an unbounded cache
//! vs. LRU-bounded caches of shrinking capacity.
//!
//! This measures the cost of the retention policy itself — the bounded
//! variants pay for evictions and for the cold re-searches of entries
//! the bound forgot, which is exactly the trade a memory-capped
//! deployment makes. The unbounded run is the floor; `cap=64` churns
//! hard (one corpus round creates a few hundred entries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sling::Engine;
use sling_checker::SHARD_COUNT;
use sling_suite::fixtures::ListCorpus;

fn corpus() -> ListCorpus {
    ListCorpus::new("EvictBenchNode")
}

fn engine(capacity: Option<usize>) -> Engine {
    let corpus = corpus();
    let mut builder = Engine::builder()
        .program_source(&corpus.program())
        .expect("program parses")
        .predicates_source(&corpus.predicates())
        .expect("predicates parse")
        .parallelism(1); // measure the cache, not the thread pool
    if let Some(capacity) = capacity {
        builder = builder.cache_capacity(capacity);
    }
    builder.build().expect("program checks")
}

fn capacity_sweep(c: &mut Criterion) {
    let requests = corpus().batch(2);
    let mut group = c.benchmark_group("cache_capacity");
    group.sample_size(10);

    group.bench_function("unbounded", |b| {
        b.iter(|| {
            let engine = engine(None);
            let batch = engine.analyze_all(&requests).expect("targets exist");
            assert!(batch.invariant_count() > 0);
            assert_eq!(batch.cache.evictions, 0);
        });
    });

    for cap in [512usize, 128, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let engine = engine(Some(cap));
                let batch = engine.analyze_all(&requests).expect("targets exist");
                assert!(batch.invariant_count() > 0);
                assert!(
                    engine.cache_stats().entries
                        <= (cap.div_ceil(SHARD_COUNT) * SHARD_COUNT) as u64,
                    "the bound must hold under churn"
                );
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = capacity_sweep
}
criterion_main!(benches);
