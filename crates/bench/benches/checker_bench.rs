//! Model-checker cost vs. heap size and formula shape (the §4.5
//! complexity discussion: "checking predicates over combinations of
//! variables over many collected stack-heap models can be slow").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sling_bench::{list_model, snode_preds, snode_types, two_list_model};
use sling_checker::{CheckCache, CheckCtx};
use sling_logic::parse_formula;

fn checker_vs_heap_size(c: &mut Criterion) {
    let types = snode_types();
    let preds = snode_preds();
    let ctx = CheckCtx::new(&types, &preds);
    let sll = parse_formula("sll(x)").unwrap();
    let mut group = c.benchmark_group("check_sll");
    for n in [4usize, 16, 64, 256] {
        let model = list_model(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| ctx.check(m, &sll).expect("holds"));
        });
    }
    group.finish();
}

fn checker_segments(c: &mut Criterion) {
    let types = snode_types();
    let preds = snode_preds();
    let ctx = CheckCtx::new(&types, &preds);
    let f = parse_formula("exists u. lseg(x, u) * sll(u)").unwrap();
    let mut group = c.benchmark_group("check_lseg_split");
    for n in [8usize, 32, 128] {
        let model = list_model(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| ctx.check(m, &f).expect("holds"));
        });
    }
    group.finish();
}

fn checker_rejects(c: &mut Criterion) {
    let types = snode_types();
    let preds = snode_preds();
    let ctx = CheckCtx::new(&types, &preds);
    // x and y are separate: one sll cannot cover both, and lseg(x, y)
    // fails because x's list never reaches y.
    let f = parse_formula("lseg(x, y)").unwrap();
    let mut group = c.benchmark_group("check_reject");
    for n in [8usize, 32] {
        let model = two_list_model(n, n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| {
                let red = ctx.check(m, &f);
                assert!(red.map(|r| r.covered == 0).unwrap_or(true));
            });
        });
    }
    group.finish();
}

fn checker_cache_warm_vs_cold(c: &mut Criterion) {
    let types = snode_types();
    let preds = snode_preds();
    let sll = parse_formula("sll(x)").unwrap();
    let mut group = c.benchmark_group("check_sll_cached");
    for n in [16usize, 64, 256] {
        // After the first (cold) query every further check of the same
        // canonical shape is answered from the cache.
        let warmup = list_model(n, 7);
        let cache = CheckCache::new();
        let ctx = CheckCtx::with_cache(&types, &preds, Default::default(), &cache);
        ctx.check(&warmup, &sll).expect("holds");
        group.bench_with_input(BenchmarkId::from_parameter(n), &warmup, |b, m| {
            b.iter(|| ctx.check(m, &sll).expect("holds"));
        });
        assert!(cache.stats().hits > 0, "warm path must be exercised");
    }
    group.finish();
}

criterion_group!(
    benches,
    checker_vs_heap_size,
    checker_segments,
    checker_rejects,
    checker_cache_warm_vs_cold
);
criterion_main!(benches);
