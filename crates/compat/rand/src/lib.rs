//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! exactly the API surface the workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`]. The generator is a deterministic splitmix64 — not
//! cryptographic, but plenty for seeded test-input generation, and stable
//! across platforms so corpus runs are reproducible.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $ty
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator, seedable from a `u64`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDEAD_BEEF_CAFE_F00D,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0i64..100), b.gen_range(0i64..100));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
