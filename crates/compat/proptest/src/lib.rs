//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset used by this workspace's property tests: the
//! [`proptest!`] macro over `name(arg in strategy, ...)` functions,
//! `prop_assert!` / `prop_assert_eq!`, integer-range strategies,
//! [`any`] for primitives, `collection::{vec, btree_set}`, [`Just`],
//! tuple strategies, [`Strategy::prop_map`], [`Strategy::boxed`], and
//! the (optionally weighted) [`prop_oneof!`] union.
//!
//! Cases are generated from a deterministic per-test RNG (seeded by the
//! test name), so failures are reproducible; there is no shrinking — a
//! failing case panics with the standard assertion message.

#![warn(missing_docs)]

use std::ops::Range;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic splitmix64 generator used by the runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (stable across runs).
    pub fn deterministic(name: &str) -> TestRng {
        let mut state = 0xA076_1D64_78BD_642Fu64;
        for b in name.bytes() {
            state = (state ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state }
    }

    /// The next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`; no
    /// shrinking here, so it is a plain post-transform).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies producing
    /// the same value type can share one name (and be stored together,
    /// e.g. inside [`prop_oneof!`] arms). The result is cheaply
    /// cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy ([`Strategy::boxed`]). Clones share the
/// underlying generator.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A weighted union of strategies over one value type (built by
/// [`prop_oneof!`]): each draw picks an arm with probability
/// proportional to its weight, then samples it.
#[derive(Clone, Debug)]
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds the union; panics on an empty arm list or all-zero
    /// weights (both make a draw impossible).
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights summed to total")
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Picks one of several strategies per draw, optionally weighted
/// (`weight => strategy`). All arms must produce the same value type;
/// each arm is boxed, so heterogeneous strategy types compose.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $ty
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy for "any value" of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T>() -> AnyStrategy<T>
where
    AnyStrategy<T>: Strategy<Value = T>,
{
    AnyStrategy(std::marker::PhantomData)
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($ty:ty),*) => {$(
        impl Strategy for AnyStrategy<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with target sizes drawn from a range.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Sets of `element` values with at most `size` elements (duplicates
    /// drawn during generation collapse, as in real proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// Re-exported so `use proptest::prelude::*` + unqualified names work.
pub use collection::{BTreeSetStrategy, VecStrategy};

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg); $($rest)* }
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(n in 2usize..9, k in -3i64..3) {
            prop_assert!((2..9).contains(&n));
            prop_assert!((-3..3).contains(&k));
        }

        #[test]
        fn collections_sized(v in crate::collection::vec(0i64..5, 0..7),
                             s in crate::collection::btree_set(0u64..40, 0..6)) {
            prop_assert!(v.len() < 7);
            prop_assert!(s.len() < 6);
            prop_assert_eq!(v.iter().filter(|x| **x >= 5).count(), 0);
        }

        #[test]
        fn any_bool_compiles(b in any::<bool>()) {
            let label = if b { "true" } else { "false" };
            prop_assert!(!label.is_empty());
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
