//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches
//! use — `criterion_group!` / `criterion_main!`, [`Criterion`],
//! benchmark groups, [`BenchmarkId`], and `Bencher::iter` — backed by a
//! simple wall-clock timer. Results print as `bench-name ... median t`
//! lines; there is no statistical analysis, HTML report, or comparison
//! machinery, but benches compile and produce usable numbers offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark in the group with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id built from a benchmark name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

/// Times closures for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Times `f`, recording one sample per requested round.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.rounds {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        rounds: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    println!(
        "{name:<48} median {:>12?}  ({} samples, total {:?})",
        median,
        b.samples.len(),
        total
    );
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn named_group_form_compiles() {
        criterion_group! {
            name = configured;
            config = Criterion::default().sample_size(3);
            targets = sample_bench
        }
        configured();
    }
}
