//! The shared entailment-cache server (`sling-serve --cache-server`).
//!
//! One process holds the fleet's memo table: engines built with
//! [`sling::EngineBuilder::remote_cache`] consult it on every local
//! cache miss (`get`), upload fresh verdicts write-behind (`put`), and
//! periodically pull what sibling engines computed (`sync`). The wire
//! productions — and the write-through client — live in
//! [`sling::remote`]; this module is the store and the accept loop.
//!
//! # Store semantics
//!
//! Entries are namespaced by the *type-environment* fingerprint
//! ([`sling::EnvProfile::types_tag`]) and keyed by `(node_budget,
//! fuel_slack, canonical text)` within a namespace — the same scope key
//! the engines' local shards use. Each entry carries its per-predicate
//! `(name, fingerprint)` pairs verbatim; the server never interprets
//! them (validation is the *client's* job, exactly as when loading a
//! persisted snapshot), so engines with partially divergent predicate
//! libraries can share one namespace safely.
//!
//! Arrivals are stamped with [`sling::persist::generation_stamp`] — the
//! same strictly monotonic clock snapshot saves use — so `sync since`
//! has a total order to page through and newest-generation-wins merge
//! behaves identically whether an entry arrived over the wire or from a
//! snapshot file. A `put` for an existing key simply restamps it: the
//! fleet's latest computation wins everywhere.
//!
//! The server is deliberately dumb: no persistence (engines already
//! snapshot locally), no validation, no eviction beyond a per-namespace
//! entry cap. Losing it costs the fleet warm starts, never correctness
//! — clients degrade to local-only analysis and reconnect with backoff.

use std::collections::HashMap;
use std::io::{self, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sling::persist::generation_stamp;
use sling::remote::{CacheRequest, CacheResponse};
use sling::RemoteEntry;

use crate::proto::{FrameBuffer, FrameTooLarge, MAX_FRAME_BYTES};

/// How often blocked reads wake up to notice a shutdown in progress.
const DRAIN_POLL: Duration = Duration::from_millis(100);

/// Bound on entries per namespace: past it, `put`s for *new* keys are
/// dropped (restamps of resident keys still land). A cache tier under
/// memory pressure serving slightly fewer hits beats one that OOMs the
/// whole fleet's accelerator.
pub const NAMESPACE_CAP: usize = 1 << 20;

/// Bound on entries per `sync` answer; a client further behind pages
/// through in consecutive rounds (the returned watermark only advances
/// past what was actually sent).
const SYNC_BATCH: usize = 4096;

/// One stored verdict (the key lives in the map).
#[derive(Debug)]
struct Stored {
    value: Option<Vec<u8>>,
    preds: Vec<(String, u64)>,
    generation: u64,
}

/// All entries sharing one type-environment fingerprint.
#[derive(Debug, Default)]
struct Namespace {
    entries: HashMap<(u64, u32, String), Stored>,
    /// Highest generation ever stamped in this namespace (monotone even
    /// across overwrites, so `sync` watermarks never regress).
    watermark: u64,
}

/// Observable counters of a [`CacheServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheServerStats {
    /// `get` requests served.
    pub gets: u64,
    /// `get` requests answered with a hit.
    pub hits: u64,
    /// Entries accepted from `put` batches.
    pub puts: u64,
    /// `sync` requests served.
    pub syncs: u64,
    /// Entries dropped at the namespace cap.
    pub dropped: u64,
    /// Entries resident right now, across all namespaces.
    pub entries: u64,
}

#[derive(Debug)]
struct CacheShared {
    namespaces: Mutex<HashMap<u64, Namespace>>,
    entries: AtomicU64,
    draining: AtomicBool,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    gets: AtomicU64,
    hits: AtomicU64,
    puts: AtomicU64,
    syncs: AtomicU64,
    dropped: AtomicU64,
}

impl CacheShared {
    /// Serves one decoded request; `None` means no reply frame (`put`
    /// is fire-and-forget).
    fn serve(&self, request: CacheRequest) -> Option<CacheResponse> {
        match request {
            CacheRequest::Get {
                types_tag,
                node_budget,
                fuel_slack,
                text,
            } => {
                self.gets.fetch_add(1, Ordering::Relaxed);
                let namespaces = self.namespaces.lock().expect("cache store");
                let found = namespaces
                    .get(&types_tag)
                    .and_then(|ns| ns.entries.get_key_value(&(node_budget, fuel_slack, text)));
                match found {
                    Some((key, stored)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        Some(CacheResponse::Hit(RemoteEntry {
                            node_budget: key.0,
                            fuel_slack: key.1,
                            text: key.2.clone(),
                            value: stored.value.clone(),
                            preds: stored.preds.clone(),
                            generation: stored.generation,
                        }))
                    }
                    None => Some(CacheResponse::Miss),
                }
            }
            CacheRequest::Put { types_tag, entries } => {
                let mut namespaces = self.namespaces.lock().expect("cache store");
                let ns = namespaces.entry(types_tag).or_default();
                for entry in entries {
                    let key = (entry.node_budget, entry.fuel_slack, entry.text);
                    if !ns.entries.contains_key(&key) {
                        if ns.entries.len() >= NAMESPACE_CAP {
                            self.dropped.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        self.entries.fetch_add(1, Ordering::Relaxed);
                    }
                    // Stamp the arrival: strictly newer than anything
                    // stored, so newest-generation-wins merges on the
                    // clients resolve toward the fleet's latest.
                    let generation = generation_stamp(ns.watermark);
                    ns.watermark = generation;
                    ns.entries.insert(
                        key,
                        Stored {
                            value: entry.value,
                            preds: entry.preds,
                            generation,
                        },
                    );
                    self.puts.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
            CacheRequest::Sync { types_tag, since } => {
                self.syncs.fetch_add(1, Ordering::Relaxed);
                let namespaces = self.namespaces.lock().expect("cache store");
                let Some(ns) = namespaces.get(&types_tag) else {
                    return Some(CacheResponse::Entries {
                        watermark: since,
                        entries: Vec::new(),
                    });
                };
                let mut fresh: Vec<RemoteEntry> = ns
                    .entries
                    .iter()
                    .filter(|(_, stored)| stored.generation > since)
                    .map(|(key, stored)| RemoteEntry {
                        node_budget: key.0,
                        fuel_slack: key.1,
                        text: key.2.clone(),
                        value: stored.value.clone(),
                        preds: stored.preds.clone(),
                        generation: stored.generation,
                    })
                    .collect();
                fresh.sort_by_key(|entry| entry.generation);
                // Page oversized backlogs: advance the watermark only
                // past what this answer actually carries, so the next
                // round resumes exactly where this one stopped.
                let watermark = if fresh.len() > SYNC_BATCH {
                    fresh.truncate(SYNC_BATCH);
                    fresh.last().map_or(since, |entry| entry.generation)
                } else {
                    ns.watermark.max(since)
                };
                Some(CacheResponse::Entries {
                    watermark,
                    entries: fresh,
                })
            }
        }
    }

    fn stats(&self) -> CacheServerStats {
        CacheServerStats {
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }
}

/// The standalone entailment-cache tier: binds a listener and serves
/// `get`/`put`/`sync` until [`CacheServer::shutdown`] (or drop). See
/// the module docs for store semantics.
#[derive(Debug)]
pub struct CacheServer {
    shared: Arc<CacheShared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl CacheServer {
    /// Binds the cache server to `addr` (port 0 picks an ephemeral
    /// port — see [`CacheServer::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<CacheServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(CacheShared {
            namespaces: Mutex::new(HashMap::new()),
            entries: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            handlers: Mutex::new(Vec::new()),
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(CacheServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
        })
    }

    /// The address the server is accepting on (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Observable counters.
    pub fn stats(&self) -> CacheServerStats {
        self.shared.stats()
    }

    /// Stops the server: closes the listener (freeing the port for a
    /// restart), disconnects every client mid-whatever, and joins the
    /// handler threads. Clients see a dead socket and degrade — that is
    /// the contract the fault-injection tests exercise.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// The consuming-shutdown body, shared with `Drop`. Idempotent.
    fn stop(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept`; a throwaway connection wakes
        // it so it can observe the flag and drop the listener.
        TcpStream::connect(self.local_addr).ok();
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().ok();
        }
        loop {
            let Some(handler) = self.shared.handlers.lock().expect("handler list").pop() else {
                break;
            };
            handler.join().ok();
        }
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<CacheShared>) {
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break; // the listener drops with this frame: port freed
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(_) => {
                std::thread::sleep(DRAIN_POLL);
                continue;
            }
        };
        let handler_shared = Arc::clone(shared);
        let handler = std::thread::spawn(move || handle_connection(stream, &handler_shared));
        let mut handlers = shared.handlers.lock().expect("handler list");
        handlers.retain(|h| !h.is_finished());
        handlers.push(handler);
    }
}

/// The per-connection loop: banner, then request/reply frames until
/// the client hangs up or the shutdown begins.
fn handle_connection(mut stream: TcpStream, shared: &CacheShared) {
    stream.set_nodelay(true).ok();
    // Reads wake periodically so an idle connection notices shutdown.
    stream.set_read_timeout(Some(DRAIN_POLL)).ok();
    let banner = CacheResponse::Hello {
        entries: shared.entries.load(Ordering::Relaxed),
    };
    if send(&mut stream, banner).is_err() {
        return;
    }
    let mut frames = FrameBuffer::with_limit(MAX_FRAME_BYTES);
    loop {
        while let Some(line) = frames.pop_line() {
            if line.trim().is_empty() {
                continue;
            }
            let reply = match CacheRequest::decode(&line) {
                Ok(request) => shared.serve(request),
                Err(e) => Some(CacheResponse::Error {
                    message: e.to_string(),
                }),
            };
            if let Some(reply) = reply {
                if send(&mut stream, reply).is_err() {
                    return;
                }
            }
        }
        if shared.draining.load(Ordering::SeqCst) {
            return; // mid-shutdown: drop the client, it knows how to degrade
        }
        match frames.fill(&mut stream) {
            Ok(true) => {}
            Ok(false) => return, // clean EOF
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                if e.get_ref().is_some_and(|inner| inner.is::<FrameTooLarge>()) {
                    send(
                        &mut stream,
                        CacheResponse::Error {
                            message: e.to_string(),
                        },
                    )
                    .ok();
                }
                return;
            }
        }
    }
}

fn send(stream: &mut TcpStream, response: CacheResponse) -> io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A bare test client speaking the cache productions directly.
    struct Probe {
        reader: BufReader<TcpStream>,
    }

    impl Probe {
        fn connect(addr: SocketAddr) -> Probe {
            let stream = TcpStream::connect(addr).expect("connect probe");
            let mut probe = Probe {
                reader: BufReader::new(stream),
            };
            assert!(matches!(probe.read(), CacheResponse::Hello { .. }));
            probe
        }

        fn send(&mut self, request: &CacheRequest) {
            let mut line = request.encode();
            line.push('\n');
            self.reader
                .get_ref()
                .write_all(line.as_bytes())
                .expect("probe write");
        }

        fn read(&mut self) -> CacheResponse {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("probe read");
            CacheResponse::decode(line.trim_end()).expect("probe decode")
        }

        fn round_trip(&mut self, request: &CacheRequest) -> CacheResponse {
            self.send(request);
            self.read()
        }
    }

    fn entry(text: &str, residual: &[u8]) -> RemoteEntry {
        RemoteEntry {
            node_budget: 1000,
            fuel_slack: 8,
            text: text.to_string(),
            value: Some(residual.to_vec()),
            preds: vec![("p".into(), 77)],
            generation: 0,
        }
    }

    #[test]
    fn get_put_sync_round_trip_with_stamped_generations() {
        let server = CacheServer::bind("127.0.0.1:0").expect("bind");
        let mut probe = Probe::connect(server.local_addr());

        let miss = probe.round_trip(&CacheRequest::Get {
            types_tag: 5,
            node_budget: 1000,
            fuel_slack: 8,
            text: "q1".into(),
        });
        assert_eq!(miss, CacheResponse::Miss);

        probe.send(&CacheRequest::Put {
            types_tag: 5,
            entries: vec![entry("q1", &[1]), entry("q2", &[2])],
        });
        // `put` has no reply; the next `get` observes it (same
        // connection, so ordering is the socket's).
        let hit = probe.round_trip(&CacheRequest::Get {
            types_tag: 5,
            node_budget: 1000,
            fuel_slack: 8,
            text: "q1".into(),
        });
        let CacheResponse::Hit(got) = hit else {
            panic!("expected a hit, got {hit:?}");
        };
        assert_eq!(got.value.as_deref(), Some(&[1][..]));
        assert_eq!(got.preds, vec![("p".to_string(), 77)]);
        assert!(got.generation > 0, "arrivals are stamped");

        // Namespaces are disjoint: the same key under another types_tag
        // misses.
        assert_eq!(
            probe.round_trip(&CacheRequest::Get {
                types_tag: 6,
                node_budget: 1000,
                fuel_slack: 8,
                text: "q1".into(),
            }),
            CacheResponse::Miss
        );

        // Sync from zero sees both entries in generation order; syncing
        // again from the returned watermark sees nothing new.
        let CacheResponse::Entries { watermark, entries } = probe.round_trip(&CacheRequest::Sync {
            types_tag: 5,
            since: 0,
        }) else {
            panic!("expected entries");
        };
        assert_eq!(entries.len(), 2);
        assert!(entries[0].generation < entries[1].generation);
        assert_eq!(watermark, entries[1].generation);
        let CacheResponse::Entries { entries: rest, .. } = probe.round_trip(&CacheRequest::Sync {
            types_tag: 5,
            since: watermark,
        }) else {
            panic!("expected entries");
        };
        assert!(rest.is_empty(), "nothing newer than the watermark");

        let stats = server.stats();
        assert_eq!((stats.gets, stats.hits), (3, 1));
        assert_eq!(stats.puts, 2);
        assert_eq!(stats.entries, 2);
        server.shutdown();
    }

    #[test]
    fn malformed_and_old_version_frames_get_typed_errors() {
        let server = CacheServer::bind("127.0.0.1:0").expect("bind");
        let mut probe = Probe::connect(server.local_addr());
        for line in ["sling6 get 1 2 3 \"q\"", "sling7 nonsense", "not a frame"] {
            let mut framed = line.to_string();
            framed.push('\n');
            probe
                .reader
                .get_ref()
                .write_all(framed.as_bytes())
                .expect("probe write");
            assert!(
                matches!(probe.read(), CacheResponse::Error { .. }),
                "{line:?} must answer a typed error"
            );
        }
        // The connection survives garbage: a well-formed get still works.
        assert_eq!(
            probe.round_trip(&CacheRequest::Get {
                types_tag: 1,
                node_budget: 1,
                fuel_slack: 1,
                text: "q".into(),
            }),
            CacheResponse::Miss
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_frees_the_port_for_a_restart() {
        let server = CacheServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // Rebinding the same port must succeed once shutdown returns.
        let revived = CacheServer::bind(addr).expect("rebind after shutdown");
        let mut probe = Probe::connect(revived.local_addr());
        assert_eq!(
            probe.round_trip(&CacheRequest::Sync {
                types_tag: 9,
                since: 0,
            }),
            CacheResponse::Entries {
                watermark: 0,
                entries: Vec::new(),
            }
        );
        revived.shutdown();
    }
}
