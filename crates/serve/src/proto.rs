//! The frame layer of the serve protocol.
//!
//! Both ends exchange newline-delimited frames built from the
//! [`sling::wire`] codec. Client-to-server frames carry work; server-to-
//! client frames stream results:
//!
//! ```text
//! client → server   sling7 analyze <id:u64> tenant <n:u64> request*
//! client → server   sling7 ping
//! server → client   sling7 hello <warm_entries:u64> <parallelism:u64> poolstats ; on connect
//! server → client   sling7 busy <active:u64> <max:u64>                  ; on connect, saturated
//! server → client   sling7 pong
//! server → client   sling7 report <id:u64> <index:u64> report           ; completion order
//! server → client   sling7 done <id:u64> <nreports:u64> cachestats verifytotals poolstats
//! server → client   sling7 rejected <id:u64> <n:u64> diagnostic*        ; upload failed the gate
//! server → client   sling7 error <id:u64> <message:string>              ; id 0 = unattributable
//!
//! tenant       := "-"                                  ; the daemon's default engine
//!               | "upload" program:string predicates:string
//! poolstats    := hits:u64 misses:u64 evictions:u64 resident:u64 cap:u64
//! verifytotals := verified:u64 refuted:u64 confirmed:u64 unknown:u64
//!                 refuted0:u64 cegir:u64 vseconds:f64
//! ```
//!
//! (`diagnostic` is the [`sling::wire`] production carrying one static
//! finding: code, severity, function, span, message, notes.)
//!
//! The distributed entailment-cache tier speaks its own productions —
//! `get`/`put`/`sync` requests, `cachehello`/`hit`/`miss`/`entries`
//! replies — under the same `sling7` version tag; those frames live in
//! [`sling::remote`] (client) and [`crate::CacheServer`] (server), on
//! separate connections from the analysis protocol, so a mis-aimed
//! client fails typed either way.
//!
//! `id` is a client-chosen correlation number echoed on every frame of
//! the batch's response, so one connection can distinguish interleaved
//! responses. Reports stream in *completion* order; the `index` token is
//! the request's position in the batch, which is how the client
//! reassembles request order.
//!
//! The `tenant` slot is what makes the daemon multi-tenant: an `upload`
//! carries MiniC program and predicate-library source, and the server
//! resolves it against its engine pool — building on miss, reusing on
//! hit — before running the batch. Every upload passes the static
//! diagnostics gate before pooling: a program with deny-level findings
//! (use-before-init, unreachable snapshot locations, definite-null
//! dereferences, unproductive predicate cycles) is answered with a
//! typed `rejected` frame carrying the structured findings. Other build
//! failures (parse, typecheck) get a plain `error` frame. Either way
//! the connection stays healthy. `poolstats` on `hello` and `done` make
//! the pool's behaviour (hits, misses, LRU evictions, residency against
//! the cap) observable on the wire.

use std::io::{self, Read};

use sling::wire::{self, WireError, WireReader, WireWriter};
use sling::{AnalysisRequest, CacheStats, Diagnostics, Report};

/// Verification-grade totals for a whole batch, summed over every
/// report's [`RunMetrics`](sling::RunMetrics) and carried on the `done`
/// epilogue so a client sees the grading outcome — and what the
/// counterexample-guided refinement loop did — without walking the
/// individual reports. All-zero when the serving engine runs without
/// the verification post-pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VerifyTotals {
    /// Invariants graded `Verified` across the batch.
    pub verified: u64,
    /// Invariants still graded `Refuted` after the final refinement
    /// round.
    pub refuted: u64,
    /// Invariants re-graded `Confirmed` (a refutation witness survived
    /// re-inference) across the batch.
    pub confirmed: u64,
    /// Invariants the prover could not decide within its budget.
    pub unknown: u64,
    /// Refutations before any refinement ran.
    pub refuted_initial: u64,
    /// Counterexample-guided refinement rounds, summed over the batch.
    pub cegir_rounds: u64,
    /// Wall-clock seconds spent grading, summed over the batch.
    pub verify_seconds: f64,
}

impl VerifyTotals {
    /// Sums the verification metrics of every report in a batch.
    pub fn from_reports(reports: &[Report]) -> VerifyTotals {
        let mut totals = VerifyTotals::default();
        for report in reports {
            let m = &report.metrics;
            totals.verified += m.verified as u64;
            totals.refuted += m.refuted as u64;
            totals.confirmed += m.confirmed as u64;
            totals.unknown += m.unknown as u64;
            totals.refuted_initial += m.refuted_initial as u64;
            totals.cegir_rounds += m.cegir_rounds as u64;
            totals.verify_seconds += m.verify_seconds;
        }
        totals
    }

    fn write(&self, w: &mut WireWriter) {
        w.u64(self.verified);
        w.u64(self.refuted);
        w.u64(self.confirmed);
        w.u64(self.unknown);
        w.u64(self.refuted_initial);
        w.u64(self.cegir_rounds);
        w.f64(self.verify_seconds);
    }

    fn read(r: &mut WireReader<'_>) -> Result<VerifyTotals, WireError> {
        Ok(VerifyTotals {
            verified: r.u64()?,
            refuted: r.u64()?,
            confirmed: r.u64()?,
            unknown: r.u64()?,
            refuted_initial: r.u64()?,
            cegir_rounds: r.u64()?,
            verify_seconds: r.f64()?,
        })
    }
}

/// Program + predicate-library source a batch uploads, selecting (or
/// building) the pool engine that serves it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramUpload {
    /// MiniC program source.
    pub program: String,
    /// Inductive predicate definitions.
    pub predicates: String,
}

impl ProgramUpload {
    fn write(&self, w: &mut WireWriter) {
        w.atom("upload");
        w.text(&self.program);
        w.text(&self.predicates);
    }

    fn read(r: &mut WireReader<'_>) -> Result<Option<ProgramUpload>, WireError> {
        match r.atom()? {
            "-" => Ok(None),
            "upload" => Ok(Some(ProgramUpload {
                program: r.text()?,
                predicates: r.text()?,
            })),
            other => Err(WireError::Syntax(format!("bad tenant tag `{other}`"))),
        }
    }
}

/// Engine-pool movement counters, carried on `hello` (lifetime so far)
/// and `done` (lifetime through this batch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Batches served by an already-built engine.
    pub hits: u64,
    /// Batches that had to build their engine first.
    pub misses: u64,
    /// Engines evicted least-recently-used to stay under the cap.
    pub evictions: u64,
    /// Engines currently resident (excluding the default tenant).
    pub resident: u64,
    /// The pool's capacity bound.
    pub capacity: u64,
}

impl PoolStats {
    fn write(&self, w: &mut WireWriter) {
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.evictions);
        w.u64(self.resident);
        w.u64(self.capacity);
    }

    fn read(r: &mut WireReader<'_>) -> Result<PoolStats, WireError> {
        Ok(PoolStats {
            hits: r.u64()?,
            misses: r.u64()?,
            evictions: r.u64()?,
            resident: r.u64()?,
            capacity: r.u64()?,
        })
    }
}

/// A frame the client sends.
#[derive(Debug)]
pub enum ClientFrame {
    /// Run a batch of requests; stream a `report` frame per request and
    /// a final `done` frame, all echoing `id`.
    Analyze {
        /// Client-chosen correlation id echoed on every response frame.
        id: u64,
        /// Uploaded program + predicates this batch runs against, or
        /// `None` for the daemon's default engine.
        upload: Option<ProgramUpload>,
        /// The batch, in request order.
        requests: Vec<AnalysisRequest>,
    },
    /// Liveness probe; answered with `pong`.
    Ping,
}

impl ClientFrame {
    /// Encodes the frame as one line (no trailing newline).
    ///
    /// # Errors
    ///
    /// [`WireError::Unsupported`] when a request carries a custom input
    /// closure.
    pub fn encode(&self) -> Result<String, WireError> {
        match self {
            ClientFrame::Analyze {
                id,
                upload,
                requests,
            } => encode_analyze_frame(*id, upload.as_ref(), requests),
            ClientFrame::Ping => Ok(WireWriter::frame("ping").finish()),
        }
    }

    /// Decodes one client line.
    pub fn decode(line: &str) -> Result<ClientFrame, WireError> {
        let (kind, mut r) = WireReader::frame(line)?;
        match kind {
            "analyze" => {
                let id = r.u64()?;
                let upload = ProgramUpload::read(&mut r)?;
                let count = r.usize()?;
                let mut requests = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    requests.push(wire::read_request(&mut r)?);
                }
                r.finish()?;
                Ok(ClientFrame::Analyze {
                    id,
                    upload,
                    requests,
                })
            }
            "ping" => {
                r.finish()?;
                Ok(ClientFrame::Ping)
            }
            other => Err(WireError::Syntax(format!(
                "unknown client frame kind `{other}`"
            ))),
        }
    }

    /// Best-effort correlation id of a line that failed to decode, so
    /// the server can attribute its `error` frame (0 when the id itself
    /// is unreadable).
    pub fn salvage_id(line: &str) -> u64 {
        WireReader::frame(line)
            .ok()
            .and_then(|(kind, mut r)| (kind == "analyze").then(|| r.u64().ok()).flatten())
            .unwrap_or(0)
    }
}

/// A frame the server sends.
#[derive(Debug)]
pub enum ServerFrame {
    /// Connection banner: the engine's warm-restored entry count,
    /// worker budget, and the engine pool's lifetime counters.
    Hello {
        /// Entries the serving engine restored from its cache snapshot
        /// (0 when the daemon boots without a default tenant).
        warm_entries: u64,
        /// The serving engine's worker budget.
        parallelism: u64,
        /// Engine-pool counters at connect time.
        pool: PoolStats,
    },
    /// Sent instead of `hello` when the service is at its
    /// [`max_connections`](crate::ServeOptions::max_connections) bound;
    /// the connection closes right after. Clients retry
    /// ([`Client::connect_retry`](crate::Client::connect_retry)) or
    /// surface [`ServeError::Busy`](crate::ServeError::Busy).
    Busy {
        /// Connections the service is currently handling.
        active: u64,
        /// The configured connection bound.
        max: u64,
    },
    /// Answer to `ping`.
    Pong,
    /// One completed report of batch `id` (streamed, completion order).
    Report {
        /// Correlation id of the batch.
        id: u64,
        /// The request's position in the batch.
        index: u64,
        /// The completed report.
        report: Report,
    },
    /// Batch `id` finished; `count` reports were streamed.
    Done {
        /// Correlation id of the batch.
        id: u64,
        /// Number of `report` frames that preceded this.
        count: u64,
        /// Checker-cache movement across the whole batch.
        cache: CacheStats,
        /// Verification-grade totals across the whole batch (all zero
        /// when the serving engine runs without the post-pass).
        verify: VerifyTotals,
        /// Engine-pool counters through this batch.
        pool: PoolStats,
    },
    /// Batch `id`'s upload failed the static diagnostics gate: the
    /// program carries deny-level findings and no engine was pooled for
    /// it. The structured findings travel typed, so clients can act on
    /// codes and spans instead of parsing prose.
    Rejected {
        /// Correlation id of the batch.
        id: u64,
        /// The findings (deny-level and any accompanying warnings).
        diagnostics: Diagnostics,
    },
    /// Batch `id` (0 = unattributable) failed.
    Error {
        /// Correlation id, when it could be read.
        id: u64,
        /// Human-readable failure reason.
        message: String,
    },
}

impl ServerFrame {
    /// Encodes the frame as one line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ServerFrame::Hello {
                warm_entries,
                parallelism,
                pool,
            } => {
                let mut w = WireWriter::frame("hello");
                w.u64(*warm_entries);
                w.u64(*parallelism);
                pool.write(&mut w);
                w.finish()
            }
            ServerFrame::Busy { active, max } => {
                let mut w = WireWriter::frame("busy");
                w.u64(*active);
                w.u64(*max);
                w.finish()
            }
            ServerFrame::Pong => WireWriter::frame("pong").finish(),
            ServerFrame::Report { id, index, report } => encode_report_frame(*id, *index, report),
            ServerFrame::Done {
                id,
                count,
                cache,
                verify,
                pool,
            } => {
                let mut w = WireWriter::frame("done");
                w.u64(*id);
                w.u64(*count);
                wire::write_cache_stats(&mut w, cache);
                verify.write(&mut w);
                pool.write(&mut w);
                w.finish()
            }
            ServerFrame::Rejected { id, diagnostics } => {
                let mut w = WireWriter::frame("rejected");
                w.u64(*id);
                w.u64(diagnostics.len() as u64);
                for d in diagnostics.iter() {
                    wire::write_diagnostic(&mut w, d);
                }
                w.finish()
            }
            ServerFrame::Error { id, message } => {
                let mut w = WireWriter::frame("error");
                w.u64(*id);
                w.text(message);
                w.finish()
            }
        }
    }

    /// Decodes one server line.
    pub fn decode(line: &str) -> Result<ServerFrame, WireError> {
        let (kind, mut r) = WireReader::frame(line)?;
        let frame = match kind {
            "hello" => ServerFrame::Hello {
                warm_entries: r.u64()?,
                parallelism: r.u64()?,
                pool: PoolStats::read(&mut r)?,
            },
            "busy" => ServerFrame::Busy {
                active: r.u64()?,
                max: r.u64()?,
            },
            "pong" => ServerFrame::Pong,
            "report" => ServerFrame::Report {
                id: r.u64()?,
                index: r.u64()?,
                report: wire::read_report(&mut r)?,
            },
            "done" => ServerFrame::Done {
                id: r.u64()?,
                count: r.u64()?,
                cache: wire::read_cache_stats(&mut r)?,
                verify: VerifyTotals::read(&mut r)?,
                pool: PoolStats::read(&mut r)?,
            },
            "rejected" => {
                let id = r.u64()?;
                let count = r.usize()?;
                let mut diagnostics = Diagnostics::new();
                for _ in 0..count {
                    diagnostics.push(wire::read_diagnostic(&mut r)?);
                }
                ServerFrame::Rejected { id, diagnostics }
            }
            "error" => ServerFrame::Error {
                id: r.u64()?,
                message: r.text()?,
            },
            other => {
                return Err(WireError::Syntax(format!(
                    "unknown server frame kind `{other}`"
                )))
            }
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Borrow-encoding twins of the owning [`ServerFrame`] / [`ClientFrame`]
/// constructors, for the hot paths that already hold a reference: the
/// server's streaming sink encodes each completed report without
/// cloning its residue heaps, and the client encodes a batch without
/// copying the request list.
pub fn encode_report_frame(id: u64, index: u64, report: &Report) -> String {
    let mut w = WireWriter::frame("report");
    w.u64(id);
    w.u64(index);
    wire::write_report(&mut w, report);
    w.finish()
}

/// See [`encode_report_frame`]; the borrow-encoding twin of
/// [`ClientFrame::Analyze`].
pub fn encode_analyze_frame(
    id: u64,
    upload: Option<&ProgramUpload>,
    requests: &[AnalysisRequest],
) -> Result<String, WireError> {
    let mut w = WireWriter::frame("analyze");
    w.u64(id);
    match upload {
        None => w.atom("-"),
        Some(upload) => upload.write(&mut w),
    }
    w.u64(requests.len() as u64);
    for request in requests {
        wire::write_request(&mut w, request)?;
    }
    Ok(w.finish())
}

/// Default cap on one frame's length. A peer that streams bytes without
/// ever sending a newline would otherwise grow the buffer until the
/// process OOMs — this bounds what one connection can pin. Far above
/// any legitimate frame (a full corpus report line is a few hundred
/// KiB; even a generous program upload is single-digit MiB).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A peer exceeded the frame-length cap without sending a newline.
/// Travels as the payload of an [`InvalidData`](io::ErrorKind::InvalidData)
/// [`io::Error`], so callers can distinguish it from genuinely malformed
/// bytes via [`io::Error::get_ref`] + `downcast_ref::<FrameTooLarge>()`
/// and answer with a typed `error` frame before dropping the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// Bytes buffered when the limit tripped.
    pub buffered: usize,
    /// The configured cap.
    pub limit: usize,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame too large: {} bytes buffered without a newline (limit {})",
            self.buffered, self.limit
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Incremental newline-delimited framing over a byte stream: buffers
/// partial reads (a frame may arrive in many TCP segments, or several
/// frames in one) and yields complete lines.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    limit: usize,
}

impl Default for FrameBuffer {
    fn default() -> FrameBuffer {
        FrameBuffer::with_limit(MAX_FRAME_BYTES)
    }
}

impl FrameBuffer {
    /// An empty buffer capped at [`MAX_FRAME_BYTES`].
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// An empty buffer with a custom frame-length cap.
    pub fn with_limit(limit: usize) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            limit,
        }
    }

    /// Pops the next complete line, if one is buffered.
    pub fn pop_line(&mut self) -> Option<String> {
        let newline = self.buf.iter().position(|b| *b == b'\n')?;
        let rest = self.buf.split_off(newline + 1);
        let mut line = std::mem::replace(&mut self.buf, rest);
        line.pop(); // the newline
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// Reads more bytes from `source` into the buffer. `Ok(true)` means
    /// bytes arrived; `Ok(false)` means clean end of stream. A partial
    /// frame exceeding the cap is an
    /// [`InvalidData`](io::ErrorKind::InvalidData) error carrying a
    /// [`FrameTooLarge`] payload — the peer is either broken or hostile,
    /// and the connection should drop (after a best-effort typed `error`
    /// frame, on the server side).
    pub fn fill(&mut self, source: &mut impl Read) -> io::Result<bool> {
        let mut chunk = [0u8; 8192];
        let n = source.read(&mut chunk)?;
        if n == 0 {
            return Ok(false);
        }
        self.buf.extend_from_slice(&chunk[..n]);
        if self.buf.len() > self.limit && !self.buf.contains(&b'\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                FrameTooLarge {
                    buffered: self.buf.len(),
                    limit: self.limit,
                },
            ));
        }
        Ok(true)
    }

    /// Whether a partial (incomplete) frame is buffered.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling::{InputSpec, ValueSpec};

    fn upload() -> ProgramUpload {
        ProgramUpload {
            program: "struct N { next: N*; }\nfn id(x: N*) -> N* { return x; }".into(),
            predicates: "pred p(x: N*) := emp & x == nil\n  | exists u. x -> N{next: u} * p(u);"
                .into(),
        }
    }

    #[test]
    fn analyze_frame_with_upload_round_trips() {
        let frame = ClientFrame::Analyze {
            id: 42,
            upload: Some(upload()),
            requests: vec![
                sling::AnalysisRequest::new("id").input(InputSpec::seeded(7).arg(ValueSpec::nil()))
            ],
        };
        let line = frame.encode().unwrap();
        match ClientFrame::decode(&line).unwrap() {
            ClientFrame::Analyze {
                id,
                upload: Some(u),
                requests,
            } => {
                assert_eq!(id, 42);
                assert_eq!(u, upload());
                assert_eq!(requests.len(), 1);
            }
            other => panic!("decoded {other:?}"),
        }
        assert_eq!(ClientFrame::salvage_id(&line), 42);
    }

    #[test]
    fn analyze_frame_without_upload_round_trips() {
        let frame = ClientFrame::Analyze {
            id: 1,
            upload: None,
            requests: vec![],
        };
        let line = frame.encode().unwrap();
        assert!(matches!(
            ClientFrame::decode(&line).unwrap(),
            ClientFrame::Analyze { upload: None, .. }
        ));
    }

    #[test]
    fn bad_tenant_tag_is_a_syntax_error() {
        let line = ClientFrame::Analyze {
            id: 3,
            upload: None,
            requests: vec![],
        }
        .encode()
        .unwrap();
        let bad = line.replacen(" - ", " steal ", 1);
        assert!(matches!(
            ClientFrame::decode(&bad),
            Err(WireError::Syntax(_))
        ));
    }

    #[test]
    fn hello_and_done_carry_pool_stats() {
        let pool = PoolStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            resident: 2,
            capacity: 4,
        };
        let hello = ServerFrame::Hello {
            warm_entries: 9,
            parallelism: 3,
            pool,
        }
        .encode();
        match ServerFrame::decode(&hello).unwrap() {
            ServerFrame::Hello { pool: back, .. } => assert_eq!(back, pool),
            other => panic!("decoded {other:?}"),
        }
        let done = ServerFrame::Done {
            id: 7,
            count: 1,
            cache: CacheStats::default(),
            verify: VerifyTotals::default(),
            pool,
        }
        .encode();
        match ServerFrame::decode(&done).unwrap() {
            ServerFrame::Done { pool: back, .. } => assert_eq!(back, pool),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn rejected_frame_round_trips_structured_diagnostics() {
        use sling::{lint_codes, Diagnostic, Severity};
        let mut diagnostics = Diagnostics::new();
        diagnostics.push(
            Diagnostic::new(
                lint_codes::USE_BEFORE_INIT,
                Severity::Deny,
                "variable `y` is used before it is initialized",
            )
            .in_function(sling_logic::Symbol::intern("f"))
            .with_span(sling_logic::Span::new(20, 29)),
        );
        diagnostics.push(
            Diagnostic::new(lint_codes::UNUSED_VAR, Severity::Warning, "never read")
                .with_note("context note"),
        );
        let line = ServerFrame::Rejected {
            id: 11,
            diagnostics: diagnostics.clone(),
        }
        .encode();
        match ServerFrame::decode(&line).unwrap() {
            ServerFrame::Rejected {
                id,
                diagnostics: back,
            } => {
                assert_eq!(id, 11);
                assert_eq!(back, diagnostics);
                assert!(back.has_deny());
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn frame_buffer_pops_lines_and_caps_partials() {
        let mut fb = FrameBuffer::with_limit(16);
        let mut src = io::Cursor::new(b"one\ntwo\n".to_vec());
        assert!(fb.fill(&mut src).unwrap());
        assert_eq!(fb.pop_line().as_deref(), Some("one"));
        assert_eq!(fb.pop_line().as_deref(), Some("two"));
        assert!(fb.pop_line().is_none());
        assert!(!fb.has_partial());

        // A newline-free stream past the limit trips the typed error.
        let mut src = io::Cursor::new(vec![b'x'; 64]);
        let err = loop {
            match fb.fill(&mut src) {
                Ok(true) => continue,
                Ok(false) => panic!("stream ended before the cap tripped"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let too_large = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<FrameTooLarge>())
            .expect("typed FrameTooLarge payload");
        assert_eq!(too_large.limit, 16);
        assert!(too_large.buffered > 16);
    }

    #[test]
    fn frame_buffer_allows_complete_lines_longer_than_a_read() {
        // The cap binds *partial* frames; complete lines under the cap
        // pass even when they span several fills.
        let mut fb = FrameBuffer::with_limit(1 << 20);
        let line = format!("{}\n", "y".repeat(20_000));
        let mut src = io::Cursor::new(line.clone().into_bytes());
        while fb.fill(&mut src).unwrap() {}
        assert_eq!(fb.pop_line().as_deref(), Some(&line[..line.len() - 1]));
    }
}
