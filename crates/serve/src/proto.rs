//! The frame layer of the serve protocol.
//!
//! Both ends exchange newline-delimited frames built from the
//! [`sling::wire`] codec. Client-to-server frames carry work; server-to-
//! client frames stream results:
//!
//! ```text
//! client → server   sling4 analyze <id:u64> <n:u64> request*
//! client → server   sling4 ping
//! server → client   sling4 hello <warm_entries:u64> <parallelism:u64>   ; on connect
//! server → client   sling4 busy <active:u64> <max:u64>                  ; on connect, saturated
//! server → client   sling4 pong
//! server → client   sling4 report <id:u64> <index:u64> report           ; completion order
//! server → client   sling4 done <id:u64> <nreports:u64> cachestats verifytotals
//! server → client   sling4 error <id:u64> <message:string>              ; id 0 = unattributable
//!
//! verifytotals := verified:u64 refuted:u64 confirmed:u64 unknown:u64
//!                 refuted0:u64 cegir:u64 vseconds:f64
//! ```
//!
//! `id` is a client-chosen correlation number echoed on every frame of
//! the batch's response, so one connection can distinguish interleaved
//! responses. Reports stream in *completion* order; the `index` token is
//! the request's position in the batch, which is how the client
//! reassembles request order.

use std::io::{self, Read};

use sling::wire::{self, WireError, WireReader, WireWriter};
use sling::{AnalysisRequest, CacheStats, Report};

/// Verification-grade totals for a whole batch, summed over every
/// report's [`RunMetrics`](sling::RunMetrics) and carried on the `done`
/// epilogue so a client sees the grading outcome — and what the
/// counterexample-guided refinement loop did — without walking the
/// individual reports. All-zero when the serving engine runs without
/// the verification post-pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VerifyTotals {
    /// Invariants graded `Verified` across the batch.
    pub verified: u64,
    /// Invariants still graded `Refuted` after the final refinement
    /// round.
    pub refuted: u64,
    /// Invariants re-graded `Confirmed` (a refutation witness survived
    /// re-inference) across the batch.
    pub confirmed: u64,
    /// Invariants the prover could not decide within its budget.
    pub unknown: u64,
    /// Refutations before any refinement ran.
    pub refuted_initial: u64,
    /// Counterexample-guided refinement rounds, summed over the batch.
    pub cegir_rounds: u64,
    /// Wall-clock seconds spent grading, summed over the batch.
    pub verify_seconds: f64,
}

impl VerifyTotals {
    /// Sums the verification metrics of every report in a batch.
    pub fn from_reports(reports: &[Report]) -> VerifyTotals {
        let mut totals = VerifyTotals::default();
        for report in reports {
            let m = &report.metrics;
            totals.verified += m.verified as u64;
            totals.refuted += m.refuted as u64;
            totals.confirmed += m.confirmed as u64;
            totals.unknown += m.unknown as u64;
            totals.refuted_initial += m.refuted_initial as u64;
            totals.cegir_rounds += m.cegir_rounds as u64;
            totals.verify_seconds += m.verify_seconds;
        }
        totals
    }

    fn write(&self, w: &mut WireWriter) {
        w.u64(self.verified);
        w.u64(self.refuted);
        w.u64(self.confirmed);
        w.u64(self.unknown);
        w.u64(self.refuted_initial);
        w.u64(self.cegir_rounds);
        w.f64(self.verify_seconds);
    }

    fn read(r: &mut WireReader<'_>) -> Result<VerifyTotals, WireError> {
        Ok(VerifyTotals {
            verified: r.u64()?,
            refuted: r.u64()?,
            confirmed: r.u64()?,
            unknown: r.u64()?,
            refuted_initial: r.u64()?,
            cegir_rounds: r.u64()?,
            verify_seconds: r.f64()?,
        })
    }
}

/// A frame the client sends.
#[derive(Debug)]
pub enum ClientFrame {
    /// Run a batch of requests; stream a `report` frame per request and
    /// a final `done` frame, all echoing `id`.
    Analyze {
        /// Client-chosen correlation id echoed on every response frame.
        id: u64,
        /// The batch, in request order.
        requests: Vec<AnalysisRequest>,
    },
    /// Liveness probe; answered with `pong`.
    Ping,
}

impl ClientFrame {
    /// Encodes the frame as one line (no trailing newline).
    ///
    /// # Errors
    ///
    /// [`WireError::Unsupported`] when a request carries a custom input
    /// closure or per-request config override.
    pub fn encode(&self) -> Result<String, WireError> {
        match self {
            ClientFrame::Analyze { id, requests } => encode_analyze_frame(*id, requests),
            ClientFrame::Ping => Ok(WireWriter::frame("ping").finish()),
        }
    }

    /// Decodes one client line.
    pub fn decode(line: &str) -> Result<ClientFrame, WireError> {
        let (kind, mut r) = WireReader::frame(line)?;
        match kind {
            "analyze" => {
                let id = r.u64()?;
                let count = r.usize()?;
                let mut requests = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    requests.push(wire::read_request(&mut r)?);
                }
                r.finish()?;
                Ok(ClientFrame::Analyze { id, requests })
            }
            "ping" => {
                r.finish()?;
                Ok(ClientFrame::Ping)
            }
            other => Err(WireError::Syntax(format!(
                "unknown client frame kind `{other}`"
            ))),
        }
    }

    /// Best-effort correlation id of a line that failed to decode, so
    /// the server can attribute its `error` frame (0 when the id itself
    /// is unreadable).
    pub fn salvage_id(line: &str) -> u64 {
        WireReader::frame(line)
            .ok()
            .and_then(|(kind, mut r)| (kind == "analyze").then(|| r.u64().ok()).flatten())
            .unwrap_or(0)
    }
}

/// A frame the server sends.
#[derive(Debug)]
pub enum ServerFrame {
    /// Connection banner: the engine's warm-restored entry count and
    /// worker budget.
    Hello {
        /// Entries the serving engine restored from its cache snapshot.
        warm_entries: u64,
        /// The serving engine's worker budget.
        parallelism: u64,
    },
    /// Sent instead of `hello` when the service is at its
    /// [`max_connections`](crate::ServeOptions::max_connections) bound;
    /// the connection closes right after. Clients retry
    /// ([`Client::connect_retry`](crate::Client::connect_retry)) or
    /// surface [`ServeError::Busy`](crate::ServeError::Busy).
    Busy {
        /// Connections the service is currently handling.
        active: u64,
        /// The configured connection bound.
        max: u64,
    },
    /// Answer to `ping`.
    Pong,
    /// One completed report of batch `id` (streamed, completion order).
    Report {
        /// Correlation id of the batch.
        id: u64,
        /// The request's position in the batch.
        index: u64,
        /// The completed report.
        report: Report,
    },
    /// Batch `id` finished; `count` reports were streamed.
    Done {
        /// Correlation id of the batch.
        id: u64,
        /// Number of `report` frames that preceded this.
        count: u64,
        /// Checker-cache movement across the whole batch.
        cache: CacheStats,
        /// Verification-grade totals across the whole batch (all zero
        /// when the serving engine runs without the post-pass).
        verify: VerifyTotals,
    },
    /// Batch `id` (0 = unattributable) failed.
    Error {
        /// Correlation id, when it could be read.
        id: u64,
        /// Human-readable failure reason.
        message: String,
    },
}

impl ServerFrame {
    /// Encodes the frame as one line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ServerFrame::Hello {
                warm_entries,
                parallelism,
            } => {
                let mut w = WireWriter::frame("hello");
                w.u64(*warm_entries);
                w.u64(*parallelism);
                w.finish()
            }
            ServerFrame::Busy { active, max } => {
                let mut w = WireWriter::frame("busy");
                w.u64(*active);
                w.u64(*max);
                w.finish()
            }
            ServerFrame::Pong => WireWriter::frame("pong").finish(),
            ServerFrame::Report { id, index, report } => encode_report_frame(*id, *index, report),
            ServerFrame::Done {
                id,
                count,
                cache,
                verify,
            } => {
                let mut w = WireWriter::frame("done");
                w.u64(*id);
                w.u64(*count);
                wire::write_cache_stats(&mut w, cache);
                verify.write(&mut w);
                w.finish()
            }
            ServerFrame::Error { id, message } => {
                let mut w = WireWriter::frame("error");
                w.u64(*id);
                w.text(message);
                w.finish()
            }
        }
    }

    /// Decodes one server line.
    pub fn decode(line: &str) -> Result<ServerFrame, WireError> {
        let (kind, mut r) = WireReader::frame(line)?;
        let frame = match kind {
            "hello" => ServerFrame::Hello {
                warm_entries: r.u64()?,
                parallelism: r.u64()?,
            },
            "busy" => ServerFrame::Busy {
                active: r.u64()?,
                max: r.u64()?,
            },
            "pong" => ServerFrame::Pong,
            "report" => ServerFrame::Report {
                id: r.u64()?,
                index: r.u64()?,
                report: wire::read_report(&mut r)?,
            },
            "done" => ServerFrame::Done {
                id: r.u64()?,
                count: r.u64()?,
                cache: wire::read_cache_stats(&mut r)?,
                verify: VerifyTotals::read(&mut r)?,
            },
            "error" => ServerFrame::Error {
                id: r.u64()?,
                message: r.text()?,
            },
            other => {
                return Err(WireError::Syntax(format!(
                    "unknown server frame kind `{other}`"
                )))
            }
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Borrow-encoding twins of the owning [`ServerFrame`] / [`ClientFrame`]
/// constructors, for the hot paths that already hold a reference: the
/// server's streaming sink encodes each completed report without
/// cloning its residue heaps, and the client encodes a batch without
/// copying the request list.
pub fn encode_report_frame(id: u64, index: u64, report: &Report) -> String {
    let mut w = WireWriter::frame("report");
    w.u64(id);
    w.u64(index);
    wire::write_report(&mut w, report);
    w.finish()
}

/// See [`encode_report_frame`]; the borrow-encoding twin of
/// [`ClientFrame::Analyze`].
pub fn encode_analyze_frame(id: u64, requests: &[AnalysisRequest]) -> Result<String, WireError> {
    let mut w = WireWriter::frame("analyze");
    w.u64(id);
    w.u64(requests.len() as u64);
    for request in requests {
        wire::write_request(&mut w, request)?;
    }
    Ok(w.finish())
}

/// Hard cap on one frame's length. A peer that streams bytes without
/// ever sending a newline would otherwise grow the buffer until the
/// process OOMs — this bounds what one connection can pin. Far above
/// any legitimate frame (a full corpus report line is a few hundred
/// KiB).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Incremental newline-delimited framing over a byte stream: buffers
/// partial reads (a frame may arrive in many TCP segments, or several
/// frames in one) and yields complete lines.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Pops the next complete line, if one is buffered.
    pub fn pop_line(&mut self) -> Option<String> {
        let newline = self.buf.iter().position(|b| *b == b'\n')?;
        let rest = self.buf.split_off(newline + 1);
        let mut line = std::mem::replace(&mut self.buf, rest);
        line.pop(); // the newline
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// Reads more bytes from `source` into the buffer. `Ok(true)` means
    /// bytes arrived; `Ok(false)` means clean end of stream. A partial
    /// frame exceeding [`MAX_FRAME_BYTES`] is an
    /// [`InvalidData`](io::ErrorKind::InvalidData) error — the peer is
    /// either broken or hostile, and the connection should drop.
    pub fn fill(&mut self, source: &mut impl Read) -> io::Result<bool> {
        if self.buf.len() > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame exceeds {MAX_FRAME_BYTES} bytes without a newline"),
            ));
        }
        let mut chunk = [0u8; 8192];
        let n = source.read(&mut chunk)?;
        if n == 0 {
            return Ok(false);
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(true)
    }

    /// Whether a partial (incomplete) frame is buffered.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }
}
