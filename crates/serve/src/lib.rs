//! # sling-serve — the SLING analysis service
//!
//! Scale-out beyond one process: a multi-threaded TCP service over a
//! capacity-bounded pool of long-lived [`Engine`](sling::Engine)s —
//! analysis as a service. A batch either targets the pre-warmed
//! *default tenant* (the program the daemon booted with, its entailment
//! cache warm-loaded from a snapshot) or *uploads* its own program and
//! predicate library on the wire; the pool builds uploaded tenants on
//! first sight, reuses them on every identical upload after, and
//! evicts least-recently-used past its cap. Every connection shares
//! the pool, so setup cost (and every memoized entailment) is
//! amortized across all clients of the same tenant, and the default
//! tenant's cache is snapshotted back to disk on an interval and at
//! graceful shutdown.
//!
//! Four layers:
//!
//! * [`proto`] — the frame grammar: `analyze` requests (optionally
//!   carrying a [`ProgramUpload`]) in, streamed `report` frames plus a
//!   `done` epilogue (with [`PoolStats`]) out, all built on the
//!   hand-rolled [`sling::wire`] codec (no serde; the build is
//!   offline).
//! * [`EnginePool`] — the tenancy layer: fingerprint-keyed LRU of
//!   built engines, one build per distinct upload, typed build
//!   failures that never poison a slot.
//! * [`Service`] — the server: binds a listener, fans connections out
//!   over handler threads, resolves each batch's tenant, answers it
//!   through
//!   [`Engine::analyze_all_with`](sling::Engine::analyze_all_with) so
//!   reports stream in completion order, drains gracefully.
//! * [`Client`] — the blocking helper: connect, read the warm-boot
//!   banner, [`Client::analyze_all`] /
//!   [`Client::analyze_all_uploaded`] as the wire mirrors of the
//!   in-process batch API.
//!
//! A fifth, orthogonal piece is the distributed entailment-cache tier:
//! [`CacheServer`] (`sling-serve --cache-server`) holds a fleet-shared
//! memo table that engines join as write-through clients via
//! [`EngineBuilder::remote_cache`](sling::EngineBuilder::remote_cache)
//! (`--remote-cache ADDR` on an analysis daemon), speaking the
//! `get`/`put`/`sync` productions of [`sling::remote`] over the same
//! versioned codec. Losing the tier degrades engines to local-only
//! analysis — never fails or stalls them.
//!
//! The `sling-serve` binary wraps [`Service`] for standalone use; the
//! `serve_corpus` example in `examples/` replays the list-corpus
//! fixture through a live socket and diffs the result against the
//! in-process engine, and `multi_tenant` drives two uploaded tenants
//! through one daemon concurrently.
//!
//! # Example
//!
//! ```
//! use sling::{Engine, AnalysisRequest, InputSpec, ListLayout, ValueSpec};
//! use sling_serve::{Client, Service};
//! use sling_logic::Symbol;
//!
//! let engine = Engine::builder()
//!     .program_source(
//!         "struct SrvNode { next: SrvNode*; }
//!          fn walk(x: SrvNode*) -> SrvNode* {
//!              var c: SrvNode* = x;
//!              while @w (c != null) { c = c->next; }
//!              return x;
//!          }",
//!     )?
//!     .predicates_source(
//!         "pred srvlist(x: SrvNode*) := emp & x == nil
//!            | exists u. x -> SrvNode{next: u} * srvlist(u);",
//!     )?
//!     .build()?;
//!
//! // Port 0: the OS picks a free loopback port.
//! let service = Service::bind(engine, "127.0.0.1:0")?;
//! let mut client = Client::connect(service.local_addr())?;
//!
//! let layout = ListLayout {
//!     ty: Symbol::intern("SrvNode"), nfields: 1, next: 0, prev: None, data: None,
//! };
//! let request = AnalysisRequest::new("walk")
//!     .input(InputSpec::seeded(5).arg(ValueSpec::sll(layout, 3)));
//! let batch = client.analyze_all(std::slice::from_ref(&request))?;
//! assert!(batch.reports[0].invariant_count() > 0);
//!
//! // Graceful drain; the pool comes back, and with it the engine.
//! let engine = service.shutdown()?.into_default().expect("no handler holds it");
//! assert!(engine.cache_stats().lookups() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod cache_server;
mod client;
mod pool;
pub mod proto;
mod service;

pub use cache_server::{CacheServer, CacheServerStats, NAMESPACE_CAP};
pub use client::{Client, ServeError};
pub use pool::{fingerprint, EnginePool, PoolError, PoolSettings};
pub use proto::{PoolStats, ProgramUpload, VerifyTotals};
pub use service::{absorb_snapshot_dir, DirMerge, ServeOptions, Service, DEFAULT_POOL_CAPACITY};
