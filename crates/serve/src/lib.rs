//! # sling-serve — the SLING analysis service
//!
//! Scale-out beyond one process: a multi-threaded TCP service that
//! holds one long-lived [`Engine`](sling::Engine) — the parsed program,
//! the predicate library, and the entailment cache warm-loaded from its
//! snapshot at boot — and serves analysis batches over a
//! newline-delimited wire protocol. Every connection shares the one
//! engine, so setup cost (and every memoized entailment) is amortized
//! across all clients, and the cache is snapshotted back to disk on an
//! interval and at graceful shutdown.
//!
//! Three layers:
//!
//! * [`proto`] — the frame grammar: `analyze` requests in, streamed
//!   `report` frames plus a `done` epilogue out, all built on the
//!   hand-rolled [`sling::wire`] codec (no serde; the build is
//!   offline).
//! * [`Service`] — the server: binds a listener, fans connections out
//!   over handler threads, answers each batch through
//!   [`Engine::analyze_all_with`](sling::Engine::analyze_all_with) so
//!   reports stream in completion order, drains gracefully.
//! * [`Client`] — the blocking helper: connect, read the warm-boot
//!   banner, [`Client::analyze_all`] as the wire mirror of the
//!   in-process batch API.
//!
//! The `sling-serve` binary wraps [`Service`] for standalone use; the
//! `serve_corpus` example in `examples/` replays the list-corpus
//! fixture through a live socket and diffs the result against the
//! in-process engine.
//!
//! # Example
//!
//! ```
//! use sling::{Engine, AnalysisRequest, InputSpec, ListLayout, ValueSpec};
//! use sling_serve::{Client, Service};
//! use sling_logic::Symbol;
//!
//! let engine = Engine::builder()
//!     .program_source(
//!         "struct SrvNode { next: SrvNode*; }
//!          fn walk(x: SrvNode*) -> SrvNode* {
//!              var c: SrvNode* = x;
//!              while @w (c != null) { c = c->next; }
//!              return x;
//!          }",
//!     )?
//!     .predicates_source(
//!         "pred srvlist(x: SrvNode*) := emp & x == nil
//!            | exists u. x -> SrvNode{next: u} * srvlist(u);",
//!     )?
//!     .build()?;
//!
//! // Port 0: the OS picks a free loopback port.
//! let service = Service::bind(engine, "127.0.0.1:0")?;
//! let mut client = Client::connect(service.local_addr())?;
//!
//! let layout = ListLayout {
//!     ty: Symbol::intern("SrvNode"), nfields: 1, next: 0, prev: None, data: None,
//! };
//! let request = AnalysisRequest::new("walk")
//!     .input(InputSpec::seeded(5).arg(ValueSpec::sll(layout, 3)));
//! let batch = client.analyze_all(std::slice::from_ref(&request))?;
//! assert!(batch.reports[0].invariant_count() > 0);
//!
//! let engine = service.shutdown()?; // graceful drain; engine returned
//! assert!(engine.cache_stats().lookups() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod client;
pub mod proto;
mod service;

pub use client::{Client, ServeError};
pub use proto::VerifyTotals;
pub use service::{absorb_snapshot_dir, DirMerge, ServeOptions, Service};
