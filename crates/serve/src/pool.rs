//! A capacity-bounded LRU pool of built [`Engine`]s, keyed by uploaded
//! program + predicate source.
//!
//! This is what makes the daemon multi-tenant: each `analyze` batch
//! either names the pre-warmed default tenant (no upload) or carries a
//! [`ProgramUpload`], which the pool resolves to a built engine —
//! reusing one built for an identical upload, or running the full build
//! pipeline (parse → typecheck → static diagnostics → productivity lint
//! → bytecode compile) on a miss. Uploaded programs pass the
//! [`sling::AnalysisSettings`] lint gate by default — a tenant is
//! untrusted source, and deny-level findings (use-before-init,
//! unreachable snapshot locations, definite-null dereferences) reject
//! the upload with the structured findings instead of pooling an engine
//! that would fault or silently under-infer. Residency is bounded: past the cap, the least-recently-
//! used engine is evicted (its entailment cache and compiled chunks go
//! with it; a returning tenant rebuilds and counts a miss).
//!
//! Concurrency contract: at most one build runs per distinct upload —
//! a second batch arriving for the same fingerprint mid-build waits on
//! a condvar rather than duplicating the build. Builds run *outside*
//! the pool lock, so a slow typecheck never blocks hits on other
//! tenants. A failed build removes its in-flight marker and wakes the
//! waiters, so a hostile upload can neither poison the slot nor wedge
//! a peer: the next attempt simply rebuilds (and fails again, typed).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use sling::{AnalysisSettings, BuildError, Engine, SlingConfig};

use crate::proto::{PoolStats, ProgramUpload};

/// Build-time settings every pool-built engine shares. (The default
/// tenant keeps whatever it was built with; per-request [`SlingConfig`]
/// overrides ride on the requests themselves and need no rebuild.)
#[derive(Debug, Clone)]
pub struct PoolSettings {
    /// Base [`SlingConfig`] for uploaded tenants (requests may still
    /// override it per-request).
    pub config: SlingConfig,
    /// Worker budget per built engine; `None` uses
    /// [`sling::default_parallelism`].
    pub parallelism: Option<usize>,
    /// Entailment-cache entry bound per built engine; `None` keeps the
    /// engine default.
    pub cache_capacity: Option<usize>,
    /// Static-diagnostics settings applied to every upload before an
    /// engine is pooled for it. Defaults to the full lint suite — an
    /// upload is untrusted source; set `None` to run uploads ungated.
    pub analysis: Option<AnalysisSettings>,
    /// Address of a distributed entailment-cache tier (`sling-serve
    /// --cache-server`) every pool-built engine joins as a
    /// write-through client
    /// ([`sling::EngineBuilder::remote_cache`]). `None` (the default)
    /// keeps engines local-only.
    pub remote_cache: Option<String>,
}

impl Default for PoolSettings {
    fn default() -> PoolSettings {
        PoolSettings {
            config: SlingConfig::default(),
            parallelism: None,
            cache_capacity: None,
            analysis: Some(AnalysisSettings::default()),
            remote_cache: None,
        }
    }
}

/// Why the pool could not produce an engine for a batch.
#[derive(Debug)]
pub enum PoolError {
    /// The batch named the default tenant but the daemon booted without
    /// one (`sling-serve` without `--program`/`--corpus`).
    NoDefault,
    /// The uploaded sources failed the build pipeline (parse, typecheck,
    /// predicate productivity lint, static diagnostics gate, ...). A
    /// [`BuildError::Rejected`] inside carries the structured findings
    /// the serve layer forwards as a `rejected` frame.
    Build(BuildError),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::NoDefault => {
                write!(f, "no default program is loaded; upload one with the batch")
            }
            PoolError::Build(e) => write!(f, "uploaded program failed to build: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// One pool slot: an engine being built, or built and ready.
#[derive(Debug)]
enum Slot {
    /// A build for this fingerprint is in flight on some thread; wait
    /// on the condvar.
    Building,
    /// Built and servable.
    Ready {
        engine: Arc<Engine>,
        /// Logical timestamp of the last resolve (LRU order).
        last_used: u64,
    },
}

#[derive(Debug)]
struct Inner {
    slots: HashMap<u64, Slot>,
    /// Monotonic logical clock advanced on every touch; drives LRU
    /// eviction without wall-clock reads.
    clock: u64,
}

/// A capacity-bounded LRU pool of built engines. See the module docs
/// for the concurrency contract.
#[derive(Debug)]
pub struct EnginePool {
    /// The pre-warmed boot engine, pinned outside the LRU capacity (it
    /// may hold a persistent cache snapshot the uploads must not evict).
    default: Option<Arc<Engine>>,
    settings: PoolSettings,
    capacity: usize,
    inner: Mutex<Inner>,
    built: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl EnginePool {
    /// A pool holding `default` (pinned, not counted against
    /// `capacity`) and up to `capacity` uploaded-tenant engines built
    /// with `settings`. A zero capacity is clamped to one: a pool that
    /// cannot hold the engine it just built would thrash every batch.
    pub fn new(default: Option<Engine>, capacity: usize, settings: PoolSettings) -> EnginePool {
        EnginePool {
            default: default.map(Arc::new),
            settings,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                clock: 0,
            }),
            built: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The pre-warmed default tenant, if the daemon booted with one.
    pub fn default_engine(&self) -> Option<&Engine> {
        self.default.as_deref()
    }

    /// Movement counters (hits/misses/evictions are lifetime totals;
    /// `resident` counts ready uploaded-tenant engines right now).
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("engine pool");
        let resident = inner
            .slots
            .values()
            .filter(|slot| matches!(slot, Slot::Ready { .. }))
            .count() as u64;
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident,
            capacity: self.capacity as u64,
        }
    }

    /// Resolves a batch's tenant slot to a servable engine: the default
    /// engine for `None`, a pooled or freshly built engine for an
    /// upload. Blocks while another thread builds the same upload.
    pub fn resolve(&self, upload: Option<&ProgramUpload>) -> Result<Arc<Engine>, PoolError> {
        let Some(upload) = upload else {
            return self.default.clone().ok_or(PoolError::NoDefault);
        };
        let key = fingerprint(upload);

        let mut inner = self.inner.lock().expect("engine pool");
        loop {
            inner.clock += 1;
            let now = inner.clock;
            let waiting = match inner.slots.get_mut(&key) {
                Some(Slot::Ready { engine, last_used }) => {
                    *last_used = now;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(engine));
                }
                Some(Slot::Building) => true,
                None => false,
            };
            if waiting {
                inner = self.built.wait(inner).expect("engine pool");
            } else {
                inner.slots.insert(key, Slot::Building);
                break;
            }
        }
        drop(inner);

        // Build outside the lock: a slow typecheck must not block hits
        // on other tenants.
        let outcome = self.build(upload);

        let mut inner = self.inner.lock().expect("engine pool");
        let result = match outcome {
            Ok(engine) => {
                let engine = Arc::new(engine);
                inner.clock += 1;
                let now = inner.clock;
                inner.slots.insert(
                    key,
                    Slot::Ready {
                        engine: Arc::clone(&engine),
                        last_used: now,
                    },
                );
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.evict_over_capacity(&mut inner, key);
                Ok(engine)
            }
            Err(e) => {
                // Remove the in-flight marker so the fingerprint can be
                // retried; a failed build must not poison the slot.
                inner.slots.remove(&key);
                Err(PoolError::Build(e))
            }
        };
        drop(inner);
        self.built.notify_all();
        result
    }

    /// Evicts least-recently-used ready engines until at most
    /// `capacity` remain, never evicting `keep` (the slot just
    /// inserted) or in-flight builds.
    fn evict_over_capacity(&self, inner: &mut Inner, keep: u64) {
        loop {
            let ready = inner
                .slots
                .values()
                .filter(|slot| matches!(slot, Slot::Ready { .. }))
                .count();
            if ready <= self.capacity {
                return;
            }
            let victim = inner
                .slots
                .iter()
                .filter(|(k, _)| **k != keep)
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { last_used, .. } => Some((*k, *last_used)),
                    Slot::Building => None,
                })
                .min_by_key(|(_, last_used)| *last_used)
                .map(|(k, _)| k);
            let Some(victim) = victim else { return };
            inner.slots.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Runs the full build pipeline on uploaded sources.
    fn build(&self, upload: &ProgramUpload) -> Result<Engine, BuildError> {
        let mut builder = Engine::builder()
            .program_source(&upload.program)?
            .predicates_source(&upload.predicates)?
            .config(self.settings.config);
        if let Some(settings) = self.settings.analysis {
            builder = builder.static_analysis(settings);
        }
        if let Some(workers) = self.settings.parallelism {
            builder = builder.parallelism(workers);
        }
        if let Some(capacity) = self.settings.cache_capacity {
            builder = builder.cache_capacity(capacity);
        }
        if let Some(addr) = &self.settings.remote_cache {
            builder = builder.remote_cache(addr.clone());
        }
        builder.build()
    }

    /// The worker budget the `hello` banner advertises: the default
    /// tenant's, or what pool-built engines will get.
    pub fn parallelism(&self) -> usize {
        match &self.default {
            Some(engine) => engine.parallelism(),
            None => self
                .settings
                .parallelism
                .unwrap_or_else(sling::default_parallelism),
        }
    }

    /// Consumes the pool, returning the default tenant's engine for
    /// further in-process use (`None` when the daemon booted without
    /// one, or while a connection handler still holds it).
    pub fn into_default(self) -> Option<Engine> {
        self.default.and_then(|arc| Arc::try_unwrap(arc).ok())
    }
}

/// FNV-1a over program source, a separator, and predicate source: the
/// pool key. A 64-bit content hash — no canonicalization, so the same
/// sources with different whitespace are distinct tenants (correct:
/// byte-identical uploads are the reuse contract a client can reason
/// about).
pub fn fingerprint(upload: &ProgramUpload) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(upload.program.as_bytes());
    eat(&[0xff]); // program/predicates boundary, not a valid UTF-8 byte
    eat(upload.predicates.as_bytes());
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(node: &str) -> ProgramUpload {
        ProgramUpload {
            program: format!(
                "struct {node} {{ next: {node}*; }}
                 fn id(x: {node}*) -> {node}* {{ return x; }}"
            ),
            predicates: format!(
                "pred p_{node}(x: {node}*) := emp & x == nil
                   | exists u. x -> {node}{{next: u}} * p_{node}(u);"
            ),
        }
    }

    #[test]
    fn fingerprints_separate_program_from_predicates() {
        // Moving bytes across the program/predicates boundary must
        // change the key.
        let a = ProgramUpload {
            program: "ab".into(),
            predicates: "c".into(),
        };
        let b = ProgramUpload {
            program: "a".into(),
            predicates: "bc".into(),
        };
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn resolve_reuses_and_evicts_lru() {
        let pool = EnginePool::new(None, 2, PoolSettings::default());
        let [a, b, c] = [corpus("PoolA"), corpus("PoolB"), corpus("PoolC")];

        let ea1 = pool.resolve(Some(&a)).expect("build a");
        let _eb = pool.resolve(Some(&b)).expect("build b");
        let ea2 = pool.resolve(Some(&a)).expect("hit a");
        assert!(Arc::ptr_eq(&ea1, &ea2), "hit must reuse the built engine");

        // Capacity 2: building c evicts the LRU tenant, which is b
        // (a was touched more recently).
        let ec1 = pool.resolve(Some(&c)).expect("build c");
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 3, 1));
        assert_eq!((stats.resident, stats.capacity), (2, 2));

        // b rebuilt = another miss, evicting a (now the LRU — its last
        // touch predates c's build); c survives and hits.
        pool.resolve(Some(&b)).expect("rebuild b");
        let ec2 = pool.resolve(Some(&c)).expect("c still resident");
        assert!(Arc::ptr_eq(&ec1, &ec2));
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 4, 2));
    }

    #[test]
    fn no_default_is_typed_and_failed_builds_do_not_poison() {
        let pool = EnginePool::new(None, 4, PoolSettings::default());
        assert!(matches!(pool.resolve(None), Err(PoolError::NoDefault)));

        let hostile = ProgramUpload {
            program: "fn broken( {".into(),
            predicates: String::new(),
        };
        assert!(matches!(
            pool.resolve(Some(&hostile)),
            Err(PoolError::Build(_))
        ));
        // The failed fingerprint is retryable (fails again, typed), and
        // a good upload still builds.
        assert!(matches!(
            pool.resolve(Some(&hostile)),
            Err(PoolError::Build(_))
        ));
        pool.resolve(Some(&corpus("PoolOk"))).expect("healthy pool");
        let stats = pool.stats();
        assert_eq!(stats.resident, 1);
    }

    #[test]
    fn lint_gate_rejects_hostile_uploads_by_default() {
        let pool = EnginePool::new(None, 4, PoolSettings::default());
        // Use-before-init: `y` is read on every path without ever being
        // written. The default settings deny this at build time.
        let hostile = ProgramUpload {
            program: "fn f() -> int { var y: int; return y; }".into(),
            predicates: String::new(),
        };
        match pool.resolve(Some(&hostile)) {
            Err(PoolError::Build(sling::BuildError::Rejected(diags))) => {
                assert!(diags.has_deny());
                assert!(diags
                    .iter()
                    .any(|d| d.code == sling::lint_codes::USE_BEFORE_INIT));
            }
            other => panic!("expected a rejected build, got {other:?}"),
        }

        // Opting out of the gate lets the same upload build.
        let ungated = EnginePool::new(
            None,
            4,
            PoolSettings {
                analysis: None,
                ..PoolSettings::default()
            },
        );
        ungated
            .resolve(Some(&hostile))
            .expect("ungated pool builds the lint-dirty upload");
    }

    #[test]
    fn concurrent_same_upload_builds_once() {
        let pool = Arc::new(EnginePool::new(None, 4, PoolSettings::default()));
        let upload = corpus("PoolShared");
        let engines: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    let upload = upload.clone();
                    scope.spawn(move || pool.resolve(Some(&upload)).expect("build or wait"))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in engines.windows(2) {
            assert!(
                Arc::ptr_eq(&pair[0], &pair[1]),
                "all threads share one engine"
            );
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "exactly one build ran");
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn into_default_returns_the_boot_engine() {
        let upload = corpus("PoolBoot");
        let engine = Engine::builder()
            .program_source(&upload.program)
            .unwrap()
            .predicates_source(&upload.predicates)
            .unwrap()
            .build()
            .unwrap();
        let pool = EnginePool::new(Some(engine), 2, PoolSettings::default());
        assert!(pool.default_engine().is_some());
        assert!(pool.resolve(None).is_ok());
        assert!(pool.into_default().is_some());

        let empty = EnginePool::new(None, 2, PoolSettings::default());
        assert!(empty.into_default().is_none());
    }
}
