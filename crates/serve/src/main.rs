//! The standalone `sling-serve` daemon.
//!
//! Boots one long-lived engine (program + predicate library +
//! warm-loaded entailment-cache snapshot) and serves analysis batches
//! over the newline-delimited wire protocol until killed.
//!
//! ```sh
//! sling-serve --program prog.minic --predicates lib.preds \
//!             --addr 127.0.0.1:7341 --cache /var/cache/sling.bin --snapshot-secs 30
//! # or, for smoke tests and demos, the built-in list corpus:
//! sling-serve --corpus DemoNode --addr 127.0.0.1:7341
//! ```

use std::process::ExitCode;
use std::time::Duration;

use sling::Engine;
use sling_serve::{ServeOptions, Service};
use sling_suite::fixtures::ListCorpus;

const USAGE: &str = "\
usage: sling-serve (--program FILE --predicates FILE | --corpus NODE)
                   [--addr HOST:PORT] [--cache FILE] [--snapshot-secs N]
                   [--parallelism N]

  --program FILE      MiniC source of the program to serve
  --predicates FILE   predicate library source
  --corpus NODE       serve the built-in four-function list corpus over
                      struct NODE instead of reading files
  --addr HOST:PORT    listen address (default 127.0.0.1:7341; port 0
                      picks an ephemeral port, printed at boot)
  --cache FILE        persistent entailment-cache snapshot: warm-loaded
                      at boot, saved on the snapshot interval and at exit
  --snapshot-secs N   background snapshot period (default 60; needs --cache)
  --parallelism N     worker budget (default: SLING_PARALLELISM or cores)";

struct Args {
    program: Option<String>,
    predicates: Option<String>,
    corpus: Option<String>,
    addr: String,
    cache: Option<String>,
    snapshot_secs: u64,
    parallelism: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        program: None,
        predicates: None,
        corpus: None,
        addr: "127.0.0.1:7341".to_string(),
        cache: None,
        snapshot_secs: 60,
        parallelism: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--program" => args.program = Some(value("--program")?),
            "--predicates" => args.predicates = Some(value("--predicates")?),
            "--corpus" => args.corpus = Some(value("--corpus")?),
            "--addr" => args.addr = value("--addr")?,
            "--cache" => args.cache = Some(value("--cache")?),
            "--snapshot-secs" => {
                args.snapshot_secs = value("--snapshot-secs")?
                    .parse()
                    .map_err(|e| format!("bad --snapshot-secs: {e}"))?;
            }
            "--parallelism" => {
                args.parallelism = Some(
                    value("--parallelism")?
                        .parse()
                        .map_err(|e| format!("bad --parallelism: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    match (&args.corpus, &args.program, &args.predicates) {
        (Some(_), None, None) | (None, Some(_), Some(_)) => Ok(args),
        _ => Err(format!(
            "need either --corpus NODE or both --program and --predicates\n\n{USAGE}"
        )),
    }
}

fn build_engine(args: &Args) -> Result<Engine, Box<dyn std::error::Error>> {
    let (program, predicates) = match &args.corpus {
        Some(node) => {
            let corpus = ListCorpus::new(node.clone());
            (corpus.program(), corpus.predicates())
        }
        None => (
            std::fs::read_to_string(args.program.as_ref().expect("validated"))?,
            std::fs::read_to_string(args.predicates.as_ref().expect("validated"))?,
        ),
    };
    let mut builder = Engine::builder()
        .program_source(&program)?
        .predicates_source(&predicates)?;
    if let Some(path) = &args.cache {
        builder = builder.cache_path(path);
    }
    if let Some(workers) = args.parallelism {
        builder = builder.parallelism(workers);
    }
    Ok(builder.build()?)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let engine = match build_engine(&args) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("sling-serve: failed to build the engine: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warm = engine.warm_entries();
    let options = ServeOptions {
        snapshot_interval: args
            .cache
            .is_some()
            .then(|| Duration::from_secs(args.snapshot_secs.max(1))),
    };
    let service = match Service::bind_with(engine, &args.addr, options) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("sling-serve: failed to bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // The boot line is the readiness signal scripts wait for.
    println!(
        "sling-serve: listening on {} ({} warm cache entries, {} workers)",
        service.local_addr(),
        warm,
        service.engine().parallelism()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    // Serve until killed. The daemon has no in-band shutdown frame (a
    // client must not be able to stop a shared service); deployments
    // stop it with a signal, and the periodic snapshotter bounds what a
    // hard kill can lose to one interval.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
