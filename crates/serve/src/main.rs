//! The standalone `sling-serve` daemon.
//!
//! Boots an engine pool — optionally pre-warmed with a default tenant
//! (program + predicate library + warm-loaded entailment-cache
//! snapshot) — and serves analysis batches over the newline-delimited
//! wire protocol until killed. Batches may upload their own program
//! and predicates; the pool builds each distinct upload once, reuses
//! it while resident, and evicts least-recently-used past `--pool-cap`.
//!
//! ```sh
//! sling-serve --program prog.minic --predicates lib.preds \
//!             --addr 127.0.0.1:7341 --cache /var/cache/sling.bin --snapshot-secs 30
//! # or, for smoke tests and demos, the built-in list corpus:
//! sling-serve --corpus DemoNode --addr 127.0.0.1:7341
//! # or fully multi-tenant, nothing baked in — clients upload programs:
//! sling-serve --addr 127.0.0.1:7341 --pool-cap 4
//! # or a fleet sharing one entailment-cache tier:
//! sling-serve --cache-server --addr 127.0.0.1:7350
//! sling-serve --corpus DemoNode --addr 127.0.0.1:7341 --remote-cache 127.0.0.1:7350
//! sling-serve --corpus DemoNode --addr 127.0.0.1:7342 --remote-cache 127.0.0.1:7350
//! ```

use std::process::ExitCode;
use std::time::Duration;

use sling::{Engine, SlingConfig, VerifySettings};
use sling_serve::{EnginePool, PoolSettings, ServeOptions, Service, DEFAULT_POOL_CAPACITY};
use sling_suite::fixtures::ListCorpus;

const USAGE: &str = "\
usage: sling-serve [--program FILE --predicates FILE | --corpus NODE]
                   [--addr HOST:PORT] [--cache FILE|DIR] [--snapshot-secs N]
                   [--cache-cap N] [--max-conns N] [--parallelism N]
                   [--pool-cap N] [--executor bytecode|treewalk] [--verify]
                   [--remote-cache HOST:PORT]
       sling-serve --cache-server [--addr HOST:PORT]

  --program FILE      MiniC source of the default program to serve; with
                      neither --program nor --corpus the daemon boots
                      empty and every batch must upload its program
  --predicates FILE   predicate library source
  --corpus NODE       serve the built-in four-function list corpus over
                      struct NODE instead of reading files
  --addr HOST:PORT    listen address (default 127.0.0.1:7341; port 0
                      picks an ephemeral port, printed at boot)
  --cache FILE|DIR    persistent entailment-cache snapshot for the
                      default tenant: warm-loaded at boot, saved on the
                      snapshot interval and at exit. A directory merges
                      every *.snap inside at boot (corrupt siblings are
                      skipped with a warning) and saves to
                      <DIR>/serve-<pid>.snap; a missing, extension-less
                      path is created as a directory. Needs a default
                      tenant (uploaded tenants are ephemeral)
  --snapshot-secs N   background snapshot period (default 60; needs --cache)
  --cache-cap N       bound each engine's entailment cache to ~N entries
                      with LRU eviction (default: unbounded within memory)
  --max-conns N       serve at most N concurrent connections; excess
                      connections get a typed `busy` frame and should
                      retry (default: unbounded)
  --parallelism N     worker budget (default: SLING_PARALLELISM or cores)
  --pool-cap N        hold at most N uploaded-tenant engines resident,
                      evicting least-recently-used (default 8; the
                      default tenant is pinned and not counted)
  --executor TIER     execution tier for trace collection: `bytecode`
                      (compiled stack VM, the default) or `treewalk`
                      (the reference interpreter — identical traces,
                      slower). This flag wins over SLING_EXECUTOR
  --verify            grade every inferred invariant with the static
                      verification post-pass (counterexample-guided
                      refinement on refutation); the summed grade totals
                      ride each batch's `done` epilogue. `SLING_VERIFY=off`
                      in the daemon's environment overrides this flag
  --remote-cache ADDR join the distributed entailment-cache tier at ADDR
                      (a `sling-serve --cache-server` process): every
                      engine this daemon builds becomes a write-through
                      client — local shard first, remote lookup on miss,
                      fresh verdicts uploaded write-behind, periodic
                      anti-entropy sync. A dead or slow tier degrades
                      engines to local-only analysis, never fails them
  --cache-server      run as the cache tier itself: no engines, no
                      analysis — just the fleet-shared entailment memo
                      table speaking get/put/sync on --addr. Only --addr
                      combines with this mode";

struct Args {
    program: Option<String>,
    predicates: Option<String>,
    corpus: Option<String>,
    addr: String,
    cache: Option<String>,
    snapshot_secs: u64,
    cache_cap: Option<usize>,
    max_conns: Option<usize>,
    parallelism: Option<usize>,
    pool_cap: Option<usize>,
    executor: Option<sling::Executor>,
    verify: bool,
    remote_cache: Option<String>,
    cache_server: bool,
}

impl Args {
    /// Whether the daemon boots with a default tenant at all.
    fn has_default_tenant(&self) -> bool {
        self.corpus.is_some() || self.program.is_some()
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        program: None,
        predicates: None,
        corpus: None,
        addr: "127.0.0.1:7341".to_string(),
        cache: None,
        snapshot_secs: 60,
        cache_cap: None,
        max_conns: None,
        parallelism: None,
        pool_cap: None,
        executor: None,
        verify: false,
        remote_cache: None,
        cache_server: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--program" => args.program = Some(value("--program")?),
            "--predicates" => args.predicates = Some(value("--predicates")?),
            "--corpus" => args.corpus = Some(value("--corpus")?),
            "--addr" => args.addr = value("--addr")?,
            "--cache" => args.cache = Some(value("--cache")?),
            "--snapshot-secs" => {
                args.snapshot_secs = value("--snapshot-secs")?
                    .parse()
                    .map_err(|e| format!("bad --snapshot-secs: {e}"))?;
            }
            "--cache-cap" => {
                args.cache_cap = Some(
                    value("--cache-cap")?
                        .parse()
                        .map_err(|e| format!("bad --cache-cap: {e}"))?,
                );
            }
            "--max-conns" => {
                args.max_conns = Some(
                    value("--max-conns")?
                        .parse()
                        .map_err(|e| format!("bad --max-conns: {e}"))?,
                );
            }
            "--parallelism" => {
                args.parallelism = Some(
                    value("--parallelism")?
                        .parse()
                        .map_err(|e| format!("bad --parallelism: {e}"))?,
                );
            }
            "--pool-cap" => {
                args.pool_cap = Some(
                    value("--pool-cap")?
                        .parse()
                        .map_err(|e| format!("bad --pool-cap: {e}"))?,
                );
            }
            "--executor" => {
                let name = value("--executor")?;
                args.executor = Some(sling::Executor::parse(&name).ok_or_else(|| {
                    format!("bad --executor {name:?}: want `bytecode` or `treewalk`")
                })?);
            }
            "--verify" => args.verify = true,
            "--remote-cache" => args.remote_cache = Some(value("--remote-cache")?),
            "--cache-server" => args.cache_server = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    match (&args.corpus, &args.program, &args.predicates) {
        (Some(_), None, None) | (None, Some(_), Some(_)) | (None, None, None) => {}
        _ => {
            return Err(format!(
                "need --corpus NODE, both --program and --predicates, or neither \
                 (multi-tenant: clients upload programs)\n\n{USAGE}"
            ))
        }
    }
    if args.cache.is_some() && !args.has_default_tenant() {
        return Err(format!(
            "--cache needs a default tenant (--program/--corpus): uploaded \
             tenants are ephemeral and never snapshotted\n\n{USAGE}"
        ));
    }
    if args.cache_server {
        let incompatible = args.has_default_tenant()
            || args.predicates.is_some()
            || args.cache.is_some()
            || args.cache_cap.is_some()
            || args.max_conns.is_some()
            || args.parallelism.is_some()
            || args.pool_cap.is_some()
            || args.executor.is_some()
            || args.verify
            || args.remote_cache.is_some();
        if incompatible {
            return Err(format!(
                "--cache-server runs the bare cache tier: only --addr \
                 combines with it\n\n{USAGE}"
            ));
        }
    }
    Ok(args)
}

/// Resolves `--cache`: a file is the snapshot path itself; a directory
/// means "merge every `*.snap` inside at boot" with this process
/// writing its own `serve-<pid>.snap` sibling. A path that does not
/// exist yet and has no extension is created as a directory — a fresh
/// host pointing at `/var/lib/sling/snaps` must get fleet sharing, not
/// a snapshot file silently squatting on the directory's name.
fn cache_layout(
    cache: &Option<String>,
) -> (Option<std::path::PathBuf>, Option<std::path::PathBuf>) {
    let Some(cache) = cache else {
        return (None, None);
    };
    let path = std::path::PathBuf::from(cache);
    let dir_intended = path.is_dir()
        || (!path.exists() && path.extension().is_none() && {
            match std::fs::create_dir_all(&path) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!(
                        "sling-serve: cannot create snapshot directory {}: {e}; \
                         treating --cache as a snapshot file",
                        path.display()
                    );
                    false
                }
            }
        });
    if dir_intended {
        let own = path.join(format!("serve-{}.snap", std::process::id()));
        (Some(own), Some(path))
    } else {
        (Some(path), None)
    }
}

fn build_engine(
    args: &Args,
    cache_path: &Option<std::path::PathBuf>,
) -> Result<Engine, Box<dyn std::error::Error>> {
    let (program, predicates) = match &args.corpus {
        Some(node) => {
            let corpus = ListCorpus::new(node.clone());
            (corpus.program(), corpus.predicates())
        }
        None => (
            std::fs::read_to_string(args.program.as_ref().expect("validated"))?,
            std::fs::read_to_string(args.predicates.as_ref().expect("validated"))?,
        ),
    };
    let mut builder = Engine::builder()
        .program_source(&program)?
        .predicates_source(&predicates)?;
    if let Some(path) = cache_path {
        builder = builder.cache_path(path);
    }
    if let Some(capacity) = args.cache_cap {
        builder = builder.cache_capacity(capacity);
    }
    if let Some(workers) = args.parallelism {
        builder = builder.parallelism(workers);
    }
    if let Some(executor) = args.executor {
        builder = builder.executor(executor);
    }
    if args.verify {
        builder = builder.verification(VerifySettings::default());
    }
    if let Some(addr) = &args.remote_cache {
        builder = builder.remote_cache(addr.clone());
    }
    Ok(builder.build()?)
}

/// Removes `serve-<pid>.snap` siblings whose daemon no longer runs.
/// Only files matching this daemon's own naming scheme are candidates —
/// operator-managed snapshots (`a.snap`, nightly exports, ...) are
/// never touched — and a file that failed to merge is kept for
/// inspection. Liveness comes from `/proc/<pid>`; on platforms without
/// procfs nothing is reaped (accumulation there is bounded by how
/// often daemons restart, and the operator can prune by hand).
fn reap_dead_daemon_snapshots(
    dir: &std::path::Path,
    skipped: &[(std::path::PathBuf, sling::PersistError)],
) -> u64 {
    if !std::path::Path::new("/proc/self").exists() {
        return 0; // no procfs: cannot tell dead from alive
    }
    let own_pid = std::process::id();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut reaped = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(pid) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("serve-"))
            .and_then(|n| n.strip_suffix(".snap"))
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        if pid == own_pid
            || std::path::Path::new(&format!("/proc/{pid}")).exists()
            || skipped.iter().any(|(p, _)| *p == path)
        {
            continue;
        }
        if std::fs::remove_file(&path).is_ok() {
            reaped += 1;
        }
    }
    reaped
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    // Cache-server mode: no engines, no pool — just the fleet-shared
    // entailment memo table.
    if args.cache_server {
        let server = match sling_serve::CacheServer::bind(&args.addr) {
            Ok(server) => server,
            Err(e) => {
                eprintln!(
                    "sling-serve: failed to bind cache server on {}: {e}",
                    args.addr
                );
                return ExitCode::FAILURE;
            }
        };
        // The boot line is the readiness signal scripts wait for.
        println!(
            "sling-serve: cache server listening on {}",
            server.local_addr()
        );
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        // Serve until killed, like the analysis daemon: no in-band
        // shutdown (a client must not be able to stop a shared tier).
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let (cache_path, cache_dir) = cache_layout(&args.cache);
    let engine = if args.has_default_tenant() {
        match build_engine(&args, &cache_path) {
            Ok(engine) => Some(engine),
            Err(e) => {
                eprintln!("sling-serve: failed to build the engine: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    // Directory mode: fold every sibling snapshot into the live cache.
    // A corrupt or foreign sibling is a warning, never a boot failure.
    if let (Some(dir), Some(engine)) = (&cache_dir, &engine) {
        match sling_serve::absorb_snapshot_dir(engine, dir, cache_path.as_deref()) {
            Ok(outcome) => {
                for (path, why) in &outcome.skipped {
                    eprintln!("sling-serve: skipping snapshot {}: {why}", path.display());
                }
                println!(
                    "sling-serve: merged {} entries from {} snapshot(s) in {} ({} skipped)",
                    outcome.merged,
                    outcome.files - outcome.skipped.len() as u64,
                    dir.display(),
                    outcome.skipped.len()
                );
                // The merged entries now live in this cache (and will be
                // in this daemon's own snapshots), so snapshots of
                // *dead* daemons are redundant — reap them, or restarts
                // accumulate one serve-<pid>.snap per boot forever.
                let reaped = reap_dead_daemon_snapshots(dir, &outcome.skipped);
                if reaped > 0 {
                    println!("sling-serve: reaped {reaped} snapshot(s) of exited daemons");
                }
            }
            Err(e) => eprintln!(
                "sling-serve: could not scan snapshot directory {}: {e}",
                dir.display()
            ),
        }
    }
    let warm = engine.as_ref().map_or(0, Engine::warm_entries);
    // Uploaded tenants inherit the daemon's run settings; the default
    // tenant keeps its own (identical) build.
    let mut config = SlingConfig::default();
    if let Some(executor) = args.executor {
        config.executor = executor;
    }
    if args.verify {
        config.verify = Some(VerifySettings::default());
    }
    let settings = PoolSettings {
        config,
        parallelism: args.parallelism,
        cache_capacity: args.cache_cap,
        analysis: Some(sling::AnalysisSettings::default()),
        remote_cache: args.remote_cache.clone(),
    };
    let pool_cap = args.pool_cap.unwrap_or(DEFAULT_POOL_CAPACITY);
    let pool = EnginePool::new(engine, pool_cap, settings);
    let options = ServeOptions {
        snapshot_interval: args
            .cache
            .is_some()
            .then(|| Duration::from_secs(args.snapshot_secs.max(1))),
        max_connections: args.max_conns,
        pool_capacity: None, // the pool above carries the capacity
        max_frame_bytes: None,
    };
    let service = match Service::bind_pool(pool, &args.addr, options) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("sling-serve: failed to bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // The boot line is the readiness signal scripts wait for.
    let tenant = match service.engine() {
        Some(engine) => format!("{} executor", engine.config().executor),
        None => "no default tenant — uploads only".to_string(),
    };
    let tier = match &args.remote_cache {
        Some(addr) => format!(", cache tier {addr}"),
        None => String::new(),
    };
    println!(
        "sling-serve: listening on {} ({} warm cache entries, {} workers, {tenant}, pool cap {pool_cap}{}{tier})",
        service.local_addr(),
        warm,
        service.pool().parallelism(),
        if args.verify {
            ", verification post-pass on"
        } else {
            ""
        }
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    // Serve until killed. The daemon has no in-band shutdown frame (a
    // client must not be able to stop a shared service); deployments
    // stop it with a signal, and the periodic snapshotter bounds what a
    // hard kill can lose to one interval.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
