//! The long-lived analysis service.

use std::io::{self, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sling::{Engine, Report};

use crate::pool::{EnginePool, PoolSettings};
use crate::proto::{ClientFrame, FrameBuffer, FrameTooLarge, ServerFrame, MAX_FRAME_BYTES};

/// How often blocked reads wake up to notice a drain in progress.
const DRAIN_POLL: Duration = Duration::from_millis(100);

/// Engine-pool capacity when [`ServeOptions::pool_capacity`] is unset.
pub const DEFAULT_POOL_CAPACITY: usize = 8;

/// Tuning knobs for [`Service::bind_with`].
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Snapshot the entailment cache to the default engine's configured
    /// [`cache_path`](sling::EngineBuilder::cache_path) on this period,
    /// so a crash loses at most one interval of memoized entailments.
    /// `None` (the default) snapshots only at graceful shutdown.
    pub snapshot_interval: Option<Duration>,
    /// Bound on concurrently served connections. A connection arriving
    /// past the bound is answered with one `busy` frame (carrying the
    /// active count and the bound) and closed instead of spawning a
    /// handler thread, so a connection flood cannot exhaust threads or
    /// file descriptors. `None` (the default) accepts without bound.
    pub max_connections: Option<usize>,
    /// Bound on uploaded-tenant engines held resident at once
    /// ([`DEFAULT_POOL_CAPACITY`] when `None`); past it the
    /// least-recently-used engine is evicted.
    pub pool_capacity: Option<usize>,
    /// Bound on one frame's length on the wire
    /// ([`MAX_FRAME_BYTES`](crate::proto::MAX_FRAME_BYTES) when
    /// `None`); a peer exceeding it gets a typed `error` frame and is
    /// disconnected.
    pub max_frame_bytes: Option<usize>,
}

/// Shared state between the acceptor, connection handlers, and the
/// snapshotter.
#[derive(Debug)]
struct Shared {
    pool: EnginePool,
    draining: AtomicBool,
    /// Periodic + shutdown snapshots taken so far (observable in tests
    /// and ops logs).
    snapshots: AtomicU64,
    /// Connections currently being served (admission control against
    /// `max_connections`).
    active: AtomicUsize,
    max_connections: Option<usize>,
    max_frame_bytes: usize,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// Decrements the active-connection count when a handler exits, however
/// it exits.
struct ConnectionGuard(Arc<Shared>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Shared {
    /// Persists the default engine's cache if it has a snapshot path;
    /// counts successes. (Pool-built tenants are ephemeral by design —
    /// their caches live and die with their residency.)
    fn snapshot(&self) -> io::Result<u64> {
        let Some(engine) = self.pool.default_engine() else {
            return Ok(0);
        };
        if engine.cache_path().is_none() {
            return Ok(0);
        }
        let written = engine.save_cache()?;
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(written)
    }
}

/// A multi-threaded TCP analysis service over an [`EnginePool`].
///
/// Bound with [`Service::bind`] (one pre-warmed default engine) or
/// [`Service::bind_pool`] (a full pool, possibly with no default), the
/// service accepts connections on a local address and speaks the
/// newline-delimited frame protocol of [`crate::proto`]: each `analyze`
/// frame first resolves its tenant slot against the pool — the default
/// engine, or an uploaded program built on miss and reused on hit —
/// then fans out over that engine ([`Engine::analyze_all_with`]),
/// streaming every [`Report`] back the moment it completes and closing
/// the batch with a `done` frame that carries the batch's cache delta,
/// the batch's summed grade totals
/// ([`VerifyTotals`](crate::proto::VerifyTotals)), and the pool's
/// movement counters. Engines — and with them warm entailment caches —
/// are shared by every connection, so entailments established for one
/// client answer the next client's queries against the same tenant.
///
/// Shutdown is graceful: [`Service::shutdown`] stops accepting, lets
/// in-flight batches finish, disconnects idle clients, snapshots the
/// default engine's cache one last time, and returns the pool.
#[derive(Debug)]
pub struct Service {
    /// `Some` until [`Service::shutdown`] consumes it (`Option` so the
    /// engine can be moved out past the `Drop` impl).
    shared: Option<Arc<Shared>>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    snapshotter: Option<JoinHandle<()>>,
}

impl Service {
    /// Binds the service to `addr` (port 0 picks an ephemeral port —
    /// see [`Service::local_addr`]) with default options, serving
    /// `engine` as the default tenant.
    pub fn bind(engine: Engine, addr: impl ToSocketAddrs) -> io::Result<Service> {
        Service::bind_with(engine, addr, ServeOptions::default())
    }

    /// [`Service::bind`] with explicit [`ServeOptions`]. Uploaded
    /// tenants are built with the default-tenant engine's config and
    /// parallelism.
    pub fn bind_with(
        engine: Engine,
        addr: impl ToSocketAddrs,
        options: ServeOptions,
    ) -> io::Result<Service> {
        let settings = PoolSettings {
            config: *engine.config(),
            parallelism: Some(engine.parallelism()),
            cache_capacity: None,
            analysis: Some(sling::AnalysisSettings::default()),
            remote_cache: None,
        };
        let capacity = options.pool_capacity.unwrap_or(DEFAULT_POOL_CAPACITY);
        Service::bind_pool(
            EnginePool::new(Some(engine), capacity, settings),
            addr,
            options,
        )
    }

    /// Binds the service over an explicit [`EnginePool`] — the fully
    /// multi-tenant entry point, which needs no default engine at all
    /// (a batch without an upload is then answered with a typed
    /// `error`). `options.pool_capacity` is ignored here: the pool was
    /// built with its own capacity.
    pub fn bind_pool(
        pool: EnginePool,
        addr: impl ToSocketAddrs,
        options: ServeOptions,
    ) -> io::Result<Service> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            pool,
            draining: AtomicBool::new(false),
            snapshots: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            max_connections: options.max_connections,
            max_frame_bytes: options.max_frame_bytes.unwrap_or(MAX_FRAME_BYTES),
            handlers: Mutex::new(Vec::new()),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let snapshotter = options.snapshot_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || snapshot_loop(&shared, interval))
        });

        Ok(Service {
            shared: Some(shared),
            local_addr,
            acceptor: Some(acceptor),
            snapshotter,
        })
    }

    fn shared(&self) -> &Arc<Shared> {
        self.shared.as_ref().expect("service not yet shut down")
    }

    /// The address the service is accepting on (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The default-tenant engine, when the service has one.
    pub fn engine(&self) -> Option<&Engine> {
        self.shared().pool.default_engine()
    }

    /// The engine pool serving every connection.
    pub fn pool(&self) -> &EnginePool {
        &self.shared().pool
    }

    /// Cache snapshots taken so far (periodic plus shutdown).
    pub fn snapshots_taken(&self) -> u64 {
        self.shared().snapshots.load(Ordering::Relaxed)
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared().active.load(Ordering::SeqCst)
    }

    /// Gracefully drains the service: stop accepting, let in-flight
    /// batches finish streaming, disconnect idle clients, snapshot the
    /// default engine's cache one last time (when it has a
    /// [`cache_path`](sling::EngineBuilder::cache_path)), and return
    /// the engine pool — [`EnginePool::into_default`] recovers the
    /// default tenant for further in-process use.
    ///
    /// # Errors
    ///
    /// The final snapshot's I/O error, if it fails; the drain itself
    /// always completes.
    pub fn shutdown(mut self) -> io::Result<EnginePool> {
        self.begin_drain();
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor thread");
        }
        if let Some(snapshotter) = self.snapshotter.take() {
            snapshotter.join().expect("snapshotter thread");
        }
        let shared = self.shared.take().expect("service not yet shut down");
        loop {
            let Some(handler) = shared.handlers.lock().expect("handler list").pop() else {
                break;
            };
            handler.join().expect("connection handler");
        }
        let final_save = shared.snapshot();
        let shared = Arc::try_unwrap(shared).expect("all service threads joined");
        final_save?;
        Ok(shared.pool)
    }

    /// Flags the drain and wakes the blocked acceptor.
    fn begin_drain(&self) {
        if let Some(shared) = &self.shared {
            shared.draining.store(true, Ordering::SeqCst);
            // The acceptor blocks in `accept`; a throwaway connection
            // wakes it so it can observe the flag.
            TcpStream::connect(self.local_addr).ok();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Best-effort stop for a dropped (not shut down) service: flag
        // the drain so threads wind down; joining is `shutdown`'s job.
        if self.acceptor.is_some() {
            self.begin_drain();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(_) => {
                // Persistent accept errors (fd exhaustion, EMFILE) come
                // back instantly; without a pause this loop would pin a
                // core and starve the handlers that could free fds.
                std::thread::sleep(DRAIN_POLL);
                continue;
            }
        };
        // Admission control: claim a slot before spawning, so the
        // active count can never race past the bound. A connection
        // over the bound is told so (one typed `busy` frame) and
        // closed — it never costs a handler thread.
        let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(max) = shared.max_connections {
            if active > max {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                send_busy(stream, (active - 1) as u64, max as u64);
                continue;
            }
        }
        let guard = ConnectionGuard(Arc::clone(shared));
        let handler_shared = Arc::clone(shared);
        let handler = std::thread::spawn(move || {
            let _guard = guard;
            handle_connection(stream, &handler_shared);
        });
        let mut handlers = shared.handlers.lock().expect("handler list");
        // Reap finished connections so a long-lived service does not
        // accumulate one JoinHandle per connection it ever served.
        handlers.retain(|h| !h.is_finished());
        handlers.push(handler);
    }
}

/// Best-effort `busy` notice to a connection turned away at the bound.
fn send_busy(mut stream: TcpStream, active: u64, max: u64) {
    let mut line = ServerFrame::Busy { active, max }.encode();
    line.push('\n');
    stream.write_all(line.as_bytes()).ok();
}

fn snapshot_loop(shared: &Shared, interval: Duration) {
    let mut since_last = Duration::ZERO;
    loop {
        std::thread::sleep(DRAIN_POLL.min(interval));
        if shared.draining.load(Ordering::SeqCst) {
            break; // shutdown takes the final snapshot
        }
        since_last += DRAIN_POLL.min(interval);
        if since_last >= interval {
            since_last = Duration::ZERO;
            if let Err(e) = shared.snapshot() {
                eprintln!("sling-serve: periodic cache snapshot failed: {e}");
            }
        }
    }
}

/// The per-connection server loop: banner, then frame-by-frame service
/// until the client hangs up or the drain begins.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    stream.set_nodelay(true).ok();
    // Reads wake periodically so an idle connection notices the drain.
    stream.set_read_timeout(Some(DRAIN_POLL)).ok();
    let writer = Mutex::new(match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    });
    let hello = ServerFrame::Hello {
        warm_entries: shared
            .pool
            .default_engine()
            .map_or(0, |engine| engine.warm_entries()),
        parallelism: shared.pool.parallelism() as u64,
        pool: shared.pool.stats(),
    };
    if send(&writer, &hello).is_err() {
        return;
    }

    let mut reader = stream;
    let mut frames = FrameBuffer::with_limit(shared.max_frame_bytes);
    loop {
        while let Some(line) = frames.pop_line() {
            if !serve_frame(&line, shared, &writer) {
                return;
            }
        }
        if shared.draining.load(Ordering::SeqCst) {
            return; // between frames: in-flight work already finished
        }
        match frames.fill(&mut reader) {
            Ok(true) => {}
            Ok(false) => return, // clean EOF
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                // A peer past the frame cap learns why before the drop;
                // anything else (reset, broken pipe) just disconnects.
                if let Some(too_large) = e
                    .get_ref()
                    .and_then(|inner| inner.downcast_ref::<FrameTooLarge>())
                {
                    send_error(&writer, 0, &too_large.to_string());
                    drain_peer(&mut reader);
                }
                return;
            }
        }
    }
}

/// Consumes what a rejected peer already sent before the socket drops,
/// so the close delivers FIN rather than RST — a reset can destroy the
/// in-flight error frame before the peer reads it. Bounded in both
/// bytes and idle time: a peer that streams past the grace window is
/// dropped mid-stream anyway.
fn drain_peer(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 4096];
    let mut budget = 1usize << 20;
    let mut idle = 0u32;
    while budget > 0 && idle < 5 {
        match io::Read::read(stream, &mut scratch) {
            Ok(0) => return,
            Ok(n) => budget = budget.saturating_sub(n),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle += 1;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Serves one decoded frame; `false` ends the connection.
fn serve_frame(line: &str, shared: &Shared, writer: &Mutex<TcpStream>) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    match ClientFrame::decode(line) {
        Ok(ClientFrame::Ping) => send(writer, &ServerFrame::Pong).is_ok(),
        Ok(ClientFrame::Analyze {
            id,
            upload,
            requests,
        }) => {
            // Resolve the tenant first: a missing default or a build
            // failure fails this batch and leaves the connection — and
            // the pool — healthy for the next frame. Static-diagnostics
            // rejections carry their structured findings in a typed
            // `rejected` frame; everything else (parse, typecheck) is a
            // plain `error` frame.
            let engine = match shared.pool.resolve(upload.as_ref()) {
                Ok(engine) => engine,
                Err(crate::pool::PoolError::Build(sling::BuildError::Rejected(diagnostics))) => {
                    return send(writer, &ServerFrame::Rejected { id, diagnostics }).is_ok();
                }
                Err(e) => return send_error(writer, id, &e.to_string()),
            };
            // Stream each report the moment its request completes; the
            // sink runs on the engine's worker threads, so the write
            // end is mutex-shared and failures flip a flag instead of
            // unwinding across the pool.
            let broken = AtomicBool::new(false);
            let sink = |index: usize, report: &Report| {
                // Encoded straight from the borrow: cloning a Report
                // (residue heaps and all) per streamed frame would be
                // pure overhead on the worker threads.
                let line = crate::proto::encode_report_frame(id, index as u64, report);
                if send_line(writer, line).is_err() {
                    broken.store(true, Ordering::Relaxed);
                }
            };
            match engine.analyze_all_with(&requests, &sink) {
                Ok(batch) => {
                    let done = ServerFrame::Done {
                        id,
                        count: batch.reports.len() as u64,
                        verify: crate::proto::VerifyTotals::from_reports(&batch.reports),
                        cache: batch.cache,
                        pool: shared.pool.stats(),
                    };
                    !broken.load(Ordering::Relaxed) && send(writer, &done).is_ok()
                }
                Err(e) => send_error(writer, id, &e.to_string()),
            }
        }
        Err(e) => send_error(writer, ClientFrame::salvage_id(line), &e.to_string()),
    }
}

fn send(writer: &Mutex<TcpStream>, frame: &ServerFrame) -> io::Result<()> {
    send_line(writer, frame.encode())
}

fn send_line(writer: &Mutex<TcpStream>, mut line: String) -> io::Result<()> {
    line.push('\n');
    let mut guard = writer.lock().expect("connection writer");
    guard.write_all(line.as_bytes())
}

/// Reports a failure to the client; the connection stays usable (a bad
/// frame must not take down a long-lived client session).
fn send_error(writer: &Mutex<TcpStream>, id: u64, message: &str) -> bool {
    send(
        writer,
        &ServerFrame::Error {
            id,
            message: message.to_string(),
        },
    )
    .is_ok()
}

/// Outcome of folding a snapshot directory into an engine with
/// [`absorb_snapshot_dir`].
#[derive(Debug, Default)]
pub struct DirMerge {
    /// Entries merged into the live cache across every readable
    /// snapshot.
    pub merged: u64,
    /// Snapshot files visited (readable or not).
    pub files: u64,
    /// Snapshots that could not be folded (corrupt, wrong version,
    /// different type environment), with the reason. A skipped sibling
    /// is a warning, never a boot failure.
    pub skipped: Vec<(std::path::PathBuf, sling::PersistError)>,
}

/// Folds every `*.snap` file under `dir` into `engine`'s live cache
/// via [`sling::Engine::absorb_snapshot`], skipping `own` (the
/// engine's configured snapshot path, already loaded at build) and
/// collecting — not propagating — per-file failures: a corrupt sibling
/// must not take down a boot that has a perfectly good engine.
///
/// This is what `sling-serve --cache DIR` runs at boot, so a fleet of
/// daemons writing `<name>.snap` files into one directory warm each
/// other up; it is exposed for in-process services that want the same.
pub fn absorb_snapshot_dir(
    engine: &Engine,
    dir: &std::path::Path,
    own: Option<&std::path::Path>,
) -> io::Result<DirMerge> {
    let mut outcome = DirMerge::default();
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .flatten()
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "snap"))
        .filter(|path| own.is_none_or(|own| path != own))
        .collect();
    paths.sort(); // deterministic fold order for reproducible boots
    for path in paths {
        outcome.files += 1;
        match engine.absorb_snapshot(&path) {
            Ok(stats) => outcome.merged += stats.merged,
            Err(e) => outcome.skipped.push((path, e)),
        }
    }
    Ok(outcome)
}
