//! A blocking client for the serve protocol.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use sling::backoff::{jitter_seed, retry_delay};
use sling::wire::WireError;
use sling::{AnalysisRequest, BatchReport, Diagnostics, Report};

use crate::proto::{ClientFrame, FrameBuffer, PoolStats, ProgramUpload, ServerFrame, VerifyTotals};

/// Why a served analysis failed on the client side.
#[derive(Debug)]
pub enum ServeError {
    /// The connection failed or dropped.
    Io(io::Error),
    /// A frame could not be encoded or decoded.
    Wire(WireError),
    /// The server answered out of protocol (wrong id, missing reports,
    /// unexpected frame).
    Protocol(String),
    /// The server reported a failure (`error` frame).
    Remote(String),
    /// The uploaded program failed the server's static diagnostics gate
    /// (`rejected` frame): the structured findings travel typed, so the
    /// caller can act on lint codes and spans.
    Rejected(Diagnostics),
    /// The server is at its connection bound (`busy` frame) and closed
    /// the connection; retrying later — [`Client::connect_retry`] does —
    /// is the expected recovery.
    Busy {
        /// Connections the server was handling when it turned this one
        /// away.
        active: u64,
        /// The server's configured connection bound.
        max: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve connection error: {e}"),
            ServeError::Wire(e) => write!(f, "serve frame error: {e}"),
            ServeError::Protocol(why) => write!(f, "serve protocol violation: {why}"),
            ServeError::Remote(why) => write!(f, "server rejected the batch: {why}"),
            ServeError::Rejected(diags) => write!(
                f,
                "server rejected the uploaded program ({} finding{}):\n{diags}",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" },
            ),
            ServeError::Busy { active, max } => write!(
                f,
                "server is at its connection bound ({active}/{max}); retry later"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        ServeError::Wire(e)
    }
}

/// A blocking connection to a [`Service`](crate::Service) (or a
/// standalone `sling-serve` process).
///
/// One client holds one connection; batches are correlated by id, so a
/// client can be reused for any number of sequential
/// [`Client::analyze_all`] calls. The server's boot banner is read at
/// connect time — [`Client::warm_entries`] reports how warm the serving
/// engine started.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    frames: FrameBuffer,
    warm_entries: u64,
    parallelism: u64,
    next_id: u64,
    verify_totals: VerifyTotals,
    pool_stats: PoolStats,
}

impl Client {
    /// Connects and reads the server's `hello` banner.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            frames: FrameBuffer::new(),
            warm_entries: 0,
            parallelism: 0,
            next_id: 1,
            verify_totals: VerifyTotals::default(),
            pool_stats: PoolStats::default(),
        };
        match client.read_frame()? {
            ServerFrame::Hello {
                warm_entries,
                parallelism,
                pool,
            } => {
                client.warm_entries = warm_entries;
                client.parallelism = parallelism;
                client.pool_stats = pool;
                Ok(client)
            }
            ServerFrame::Busy { active, max } => Err(ServeError::Busy { active, max }),
            other => Err(ServeError::Protocol(format!(
                "expected a hello banner, got {other:?}"
            ))),
        }
    }

    /// [`Client::connect`] with retries until `deadline` elapses —
    /// for drivers racing a just-booted server process, and the
    /// expected recovery from a [`ServeError::Busy`] turn-away (a slot
    /// usually frees within the deadline). Retries back off
    /// exponentially with deterministic jitter — 10ms base doubling to
    /// a 1s cap, each sleep drawn from the cap's upper half — clamped
    /// to the remaining deadline so the last sleep never overshoots it.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        deadline: Duration,
    ) -> Result<Client, ServeError> {
        let start = Instant::now();
        let seed = jitter_seed();
        let mut attempt = 0u32;
        loop {
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    let elapsed = start.elapsed();
                    if elapsed >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(retry_delay(attempt, seed).min(deadline - elapsed));
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    /// Entries the serving engine restored from its cache snapshot at
    /// boot (from the `hello` banner).
    pub fn warm_entries(&self) -> u64 {
        self.warm_entries
    }

    /// The serving engine's worker budget (from the `hello` banner).
    pub fn parallelism(&self) -> u64 {
        self.parallelism
    }

    /// Verification-grade totals from the last completed batch's `done`
    /// epilogue — all zero before the first batch, and when the serving
    /// engine runs without the verification post-pass.
    pub fn verify_totals(&self) -> VerifyTotals {
        self.verify_totals
    }

    /// Engine-pool counters from the most recent `hello` banner or
    /// `done` epilogue — how many batches hit a resident engine, built
    /// one, and how many engines were evicted to stay under the cap.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool_stats
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.send(&ClientFrame::Ping)?;
        match self.read_frame()? {
            ServerFrame::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Serves a batch remotely: sends one `analyze` frame and collects
    /// the streamed reports into a [`BatchReport`] in request order —
    /// the wire mirror of [`sling::Engine::analyze_all`]. The batch
    /// runs against the daemon's default tenant.
    pub fn analyze_all(&mut self, requests: &[AnalysisRequest]) -> Result<BatchReport, ServeError> {
        self.analyze_all_with(requests, |_, _| {})
    }

    /// [`Client::analyze_all`] against an uploaded program: the server
    /// resolves `upload` in its engine pool (building on first sight,
    /// reusing after), then serves the batch against that engine. A
    /// static-diagnostics rejection comes back typed as
    /// [`ServeError::Rejected`] with the structured findings; other
    /// build failures — parse, typecheck — as [`ServeError::Remote`].
    /// Either way the connection stays usable.
    pub fn analyze_all_uploaded(
        &mut self,
        upload: &ProgramUpload,
        requests: &[AnalysisRequest],
    ) -> Result<BatchReport, ServeError> {
        self.analyze_all_uploaded_with(upload, requests, |_, _| {})
    }

    /// [`Client::analyze_all_uploaded`] with a streaming observer.
    pub fn analyze_all_uploaded_with(
        &mut self,
        upload: &ProgramUpload,
        requests: &[AnalysisRequest],
        sink: impl FnMut(usize, &Report),
    ) -> Result<BatchReport, ServeError> {
        self.run_batch(Some(upload), requests, sink)
    }

    /// [`Client::analyze_all`] with a streaming observer: `sink` sees
    /// each report as its frame arrives (completion order), before the
    /// batch finishes — the wire mirror of
    /// [`sling::Engine::analyze_all_with`].
    pub fn analyze_all_with(
        &mut self,
        requests: &[AnalysisRequest],
        sink: impl FnMut(usize, &Report),
    ) -> Result<BatchReport, ServeError> {
        self.run_batch(None, requests, sink)
    }

    fn run_batch(
        &mut self,
        upload: Option<&ProgramUpload>,
        requests: &[AnalysisRequest],
        mut sink: impl FnMut(usize, &Report),
    ) -> Result<BatchReport, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_line(crate::proto::encode_analyze_frame(id, upload, requests)?)?;

        let mut slots: Vec<Option<Report>> = (0..requests.len()).map(|_| None).collect();
        loop {
            match self.read_frame()? {
                ServerFrame::Report {
                    id: got,
                    index,
                    report,
                } => {
                    if got != id {
                        return Err(ServeError::Protocol(format!(
                            "report for batch {got} while awaiting batch {id}"
                        )));
                    }
                    let batch_len = slots.len();
                    let slot = slots.get_mut(index as usize).ok_or_else(|| {
                        ServeError::Protocol(format!(
                            "report index {index} out of range for a {batch_len}-request batch"
                        ))
                    })?;
                    if slot.is_some() {
                        return Err(ServeError::Protocol(format!(
                            "duplicate report for request {index}"
                        )));
                    }
                    sink(index as usize, &report);
                    *slot = Some(report);
                }
                ServerFrame::Done {
                    id: got,
                    count,
                    cache,
                    verify,
                    pool,
                } => {
                    if got != id {
                        return Err(ServeError::Protocol(format!(
                            "done for batch {got} while awaiting batch {id}"
                        )));
                    }
                    let reports: Vec<Report> = slots
                        .into_iter()
                        .enumerate()
                        .map(|(index, slot)| {
                            slot.ok_or_else(|| {
                                ServeError::Protocol(format!(
                                    "batch finished without a report for request {index}"
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    if count != reports.len() as u64 {
                        return Err(ServeError::Protocol(format!(
                            "done claims {count} reports, {} streamed",
                            reports.len()
                        )));
                    }
                    self.verify_totals = verify;
                    self.pool_stats = pool;
                    return Ok(BatchReport { reports, cache });
                }
                ServerFrame::Rejected {
                    id: got,
                    diagnostics,
                } if got == id => {
                    return Err(ServeError::Rejected(diagnostics));
                }
                ServerFrame::Error { id: got, message } if got == id || got == 0 => {
                    return Err(ServeError::Remote(message));
                }
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unexpected frame mid-batch: {other:?}"
                    )));
                }
            }
        }
    }

    fn send(&mut self, frame: &ClientFrame) -> Result<(), ServeError> {
        let line = frame.encode()?;
        self.send_line(line)
    }

    fn send_line(&mut self, mut line: String) -> Result<(), ServeError> {
        use std::io::Write as _;
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<ServerFrame, ServeError> {
        loop {
            if let Some(line) = self.frames.pop_line() {
                if line.trim().is_empty() {
                    continue;
                }
                return Ok(ServerFrame::decode(&line)?);
            }
            if !self.frames.fill(&mut self.stream)? {
                return Err(ServeError::Protocol(
                    "server closed the connection mid-conversation".into(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling::backoff::{RETRY_BASE, RETRY_CAP};

    #[test]
    fn connect_retry_backoff_is_total_at_the_saturated_attempt_counter() {
        // connect_retry grows `attempt` with saturating_add, so a long
        // deadline pins it at u32::MAX; the schedule used to compute
        // `attempt + 1` in u32 there and panic in debug builds. The
        // shared schedule must stay a plain capped draw.
        let delay = retry_delay(u32::MAX, jitter_seed());
        assert!(delay >= RETRY_CAP / 2 && delay <= RETRY_CAP);
        // And the prompt first retry still holds after the extraction.
        assert!(retry_delay(0, 1) <= RETRY_BASE);
    }
}
