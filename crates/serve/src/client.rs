//! A blocking client for the serve protocol.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use sling::wire::WireError;
use sling::{AnalysisRequest, BatchReport, Diagnostics, Report};

use crate::proto::{ClientFrame, FrameBuffer, PoolStats, ProgramUpload, ServerFrame, VerifyTotals};

/// Why a served analysis failed on the client side.
#[derive(Debug)]
pub enum ServeError {
    /// The connection failed or dropped.
    Io(io::Error),
    /// A frame could not be encoded or decoded.
    Wire(WireError),
    /// The server answered out of protocol (wrong id, missing reports,
    /// unexpected frame).
    Protocol(String),
    /// The server reported a failure (`error` frame).
    Remote(String),
    /// The uploaded program failed the server's static diagnostics gate
    /// (`rejected` frame): the structured findings travel typed, so the
    /// caller can act on lint codes and spans.
    Rejected(Diagnostics),
    /// The server is at its connection bound (`busy` frame) and closed
    /// the connection; retrying later — [`Client::connect_retry`] does —
    /// is the expected recovery.
    Busy {
        /// Connections the server was handling when it turned this one
        /// away.
        active: u64,
        /// The server's configured connection bound.
        max: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve connection error: {e}"),
            ServeError::Wire(e) => write!(f, "serve frame error: {e}"),
            ServeError::Protocol(why) => write!(f, "serve protocol violation: {why}"),
            ServeError::Remote(why) => write!(f, "server rejected the batch: {why}"),
            ServeError::Rejected(diags) => write!(
                f,
                "server rejected the uploaded program ({} finding{}):\n{diags}",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" },
            ),
            ServeError::Busy { active, max } => write!(
                f,
                "server is at its connection bound ({active}/{max}); retry later"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        ServeError::Wire(e)
    }
}

/// A blocking connection to a [`Service`](crate::Service) (or a
/// standalone `sling-serve` process).
///
/// One client holds one connection; batches are correlated by id, so a
/// client can be reused for any number of sequential
/// [`Client::analyze_all`] calls. The server's boot banner is read at
/// connect time — [`Client::warm_entries`] reports how warm the serving
/// engine started.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    frames: FrameBuffer,
    warm_entries: u64,
    parallelism: u64,
    next_id: u64,
    verify_totals: VerifyTotals,
    pool_stats: PoolStats,
}

/// First retry delay of [`Client::connect_retry`]'s backoff schedule.
const RETRY_BASE: Duration = Duration::from_millis(10);
/// Ceiling on any single retry delay.
const RETRY_CAP: Duration = Duration::from_secs(1);

/// The backoff schedule: attempt `k` (0-based) sleeps a jittered delay
/// in `[cap/2, cap]`, where `cap = min(RETRY_BASE << k, RETRY_CAP)` —
/// exponential growth, bounded, with enough jitter (seeded per call)
/// that a stampede of clients racing one just-booted server spreads
/// out instead of reconnecting in lockstep. Pure deadline math, so the
/// schedule is unit-testable without sockets.
fn retry_delay(attempt: u32, seed: u64) -> Duration {
    let cap = RETRY_BASE
        .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
        .min(RETRY_CAP);
    let cap_ns = cap.as_nanos() as u64;
    let half = cap_ns / 2;
    // xorshift over (seed, attempt): cheap, deterministic per input,
    // and well-spread across clients with distinct seeds.
    let mut x = seed ^ u64::from(attempt + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    Duration::from_nanos(half + x % (cap_ns - half).max(1))
}

/// A per-call jitter seed. `RandomState` is the standard library's
/// per-process randomly seeded hasher — no extra dependency, and two
/// clients (or two calls) get different schedules.
fn jitter_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

impl Client {
    /// Connects and reads the server's `hello` banner.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            frames: FrameBuffer::new(),
            warm_entries: 0,
            parallelism: 0,
            next_id: 1,
            verify_totals: VerifyTotals::default(),
            pool_stats: PoolStats::default(),
        };
        match client.read_frame()? {
            ServerFrame::Hello {
                warm_entries,
                parallelism,
                pool,
            } => {
                client.warm_entries = warm_entries;
                client.parallelism = parallelism;
                client.pool_stats = pool;
                Ok(client)
            }
            ServerFrame::Busy { active, max } => Err(ServeError::Busy { active, max }),
            other => Err(ServeError::Protocol(format!(
                "expected a hello banner, got {other:?}"
            ))),
        }
    }

    /// [`Client::connect`] with retries until `deadline` elapses —
    /// for drivers racing a just-booted server process, and the
    /// expected recovery from a [`ServeError::Busy`] turn-away (a slot
    /// usually frees within the deadline). Retries back off
    /// exponentially with deterministic jitter — 10ms base doubling to
    /// a 1s cap, each sleep drawn from the cap's upper half — clamped
    /// to the remaining deadline so the last sleep never overshoots it.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        deadline: Duration,
    ) -> Result<Client, ServeError> {
        let start = Instant::now();
        let seed = jitter_seed();
        let mut attempt = 0u32;
        loop {
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    let elapsed = start.elapsed();
                    if elapsed >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(retry_delay(attempt, seed).min(deadline - elapsed));
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    /// Entries the serving engine restored from its cache snapshot at
    /// boot (from the `hello` banner).
    pub fn warm_entries(&self) -> u64 {
        self.warm_entries
    }

    /// The serving engine's worker budget (from the `hello` banner).
    pub fn parallelism(&self) -> u64 {
        self.parallelism
    }

    /// Verification-grade totals from the last completed batch's `done`
    /// epilogue — all zero before the first batch, and when the serving
    /// engine runs without the verification post-pass.
    pub fn verify_totals(&self) -> VerifyTotals {
        self.verify_totals
    }

    /// Engine-pool counters from the most recent `hello` banner or
    /// `done` epilogue — how many batches hit a resident engine, built
    /// one, and how many engines were evicted to stay under the cap.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool_stats
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.send(&ClientFrame::Ping)?;
        match self.read_frame()? {
            ServerFrame::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Serves a batch remotely: sends one `analyze` frame and collects
    /// the streamed reports into a [`BatchReport`] in request order —
    /// the wire mirror of [`sling::Engine::analyze_all`]. The batch
    /// runs against the daemon's default tenant.
    pub fn analyze_all(&mut self, requests: &[AnalysisRequest]) -> Result<BatchReport, ServeError> {
        self.analyze_all_with(requests, |_, _| {})
    }

    /// [`Client::analyze_all`] against an uploaded program: the server
    /// resolves `upload` in its engine pool (building on first sight,
    /// reusing after), then serves the batch against that engine. A
    /// static-diagnostics rejection comes back typed as
    /// [`ServeError::Rejected`] with the structured findings; other
    /// build failures — parse, typecheck — as [`ServeError::Remote`].
    /// Either way the connection stays usable.
    pub fn analyze_all_uploaded(
        &mut self,
        upload: &ProgramUpload,
        requests: &[AnalysisRequest],
    ) -> Result<BatchReport, ServeError> {
        self.analyze_all_uploaded_with(upload, requests, |_, _| {})
    }

    /// [`Client::analyze_all_uploaded`] with a streaming observer.
    pub fn analyze_all_uploaded_with(
        &mut self,
        upload: &ProgramUpload,
        requests: &[AnalysisRequest],
        sink: impl FnMut(usize, &Report),
    ) -> Result<BatchReport, ServeError> {
        self.run_batch(Some(upload), requests, sink)
    }

    /// [`Client::analyze_all`] with a streaming observer: `sink` sees
    /// each report as its frame arrives (completion order), before the
    /// batch finishes — the wire mirror of
    /// [`sling::Engine::analyze_all_with`].
    pub fn analyze_all_with(
        &mut self,
        requests: &[AnalysisRequest],
        sink: impl FnMut(usize, &Report),
    ) -> Result<BatchReport, ServeError> {
        self.run_batch(None, requests, sink)
    }

    fn run_batch(
        &mut self,
        upload: Option<&ProgramUpload>,
        requests: &[AnalysisRequest],
        mut sink: impl FnMut(usize, &Report),
    ) -> Result<BatchReport, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_line(crate::proto::encode_analyze_frame(id, upload, requests)?)?;

        let mut slots: Vec<Option<Report>> = (0..requests.len()).map(|_| None).collect();
        loop {
            match self.read_frame()? {
                ServerFrame::Report {
                    id: got,
                    index,
                    report,
                } => {
                    if got != id {
                        return Err(ServeError::Protocol(format!(
                            "report for batch {got} while awaiting batch {id}"
                        )));
                    }
                    let batch_len = slots.len();
                    let slot = slots.get_mut(index as usize).ok_or_else(|| {
                        ServeError::Protocol(format!(
                            "report index {index} out of range for a {batch_len}-request batch"
                        ))
                    })?;
                    if slot.is_some() {
                        return Err(ServeError::Protocol(format!(
                            "duplicate report for request {index}"
                        )));
                    }
                    sink(index as usize, &report);
                    *slot = Some(report);
                }
                ServerFrame::Done {
                    id: got,
                    count,
                    cache,
                    verify,
                    pool,
                } => {
                    if got != id {
                        return Err(ServeError::Protocol(format!(
                            "done for batch {got} while awaiting batch {id}"
                        )));
                    }
                    let reports: Vec<Report> = slots
                        .into_iter()
                        .enumerate()
                        .map(|(index, slot)| {
                            slot.ok_or_else(|| {
                                ServeError::Protocol(format!(
                                    "batch finished without a report for request {index}"
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    if count != reports.len() as u64 {
                        return Err(ServeError::Protocol(format!(
                            "done claims {count} reports, {} streamed",
                            reports.len()
                        )));
                    }
                    self.verify_totals = verify;
                    self.pool_stats = pool;
                    return Ok(BatchReport { reports, cache });
                }
                ServerFrame::Rejected {
                    id: got,
                    diagnostics,
                } if got == id => {
                    return Err(ServeError::Rejected(diagnostics));
                }
                ServerFrame::Error { id: got, message } if got == id || got == 0 => {
                    return Err(ServeError::Remote(message));
                }
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unexpected frame mid-batch: {other:?}"
                    )));
                }
            }
        }
    }

    fn send(&mut self, frame: &ClientFrame) -> Result<(), ServeError> {
        let line = frame.encode()?;
        self.send_line(line)
    }

    fn send_line(&mut self, mut line: String) -> Result<(), ServeError> {
        use std::io::Write as _;
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<ServerFrame, ServeError> {
        loop {
            if let Some(line) = self.frames.pop_line() {
                if line.trim().is_empty() {
                    continue;
                }
                return Ok(ServerFrame::decode(&line)?);
            }
            if !self.frames.fill(&mut self.stream)? {
                return Err(ServeError::Protocol(
                    "server closed the connection mid-conversation".into(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delays_grow_exponentially_to_the_cap() {
        let seed = 0xdead_beef;
        for attempt in 0..40 {
            let cap = RETRY_BASE
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(RETRY_CAP);
            let delay = retry_delay(attempt, seed);
            assert!(
                delay >= cap / 2 && delay <= cap,
                "attempt {attempt}: {delay:?} outside [{:?}, {cap:?}]",
                cap / 2
            );
        }
        // The cap binds: far-out attempts never exceed RETRY_CAP.
        assert!(retry_delay(63, seed) <= RETRY_CAP);
        assert!(retry_delay(63, seed) >= RETRY_CAP / 2);
    }

    #[test]
    fn retry_delays_are_deterministic_per_seed_and_jittered_across_seeds() {
        assert_eq!(retry_delay(5, 42), retry_delay(5, 42));
        // With the cap at 320ms for attempt 5, distinct seeds landing on
        // the exact same nanosecond would be a broken jitter.
        let distinct: std::collections::HashSet<Duration> = (0..64u64)
            .map(|seed| retry_delay(5, seed * 7 + 1))
            .collect();
        assert!(distinct.len() > 32, "jitter collapsed: {}", distinct.len());
    }

    #[test]
    fn retry_schedule_stays_within_a_deadline_by_clamping() {
        // connect_retry clamps each sleep to the remaining deadline;
        // simulate the same arithmetic: total sleep time never passes
        // the deadline no matter how many attempts fail.
        let deadline = Duration::from_millis(200);
        let mut elapsed = Duration::ZERO;
        let seed = 7;
        for attempt in 0..32 {
            if elapsed >= deadline {
                break;
            }
            let sleep = retry_delay(attempt, seed).min(deadline - elapsed);
            elapsed += sleep;
        }
        assert!(elapsed <= deadline);
        // And the schedule actually reaches the deadline (it does not
        // stall short of it with zero-length sleeps).
        assert!(elapsed >= deadline - Duration::from_nanos(1));
    }

    #[test]
    fn first_retry_is_prompt() {
        // A driver racing a just-booted server should not wait long on
        // its first retry: attempt 0 sleeps at most RETRY_BASE.
        for seed in 0..32 {
            assert!(retry_delay(0, seed) <= RETRY_BASE);
        }
    }
}
