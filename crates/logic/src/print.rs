//! Pretty-printing of SL formulae in the paper's concrete syntax.
//!
//! The printed form round-trips through [`crate::parser::parse_formula`]:
//! `parse(print(f)) == f` up to binder names (property-tested in the
//! integration suite).

use std::fmt;

use crate::ast::{Expr, PureAtom, SpatialAtom, SymHeap};

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Nil => f.write_str("nil"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Int(k) => write!(f, "{k}"),
            Expr::Neg(e) => write!(f, "-{}", Paren(e)),
            Expr::Add(a, b) => write!(f, "{} + {}", Paren(a), Paren(b)),
            Expr::Sub(a, b) => write!(f, "{} - {}", Paren(a), Paren(b)),
            // Multiplication always self-parenthesizes so that `*` is never
            // ambiguous with the separating conjunction on re-parse.
            Expr::Mul(k, e) => write!(f, "({k} * {})", Paren(e)),
        }
    }
}

/// Wraps compound sub-expressions in parentheses.
struct Paren<'a>(&'a Expr);

impl fmt::Display for Paren<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            // Mul prints its own parentheses.
            Expr::Nil | Expr::Var(_) | Expr::Int(_) | Expr::Mul(..) => write!(f, "{}", self.0),
            _ => write!(f, "({})", self.0),
        }
    }
}

impl fmt::Display for PureAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PureAtom::Eq(a, b) => write!(f, "{a} == {b}"),
            PureAtom::Neq(a, b) => write!(f, "{a} != {b}"),
            PureAtom::Lt(a, b) => write!(f, "{a} < {b}"),
            PureAtom::Le(a, b) => write!(f, "{a} <= {b}"),
        }
    }
}

impl fmt::Display for SpatialAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialAtom::PointsTo { root, ty, fields } => {
                write!(f, "{root} -> {ty}{{")?;
                for (i, fa) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}: {}", fa.name, fa.value)?;
                }
                f.write_str("}")
            }
            SpatialAtom::Pred { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for SymHeap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.exists.is_empty() {
            f.write_str("exists ")?;
            for (i, v) in self.exists.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}")?;
            }
            f.write_str(". ")?;
        }
        if self.spatial.is_empty() {
            f.write_str("emp")?;
        } else {
            for (i, s) in self.spatial.iter().enumerate() {
                if i > 0 {
                    f.write_str(" * ")?;
                }
                write!(f, "{s}")?;
            }
        }
        for p in &self.pure {
            write!(f, " & {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_formula;

    #[test]
    fn print_emp() {
        let h = parse_formula("emp").unwrap();
        assert_eq!(h.to_string(), "emp");
    }

    #[test]
    fn print_full() {
        let h = parse_formula(
            "exists u1, u2. x -> Node{next: u1, prev: nil} * dll(u1, x, u2, nil) & u2 == y",
        )
        .unwrap();
        assert_eq!(
            h.to_string(),
            "exists u1, u2. x -> Node{next: u1, prev: nil} * dll(u1, x, u2, nil) & u2 == y"
        );
    }

    #[test]
    fn print_arith() {
        let h = parse_formula("emp & x == (3 * y) + 1").unwrap();
        assert_eq!(h.to_string(), "emp & x == (3 * y) + 1");
    }

    #[test]
    fn roundtrip_simple() {
        for src in [
            "emp",
            "sll(x)",
            "x -> Node{next: nil}",
            "exists u. lseg(x, u) * u -> Node{next: nil} & x != nil",
            "emp & x == nil & y == z",
        ] {
            let h = parse_formula(src).unwrap();
            let h2 = parse_formula(&h.to_string()).unwrap();
            assert_eq!(h, h2, "round-trip failed for `{src}`");
        }
    }
}
