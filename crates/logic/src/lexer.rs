//! Lexer for the SL predicate / formula surface syntax.

use std::fmt;

use crate::span::Span;
use crate::symbol::Symbol;

/// A lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// Identifier (variable, predicate, struct, or field name).
    Ident(Symbol),
    /// Integer literal.
    Int(i64),
    /// `pred`
    KwPred,
    /// `exists`
    KwExists,
    /// `emp`
    KwEmp,
    /// `nil` (also accepts `null`)
    KwNil,
    /// `int`
    KwInt,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `|`
    Pipe,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `->`
    Arrow,
    /// `:=`
    ColonEq,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Int(k) => write!(f, "integer `{k}`"),
            Token::KwPred => f.write_str("`pred`"),
            Token::KwExists => f.write_str("`exists`"),
            Token::KwEmp => f.write_str("`emp`"),
            Token::KwNil => f.write_str("`nil`"),
            Token::KwInt => f.write_str("`int`"),
            Token::LParen => f.write_str("`(`"),
            Token::RParen => f.write_str("`)`"),
            Token::LBrace => f.write_str("`{`"),
            Token::RBrace => f.write_str("`}`"),
            Token::Comma => f.write_str("`,`"),
            Token::Colon => f.write_str("`:`"),
            Token::Semi => f.write_str("`;`"),
            Token::Dot => f.write_str("`.`"),
            Token::Pipe => f.write_str("`|`"),
            Token::Star => f.write_str("`*`"),
            Token::Amp => f.write_str("`&`"),
            Token::Arrow => f.write_str("`->`"),
            Token::ColonEq => f.write_str("`:=`"),
            Token::EqEq => f.write_str("`==`"),
            Token::BangEq => f.write_str("`!=`"),
            Token::Lt => f.write_str("`<`"),
            Token::Le => f.write_str("`<=`"),
            Token::Gt => f.write_str("`>`"),
            Token::Ge => f.write_str("`>=`"),
            Token::Plus => f.write_str("`+`"),
            Token::Minus => f.write_str("`-`"),
            Token::Eof => f.write_str("end of input"),
        }
    }
}

/// A lexing error: an unexpected character or malformed literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Where it happened.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `source`, returning tokens with their spans. The final token is
/// always [`Token::Eof`].
///
/// Comments run from `//` to end of line.
///
/// # Errors
///
/// Returns [`LexError`] on an unexpected character or an integer literal
/// that overflows `i64`.
pub fn lex(source: &str) -> Result<Vec<(Token, Span)>, LexError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let lo = i as u32;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push((Token::LParen, Span::new(lo, lo + 1)));
                i += 1;
            }
            ')' => {
                out.push((Token::RParen, Span::new(lo, lo + 1)));
                i += 1;
            }
            '{' => {
                out.push((Token::LBrace, Span::new(lo, lo + 1)));
                i += 1;
            }
            '}' => {
                out.push((Token::RBrace, Span::new(lo, lo + 1)));
                i += 1;
            }
            ',' => {
                out.push((Token::Comma, Span::new(lo, lo + 1)));
                i += 1;
            }
            ';' => {
                out.push((Token::Semi, Span::new(lo, lo + 1)));
                i += 1;
            }
            '.' => {
                out.push((Token::Dot, Span::new(lo, lo + 1)));
                i += 1;
            }
            '|' => {
                out.push((Token::Pipe, Span::new(lo, lo + 1)));
                i += 1;
            }
            '*' => {
                out.push((Token::Star, Span::new(lo, lo + 1)));
                i += 1;
            }
            '&' => {
                out.push((Token::Amp, Span::new(lo, lo + 1)));
                i += 1;
            }
            '+' => {
                out.push((Token::Plus, Span::new(lo, lo + 1)));
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Token::Arrow, Span::new(lo, lo + 2)));
                    i += 2;
                } else {
                    out.push((Token::Minus, Span::new(lo, lo + 1)));
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::ColonEq, Span::new(lo, lo + 2)));
                    i += 2;
                } else {
                    out.push((Token::Colon, Span::new(lo, lo + 1)));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::EqEq, Span::new(lo, lo + 2)));
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `==` (single `=` is not a token)".into(),
                        span: Span::new(lo, lo + 1),
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::BangEq, Span::new(lo, lo + 2)));
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `!=`".into(),
                        span: Span::new(lo, lo + 1),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Le, Span::new(lo, lo + 2)));
                    i += 2;
                } else {
                    out.push((Token::Lt, Span::new(lo, lo + 1)));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Ge, Span::new(lo, lo + 2)));
                    i += 2;
                } else {
                    out.push((Token::Gt, Span::new(lo, lo + 1)));
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal `{text}` overflows i64"),
                    span: Span::new(lo, i as u32),
                })?;
                out.push((Token::Int(value), Span::new(lo, i as u32)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &source[start..i];
                let span = Span::new(lo, i as u32);
                let tok = match text {
                    "pred" => Token::KwPred,
                    "exists" => Token::KwExists,
                    "emp" => Token::KwEmp,
                    "nil" | "null" => Token::KwNil,
                    "int" => Token::KwInt,
                    _ => Token::Ident(Symbol::intern(text)),
                };
                out.push((tok, span));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    span: Span::new(lo, lo + 1),
                });
            }
        }
    }
    out.push((
        Token::Eof,
        Span::new(bytes.len() as u32, bytes.len() as u32),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_predicate_header() {
        let toks = lex("pred dll(hd: Node*) :=").unwrap();
        let kinds: Vec<Token> = toks.into_iter().map(|(t, _)| t).collect();
        assert_eq!(
            kinds,
            vec![
                Token::KwPred,
                Token::Ident(Symbol::intern("dll")),
                Token::LParen,
                Token::Ident(Symbol::intern("hd")),
                Token::Colon,
                Token::Ident(Symbol::intern("Node")),
                Token::Star,
                Token::RParen,
                Token::ColonEq,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_operators() {
        let toks = lex("== != <= < -> :=").unwrap();
        let kinds: Vec<Token> = toks.into_iter().map(|(t, _)| t).collect();
        assert_eq!(
            kinds,
            vec![
                Token::EqEq,
                Token::BangEq,
                Token::Le,
                Token::Lt,
                Token::Arrow,
                Token::ColonEq,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_comment() {
        let toks = lex("emp // trailing words == *\n nil").unwrap();
        assert_eq!(toks.len(), 3); // emp, nil, eof
    }

    #[test]
    fn lex_rejects_single_eq() {
        assert!(lex("x = y").is_err());
    }

    #[test]
    fn lex_null_alias() {
        let toks = lex("null").unwrap();
        assert_eq!(toks[0].0, Token::KwNil);
    }

    #[test]
    fn lex_int_overflow() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].1, Span::new(0, 2));
        assert_eq!(toks[1].1, Span::new(3, 5));
    }
}
