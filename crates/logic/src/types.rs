//! Structure (record) types shared by the logic, the checker, and MiniC.
//!
//! A heap cell is an instance of a [`StructDef`]: a named record whose
//! fields are integers or pointers to (possibly the same) structures. A
//! [`TypeEnv`] is the registry the parser, well-formedness checker, model
//! checker, and interpreter all consult.

use std::collections::BTreeMap;
use std::fmt;

use crate::symbol::Symbol;

/// The type of a structure field or predicate parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldTy {
    /// A machine integer.
    Int,
    /// A pointer to a structure with the given name.
    Ptr(Symbol),
}

impl FieldTy {
    /// True if `self` may be used where `other` is expected.
    ///
    /// Structure types are invariant, so subtyping is equality; the method
    /// exists to mirror the `type(ki) <: type(ti)` check of Algorithm 2
    /// line 8 and to leave room for widening later.
    pub fn is_subtype_of(self, other: FieldTy) -> bool {
        self == other
    }

    /// True for pointer types.
    pub fn is_ptr(self) -> bool {
        matches!(self, FieldTy::Ptr(_))
    }
}

impl fmt::Display for FieldTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldTy::Int => f.write_str("int"),
            FieldTy::Ptr(s) => write!(f, "{s}*"),
        }
    }
}

/// One declared field of a structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name.
    pub name: Symbol,
    /// Field type.
    pub ty: FieldTy,
}

/// A named record type, e.g. `struct Node { next: Node*, prev: Node* }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Structure name `τ`.
    pub name: Symbol,
    /// Fields in declaration order.
    pub fields: Vec<FieldDef>,
}

impl StructDef {
    /// Index of the field named `name`, if any.
    pub fn field_index(&self, name: Symbol) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The declared type of the field named `name`, if any.
    pub fn field_ty(&self, name: Symbol) -> Option<FieldTy> {
        self.fields.iter().find(|f| f.name == name).map(|f| f.ty)
    }

    /// Indices of the pointer-typed fields (used by heap traversal).
    pub fn ptr_field_indices(&self) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.ty.is_ptr())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Error produced when registering a malformed or duplicate structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeEnvError {
    /// A structure with this name already exists.
    DuplicateStruct(Symbol),
    /// Two fields share a name.
    DuplicateField {
        /// The structure containing the clash.
        strukt: Symbol,
        /// The repeated field name.
        field: Symbol,
    },
}

impl fmt::Display for TypeEnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeEnvError::DuplicateStruct(s) => write!(f, "duplicate struct `{s}`"),
            TypeEnvError::DuplicateField { strukt, field } => {
                write!(f, "duplicate field `{field}` in struct `{strukt}`")
            }
        }
    }
}

impl std::error::Error for TypeEnvError {}

/// A registry of structure definitions.
///
/// # Examples
///
/// ```
/// use sling_logic::{FieldDef, FieldTy, StructDef, Symbol, TypeEnv};
///
/// let mut env = TypeEnv::new();
/// let node = Symbol::intern("Node");
/// env.define(StructDef {
///     name: node,
///     fields: vec![FieldDef { name: Symbol::intern("next"), ty: FieldTy::Ptr(node) }],
/// })?;
/// assert!(env.get(node).is_some());
/// # Ok::<(), sling_logic::TypeEnvError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeEnv {
    structs: BTreeMap<Symbol, StructDef>,
}

impl TypeEnv {
    /// An empty environment.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Registers a structure definition.
    ///
    /// # Errors
    ///
    /// Returns an error if a structure with the same name exists or the
    /// definition repeats a field name.
    pub fn define(&mut self, def: StructDef) -> Result<(), TypeEnvError> {
        let mut seen = std::collections::BTreeSet::new();
        for f in &def.fields {
            if !seen.insert(f.name) {
                return Err(TypeEnvError::DuplicateField {
                    strukt: def.name,
                    field: f.name,
                });
            }
        }
        if self.structs.contains_key(&def.name) {
            return Err(TypeEnvError::DuplicateStruct(def.name));
        }
        self.structs.insert(def.name, def);
        Ok(())
    }

    /// Looks up a structure by name.
    pub fn get(&self, name: Symbol) -> Option<&StructDef> {
        self.structs.get(&name)
    }

    /// Iterates over all definitions in name order.
    pub fn iter(&self) -> impl Iterator<Item = &StructDef> {
        self.structs.values()
    }

    /// Number of registered structures.
    pub fn len(&self) -> usize {
        self.structs.len()
    }

    /// True if no structures are registered.
    pub fn is_empty(&self) -> bool {
        self.structs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_def() -> StructDef {
        let node = Symbol::intern("Node");
        StructDef {
            name: node,
            fields: vec![
                FieldDef {
                    name: Symbol::intern("next"),
                    ty: FieldTy::Ptr(node),
                },
                FieldDef {
                    name: Symbol::intern("data"),
                    ty: FieldTy::Int,
                },
            ],
        }
    }

    #[test]
    fn define_and_lookup() {
        let mut env = TypeEnv::new();
        env.define(node_def()).unwrap();
        let def = env.get(Symbol::intern("Node")).unwrap();
        assert_eq!(def.fields.len(), 2);
        assert_eq!(def.field_index(Symbol::intern("data")), Some(1));
        assert_eq!(
            def.field_ty(Symbol::intern("next")),
            Some(FieldTy::Ptr(Symbol::intern("Node")))
        );
    }

    #[test]
    fn duplicate_struct_rejected() {
        let mut env = TypeEnv::new();
        env.define(node_def()).unwrap();
        assert_eq!(
            env.define(node_def()),
            Err(TypeEnvError::DuplicateStruct(Symbol::intern("Node")))
        );
    }

    #[test]
    fn duplicate_field_rejected() {
        let mut env = TypeEnv::new();
        let s = Symbol::intern("Bad");
        let f = Symbol::intern("f");
        let def = StructDef {
            name: s,
            fields: vec![
                FieldDef {
                    name: f,
                    ty: FieldTy::Int,
                },
                FieldDef {
                    name: f,
                    ty: FieldTy::Int,
                },
            ],
        };
        assert!(env.define(def).is_err());
    }

    #[test]
    fn ptr_field_indices() {
        let def = node_def();
        assert_eq!(def.ptr_field_indices(), vec![0]);
    }

    #[test]
    fn subtyping_is_equality() {
        let n = FieldTy::Ptr(Symbol::intern("Node"));
        let m = FieldTy::Ptr(Symbol::intern("Tree"));
        assert!(n.is_subtype_of(n));
        assert!(!n.is_subtype_of(m));
        assert!(!FieldTy::Int.is_subtype_of(n));
    }
}
