//! Substitution and alpha-renaming over SL formulae.

use std::collections::BTreeMap;

use crate::ast::{Expr, FieldAssign, PureAtom, SpatialAtom, SymHeap};
use crate::symbol::{FreshVars, Symbol};

/// A finite map from variables to expressions.
pub type Subst = BTreeMap<Symbol, Expr>;

/// Applies `map` to an expression.
pub fn subst_expr(e: &Expr, map: &Subst) -> Expr {
    match e {
        Expr::Nil | Expr::Int(_) => e.clone(),
        Expr::Var(v) => map.get(v).cloned().unwrap_or_else(|| e.clone()),
        Expr::Neg(inner) => Expr::Neg(Box::new(subst_expr(inner, map))),
        Expr::Add(a, b) => Expr::Add(Box::new(subst_expr(a, map)), Box::new(subst_expr(b, map))),
        Expr::Sub(a, b) => Expr::Sub(Box::new(subst_expr(a, map)), Box::new(subst_expr(b, map))),
        Expr::Mul(k, inner) => Expr::Mul(*k, Box::new(subst_expr(inner, map))),
    }
}

/// Applies `map` to a pure atom.
pub fn subst_pure(p: &PureAtom, map: &Subst) -> PureAtom {
    match p {
        PureAtom::Eq(a, b) => PureAtom::Eq(subst_expr(a, map), subst_expr(b, map)),
        PureAtom::Neq(a, b) => PureAtom::Neq(subst_expr(a, map), subst_expr(b, map)),
        PureAtom::Lt(a, b) => PureAtom::Lt(subst_expr(a, map), subst_expr(b, map)),
        PureAtom::Le(a, b) => PureAtom::Le(subst_expr(a, map), subst_expr(b, map)),
    }
}

/// Applies `map` to a spatial atom.
pub fn subst_spatial(s: &SpatialAtom, map: &Subst) -> SpatialAtom {
    match s {
        SpatialAtom::PointsTo { root, ty, fields } => SpatialAtom::PointsTo {
            root: subst_expr(root, map),
            ty: *ty,
            fields: fields
                .iter()
                .map(|f| FieldAssign {
                    name: f.name,
                    value: subst_expr(&f.value, map),
                })
                .collect(),
        },
        SpatialAtom::Pred { name, args } => SpatialAtom::Pred {
            name: *name,
            args: args.iter().map(|a| subst_expr(a, map)).collect(),
        },
    }
}

/// Capture-avoiding substitution of free variables in a symbolic heap.
///
/// Bound variables that clash with the range or domain of `map` are renamed
/// first, so free variables of replacement expressions are never captured.
///
/// # Examples
///
/// ```
/// use sling_logic::{parse_formula, subst_symheap, Expr, Subst, Symbol};
///
/// let h = parse_formula("exists u. sll(x, u)").unwrap();
/// let mut map = Subst::new();
/// map.insert(Symbol::intern("x"), Expr::var("u"));
/// let out = subst_symheap(&h, &map);
/// // The binder `u` was renamed: the substituted free `u` is not captured.
/// assert!(out.free_vars().contains(&Symbol::intern("u")));
/// ```
pub fn subst_symheap(h: &SymHeap, map: &Subst) -> SymHeap {
    // Variables that must not be captured: free vars of the range.
    let mut range_vars = std::collections::BTreeSet::new();
    for e in map.values() {
        e.free_vars_into(&mut range_vars);
    }
    let clashing: Vec<Symbol> = h
        .exists
        .iter()
        .copied()
        .filter(|b| range_vars.contains(b) || map.contains_key(b))
        .collect();

    let mut h = h.clone();
    if !clashing.is_empty() {
        let mut fresh = FreshVars::new("r");
        fresh.avoid_all(h.all_vars());
        fresh.avoid_all(range_vars.iter().copied());
        fresh.avoid_all(map.keys().copied());
        let rename: Subst = clashing
            .iter()
            .map(|&v| (v, Expr::Var(fresh.next())))
            .collect();
        h = subst_symheap_bound(&h, &rename);
    }

    // Do not substitute the (now clash-free) binders.
    let filtered: Subst = map
        .iter()
        .filter(|(k, _)| !h.exists.contains(k))
        .map(|(k, v)| (*k, v.clone()))
        .collect();

    SymHeap {
        exists: h.exists.clone(),
        spatial: h
            .spatial
            .iter()
            .map(|s| subst_spatial(s, &filtered))
            .collect(),
        pure: h.pure.iter().map(|p| subst_pure(p, &filtered)).collect(),
    }
}

/// Renames *bound* variables of `h` according to `map` (which must map
/// variables to variables). Used internally for alpha-renaming; exposed for
/// the star operation.
pub fn subst_symheap_bound(h: &SymHeap, map: &Subst) -> SymHeap {
    let exists = h
        .exists
        .iter()
        .map(|v| match map.get(v) {
            Some(Expr::Var(w)) => *w,
            _ => *v,
        })
        .collect();
    SymHeap {
        exists,
        spatial: h.spatial.iter().map(|s| subst_spatial(s, map)).collect(),
        pure: h.pure.iter().map(|p| subst_pure(p, map)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn sub1(from: &str, to: Expr) -> Subst {
        let mut m = Subst::new();
        m.insert(Symbol::intern(from), to);
        m
    }

    #[test]
    fn subst_replaces_free() {
        let h = parse_formula("sll(x, y)").unwrap();
        let out = subst_symheap(&h, &sub1("x", Expr::Nil));
        match &out.spatial[0] {
            SpatialAtom::Pred { args, .. } => {
                assert_eq!(args[0], Expr::Nil);
                assert_eq!(args[1], Expr::var("y"));
            }
            other => panic!("unexpected atom {other:?}"),
        }
    }

    #[test]
    fn subst_skips_bound() {
        let h = parse_formula("exists x. sll(x, y)").unwrap();
        let out = subst_symheap(&h, &sub1("x", Expr::Nil));
        match &out.spatial[0] {
            SpatialAtom::Pred { args, .. } => {
                // Bound x must be untouched (possibly renamed, but not Nil).
                assert!(matches!(args[0], Expr::Var(_)));
            }
            other => panic!("unexpected atom {other:?}"),
        }
    }

    #[test]
    fn subst_in_points_to_fields() {
        let h = parse_formula("x -> Node{next: y, prev: nil}").unwrap();
        let out = subst_symheap(&h, &sub1("y", Expr::var("z")));
        match &out.spatial[0] {
            SpatialAtom::PointsTo { fields, .. } => {
                assert_eq!(fields[0].value, Expr::var("z"));
            }
            other => panic!("unexpected atom {other:?}"),
        }
    }

    #[test]
    fn subst_arith() {
        let e = Expr::Add(Box::new(Expr::var("x")), Box::new(Expr::Int(1)));
        let out = subst_expr(&e, &sub1("x", Expr::Int(41)));
        assert_eq!(
            out,
            Expr::Add(Box::new(Expr::Int(41)), Box::new(Expr::Int(1)))
        );
    }
}
