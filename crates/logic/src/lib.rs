//! Symbolic-heap separation logic for the SLING reproduction.
//!
//! This crate provides the *syntax* side of the system: the AST of the
//! symbolic-heap fragment of separation logic used throughout the paper
//! (Figure 4), a parser and pretty-printer for the concrete notation,
//! inductive heap predicate definitions, structure (record) types, and the
//! supporting machinery (interned symbols, spans, substitution,
//! well-formedness).
//!
//! The semantic side — stack-heap models and the model checker — lives in
//! the `sling-models` and `sling-checker` crates.
//!
//! # Example
//!
//! Parse the paper's doubly-linked-list predicate and one of its inferred
//! invariants:
//!
//! ```
//! use sling_logic::{parse_formula, parse_predicates};
//!
//! let preds = parse_predicates(
//!     "pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
//!          emp & hd == nx & pr == tl
//!        | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx);",
//! )?;
//! assert_eq!(preds[0].arity(), 4);
//!
//! let inv = parse_formula(
//!     "exists u1, u3, u5. dll(x, u1, x, tmp) * dll(tmp, x, u3, y) \
//!      * dll(y, u3, u5, nil) & res == x",
//! )?;
//! assert_eq!(inv.pred_count(), 3);
//! # Ok::<(), sling_logic::ParseError>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod lexer;
mod parser;
mod pred;
mod print;
mod span;
mod subst;
mod symbol;
mod types;
mod wf;

pub use ast::{Expr, FieldAssign, Formula, PureAtom, SpatialAtom, SymHeap};
pub use lexer::{lex, LexError, Token};
pub use parser::{parse_formula, parse_predicates, ParseError};
pub use pred::{PredDef, PredEnv, PredEnvError, PredParam};
pub use span::{Span, Spanned};
pub use subst::{subst_expr, subst_pure, subst_spatial, subst_symheap, subst_symheap_bound, Subst};
pub use symbol::{FreshVars, Symbol};
pub use types::{FieldDef, FieldTy, StructDef, TypeEnv, TypeEnvError};
pub use wf::{check_pred_def, check_pred_env, check_symheap, normalize_points_to, WfError};
