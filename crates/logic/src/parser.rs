//! Recursive-descent parser for SL formulae and predicate definitions.
//!
//! Grammar (see the paper, Figure 4, plus a concrete `pred` declaration
//! form):
//!
//! ```text
//! preds    := pred_def*
//! pred_def := "pred" IDENT "(" (param ("," param)*)? ")" ":=" formula ("|" formula)* ";"
//! param    := IDENT ":" ("int" | IDENT "*"? )
//! formula  := ("exists" IDENT ("," IDENT)* ".")? term (("*" | "&") term)*
//! term     := "emp"
//!           | IDENT "(" (expr ("," expr)*)? ")"              // predicate
//!           | expr "->" IDENT "{" field ("," field)* "}"     // points-to
//!           | expr cmp expr                                  // pure atom
//! field    := IDENT ":" expr
//! cmp      := "==" | "!=" | "<" | "<=" | ">" | ">="
//! expr     := add ; multiplication only inside parentheses: "(" INT "*" expr ")"
//! ```
//!
//! `*` separates spatial atoms, `&` introduces pure atoms; pure atoms must
//! follow the spatial ones (the symbolic-heap normal form `Σ ∧ Π`).

use std::fmt;

use crate::ast::{Expr, FieldAssign, PureAtom, SpatialAtom, SymHeap};
use crate::lexer::{lex, LexError, Token};
use crate::pred::{PredDef, PredParam};
use crate::span::Span;
use crate::symbol::Symbol;
use crate::types::FieldTy;

/// A parse error with location information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses a single symbolic-heap formula.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing tokens.
///
/// # Examples
///
/// ```
/// use sling_logic::parse_formula;
///
/// let f = parse_formula("exists u. dll(x, nil, u, y) & x != nil")?;
/// assert_eq!(f.pred_count(), 1);
/// # Ok::<(), sling_logic::ParseError>(())
/// ```
pub fn parse_formula(source: &str) -> Result<SymHeap, ParseError> {
    let mut p = Parser::new(source)?;
    let f = p.formula()?;
    p.expect(Token::Eof)?;
    Ok(f)
}

/// Parses zero or more `pred` definitions.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_predicates(source: &str) -> Result<Vec<PredDef>, ParseError> {
    let mut p = Parser::new(source)?;
    let mut defs = Vec::new();
    while p.peek() != Token::Eof {
        defs.push(p.pred_def()?);
    }
    Ok(defs)
}

struct Parser {
    tokens: Vec<(Token, Span)>,
    pos: usize,
}

impl Parser {
    fn new(source: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: lex(source)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Token {
        self.tokens[self.pos].0
    }

    fn peek2(&self) -> Token {
        self.tokens
            .get(self.pos + 1)
            .map(|t| t.0)
            .unwrap_or(Token::Eof)
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].1
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Token) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            span: self.span(),
        }
    }

    fn ident(&mut self) -> Result<Symbol, ParseError> {
        match self.peek() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    // pred IDENT ( params ) := case (| case)* ;
    fn pred_def(&mut self) -> Result<PredDef, ParseError> {
        self.expect(Token::KwPred)?;
        let name = self.ident()?;
        self.expect(Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Token::RParen {
            loop {
                let pname = self.ident()?;
                self.expect(Token::Colon)?;
                let ty = self.param_ty()?;
                params.push(PredParam { name: pname, ty });
                if self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Token::RParen)?;
        self.expect(Token::ColonEq)?;
        let mut cases = vec![self.formula()?];
        while self.peek() == Token::Pipe {
            self.bump();
            cases.push(self.formula()?);
        }
        self.expect(Token::Semi)?;
        Ok(PredDef {
            name,
            params,
            cases,
        })
    }

    fn param_ty(&mut self) -> Result<FieldTy, ParseError> {
        match self.peek() {
            Token::KwInt => {
                self.bump();
                Ok(FieldTy::Int)
            }
            Token::Ident(s) => {
                self.bump();
                if self.peek() == Token::Star {
                    self.bump();
                }
                Ok(FieldTy::Ptr(s))
            }
            other => Err(self.error(format!("expected a type, found {other}"))),
        }
    }

    // ("exists" idents ".")? term (("*"|"&") term)*
    fn formula(&mut self) -> Result<SymHeap, ParseError> {
        let mut exists = Vec::new();
        if self.peek() == Token::KwExists {
            self.bump();
            loop {
                exists.push(self.ident()?);
                if self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Token::Dot)?;
        }

        let mut spatial = Vec::new();
        let mut pure = Vec::new();
        let mut in_pure = false;

        loop {
            match self.term()? {
                Term::Emp => {}
                Term::Spatial(atom) => {
                    if in_pure {
                        return Err(self.error(
                            "spatial atom after `&`; write `Σ & Π` with all spatial atoms first"
                                .into(),
                        ));
                    }
                    spatial.push(atom);
                }
                Term::Pure(atom) => {
                    pure.push(atom);
                    in_pure = true;
                }
            }
            match self.peek() {
                Token::Star => {
                    if in_pure {
                        return Err(self.error("`*` after a pure atom".into()));
                    }
                    self.bump();
                }
                Token::Amp => {
                    self.bump();
                    in_pure = true;
                }
                _ => break,
            }
        }

        Ok(SymHeap {
            exists,
            spatial,
            pure,
        })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        if self.peek() == Token::KwEmp {
            self.bump();
            return Ok(Term::Emp);
        }
        // Predicate application: IDENT "("
        if let (Token::Ident(name), Token::LParen) = (self.peek(), self.peek2()) {
            self.bump();
            self.bump();
            let mut args = Vec::new();
            if self.peek() != Token::RParen {
                loop {
                    args.push(self.expr(false)?);
                    if self.peek() == Token::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Token::RParen)?;
            return Ok(Term::Spatial(SpatialAtom::Pred { name, args }));
        }
        // Otherwise: expr, then `->` (points-to) or comparison (pure).
        let lhs = self.expr(false)?;
        match self.peek() {
            Token::Arrow => {
                self.bump();
                let ty = self.ident()?;
                self.expect(Token::LBrace)?;
                let mut fields = Vec::new();
                if self.peek() != Token::RBrace {
                    loop {
                        let fname = self.ident()?;
                        self.expect(Token::Colon)?;
                        let value = self.expr(false)?;
                        fields.push(FieldAssign { name: fname, value });
                        if self.peek() == Token::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Token::RBrace)?;
                Ok(Term::Spatial(SpatialAtom::PointsTo {
                    root: lhs,
                    ty,
                    fields,
                }))
            }
            Token::EqEq => {
                self.bump();
                let rhs = self.expr(false)?;
                Ok(Term::Pure(PureAtom::Eq(lhs, rhs)))
            }
            Token::BangEq => {
                self.bump();
                let rhs = self.expr(false)?;
                Ok(Term::Pure(PureAtom::Neq(lhs, rhs)))
            }
            Token::Lt => {
                self.bump();
                let rhs = self.expr(false)?;
                Ok(Term::Pure(PureAtom::Lt(lhs, rhs)))
            }
            Token::Le => {
                self.bump();
                let rhs = self.expr(false)?;
                Ok(Term::Pure(PureAtom::Le(lhs, rhs)))
            }
            Token::Gt => {
                self.bump();
                let rhs = self.expr(false)?;
                Ok(Term::Pure(PureAtom::Lt(rhs, lhs)))
            }
            Token::Ge => {
                self.bump();
                let rhs = self.expr(false)?;
                Ok(Term::Pure(PureAtom::Le(rhs, lhs)))
            }
            other => Err(self.error(format!(
                "expected `->` or a comparison after expression, found {other}"
            ))),
        }
    }

    // Additive expression. `allow_mul` is true only inside parentheses,
    // where `*` is multiplication rather than separating conjunction.
    fn expr(&mut self, allow_mul: bool) -> Result<Expr, ParseError> {
        let mut lhs = self.unary(allow_mul)?;
        loop {
            match self.peek() {
                Token::Plus => {
                    self.bump();
                    let rhs = self.unary(allow_mul)?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Token::Minus => {
                    self.bump();
                    let rhs = self.unary(allow_mul)?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn unary(&mut self, allow_mul: bool) -> Result<Expr, ParseError> {
        if self.peek() == Token::Minus {
            self.bump();
            let inner = self.unary(allow_mul)?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.primary(allow_mul)
    }

    fn primary(&mut self, allow_mul: bool) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::KwNil => {
                self.bump();
                Ok(Expr::Nil)
            }
            Token::Ident(s) => {
                self.bump();
                Ok(Expr::Var(s))
            }
            Token::Int(k) => {
                self.bump();
                // `k * e` multiplication, only where unambiguous.
                if allow_mul && self.peek() == Token::Star {
                    self.bump();
                    let rhs = self.unary(allow_mul)?;
                    return Ok(Expr::Mul(k, Box::new(rhs)));
                }
                Ok(Expr::Int(k))
            }
            Token::LParen => {
                self.bump();
                let inner = self.expr(true)?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

enum Term {
    Emp,
    Spatial(SpatialAtom),
    Pure(PureAtom),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_dll_predicate() {
        let defs = parse_predicates(
            r#"
            pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
                emp & hd == nx & pr == tl
              | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx)
            ;
            "#,
        )
        .unwrap();
        assert_eq!(defs.len(), 1);
        let dll = &defs[0];
        assert_eq!(dll.name, Symbol::intern("dll"));
        assert_eq!(dll.arity(), 4);
        assert_eq!(dll.cases.len(), 2);
        assert!(dll.cases[0].spatial.is_empty());
        assert_eq!(dll.cases[0].pure.len(), 2);
        assert_eq!(dll.cases[1].exists, vec![Symbol::intern("u")]);
        assert_eq!(dll.cases[1].spatial.len(), 2);
    }

    #[test]
    fn parse_two_predicates() {
        let defs = parse_predicates(
            r#"
            pred sll(x: Node*) := emp & x == nil
                | exists u. x -> Node{next: u} * sll(u);
            pred lseg(x: Node*, y: Node*) := emp & x == y
                | exists u. x -> Node{next: u} * lseg(u, y);
            "#,
        )
        .unwrap();
        assert_eq!(defs.len(), 2);
    }

    #[test]
    fn parse_pure_only() {
        let f = parse_formula("x == nil & y != z").unwrap();
        assert!(f.spatial.is_empty());
        assert_eq!(f.pure.len(), 2);
    }

    #[test]
    fn parse_points_to_roots_nil_rejected_syntactically_ok() {
        // `nil -> ...` is syntactically valid (semantically unsatisfiable).
        let f = parse_formula("nil -> Node{next: nil}").unwrap();
        assert_eq!(f.spatial.len(), 1);
    }

    #[test]
    fn parse_int_param_predicate() {
        let defs = parse_predicates(
            "pred sorted(x: Node*, min: int) := emp & x == nil | exists u, v. x -> Node{next: u, data: v} * sorted(u, v) & min <= v;",
        )
        .unwrap();
        assert_eq!(defs[0].params[1].ty, FieldTy::Int);
    }

    #[test]
    fn reject_spatial_after_pure() {
        assert!(parse_formula("x == nil & sll(y)").is_err());
    }

    #[test]
    fn reject_star_after_pure() {
        assert!(parse_formula("x == nil * sll(y)").is_err());
    }

    #[test]
    fn reject_trailing_tokens() {
        assert!(parse_formula("emp emp").is_err());
    }

    #[test]
    fn mul_requires_parens() {
        let f = parse_formula("emp & x == (3 * y)").unwrap();
        assert_eq!(f.pure.len(), 1);
        // Without parens `*` is a separator and fails after a pure atom.
        assert!(parse_formula("emp & x == 3 * y").is_err());
    }

    #[test]
    fn gt_normalizes_to_lt() {
        let f = parse_formula("emp & x > y").unwrap();
        assert_eq!(f.pure[0], PureAtom::Lt(Expr::var("y"), Expr::var("x")));
    }

    #[test]
    fn exists_list() {
        let f = parse_formula("exists a, b, c. emp & a == b & b == c").unwrap();
        assert_eq!(f.exists.len(), 3);
    }

    #[test]
    fn error_mentions_expectation() {
        let err = parse_formula("exists . emp").unwrap_err();
        assert!(err.message.contains("identifier"), "{}", err.message);
    }
}
