//! Abstract syntax of symbolic-heap separation logic (paper, Figure 4).
//!
//! The fragment is the standard *symbolic heap* form: an SL formula is an
//! existentially quantified conjunction of a spatial part (a `∗`-composition
//! of `emp`, points-to, and inductive-predicate atoms) and a pure part (a
//! conjunction of (dis)equalities and linear-arithmetic comparisons). The
//! normalized representation is [`SymHeap`]; disjunction appears only at the
//! top level of predicate definitions and inferred invariants ([`Formula`]).

use std::collections::BTreeSet;
use std::fmt;

use crate::symbol::Symbol;

/// An expression: spatial (`nil`, pointer variable) or integer
/// (`k`, `x`, `-e`, `e+e`, `e-e`, `k·e`).
///
/// The grammar of Figure 4 separates spatial expressions `a ::= nil | x`
/// from integer expressions `e`; we unify them in one type and recover the
/// distinction during well-formedness checking, which keeps the parser,
/// substitution, and the checker uniform.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// The null address constant `nil`.
    Nil,
    /// A (stack or existential) variable.
    Var(Symbol),
    /// An integer literal.
    Int(i64),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Sum `e1 + e2`.
    Add(Box<Expr>, Box<Expr>),
    /// Difference `e1 - e2`.
    Sub(Box<Expr>, Box<Expr>),
    /// Scalar multiple `k · e`.
    Mul(i64, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a variable expression.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Symbol::intern(name))
    }

    /// Returns the variable symbol if `self` is a plain variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Expr::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Collects the free variables of the expression into `out`.
    pub fn free_vars_into(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Expr::Nil | Expr::Int(_) => {}
            Expr::Var(v) => {
                out.insert(*v);
            }
            Expr::Neg(e) | Expr::Mul(_, e) => e.free_vars_into(out),
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                a.free_vars_into(out);
                b.free_vars_into(out);
            }
        }
    }

    /// The free variables of the expression.
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.free_vars_into(&mut out);
        out
    }
}

/// A pure atom: an address or arithmetic comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PureAtom {
    /// `e1 = e2` (addresses or integers).
    Eq(Expr, Expr),
    /// `e1 ≠ e2`.
    Neq(Expr, Expr),
    /// `e1 < e2` (integers).
    Lt(Expr, Expr),
    /// `e1 ≤ e2` (integers).
    Le(Expr, Expr),
}

impl PureAtom {
    /// Collects free variables into `out`.
    pub fn free_vars_into(&self, out: &mut BTreeSet<Symbol>) {
        let (a, b) = self.operands();
        a.free_vars_into(out);
        b.free_vars_into(out);
    }

    /// The two operands of the comparison.
    pub fn operands(&self) -> (&Expr, &Expr) {
        match self {
            PureAtom::Eq(a, b) | PureAtom::Neq(a, b) | PureAtom::Lt(a, b) | PureAtom::Le(a, b) => {
                (a, b)
            }
        }
    }
}

/// One named field of a points-to atom, e.g. `next: u`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldAssign {
    /// Field name as declared in the structure definition.
    pub name: Symbol,
    /// Value stored in the field.
    pub value: Expr,
}

/// A spatial atom: a points-to (singleton heap) or inductive predicate.
///
/// `emp` is represented by the *absence* of atoms in a [`SymHeap`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpatialAtom {
    /// `root ↦τ {f1: e1, ..., fn: en}` — a single allocated cell of
    /// structure type `ty` at address `root`.
    PointsTo {
        /// Address expression (a variable or `nil`, though `nil` never
        /// checks successfully).
        root: Expr,
        /// Structure type name `τ`.
        ty: Symbol,
        /// Named field values. Well-formedness requires exactly the fields
        /// of `ty`, in declaration order.
        fields: Vec<FieldAssign>,
    },
    /// `p(t1, ..., tn)` — an instance of an inductive heap predicate.
    Pred {
        /// Predicate name.
        name: Symbol,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl SpatialAtom {
    /// Collects free variables into `out`.
    pub fn free_vars_into(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            SpatialAtom::PointsTo { root, fields, .. } => {
                root.free_vars_into(out);
                for f in fields {
                    f.value.free_vars_into(out);
                }
            }
            SpatialAtom::Pred { args, .. } => {
                for a in args {
                    a.free_vars_into(out);
                }
            }
        }
    }
}

/// A symbolic heap `∃ x⃗. Σ ∧ Π`.
///
/// * `exists` — the existentially bound variables `x⃗`;
/// * `spatial` — the `∗`-separated spatial atoms `Σ` (empty means `emp`);
/// * `pure` — the conjunction of pure atoms `Π` (empty means `true`).
///
/// # Examples
///
/// ```
/// use sling_logic::{parse_formula, SymHeap};
///
/// let f: SymHeap = parse_formula("exists u. x -> Node{next: u} * sll(u) & x != nil").unwrap();
/// assert_eq!(f.exists.len(), 1);
/// assert_eq!(f.spatial.len(), 2);
/// assert_eq!(f.pure.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SymHeap {
    /// Existentially quantified variables.
    pub exists: Vec<Symbol>,
    /// Spatial atoms joined by the separating conjunction.
    pub spatial: Vec<SpatialAtom>,
    /// Pure atoms joined by classical conjunction.
    pub pure: Vec<PureAtom>,
}

impl SymHeap {
    /// The empty-heap formula `emp`.
    pub fn emp() -> SymHeap {
        SymHeap::default()
    }

    /// True if this formula is exactly `emp` (no atoms, no pure part).
    pub fn is_emp(&self) -> bool {
        self.spatial.is_empty() && self.pure.is_empty() && self.exists.is_empty()
    }

    /// Free variables (variables used and not bound by `exists`).
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut all = BTreeSet::new();
        for s in &self.spatial {
            s.free_vars_into(&mut all);
        }
        for p in &self.pure {
            p.free_vars_into(&mut all);
        }
        for e in &self.exists {
            all.remove(e);
        }
        all
    }

    /// All variables mentioned, bound or free.
    pub fn all_vars(&self) -> BTreeSet<Symbol> {
        let mut all = BTreeSet::new();
        for s in &self.spatial {
            s.free_vars_into(&mut all);
        }
        for p in &self.pure {
            p.free_vars_into(&mut all);
        }
        all.extend(self.exists.iter().copied());
        all
    }

    /// Separating conjunction of two symbolic heaps.
    ///
    /// Bound variables of `other` are renamed if they collide with any
    /// variable of `self` (and vice versa existing binders are kept), so the
    /// result is capture-free.
    pub fn star(mut self, other: SymHeap) -> SymHeap {
        let mut other = other;
        // Rename other's binders away from everything visible in self.
        let clash: Vec<Symbol> = other
            .exists
            .iter()
            .copied()
            .filter(|v| self.all_vars().contains(v))
            .collect();
        if !clash.is_empty() {
            let mut fresh = crate::symbol::FreshVars::new("r");
            fresh.avoid_all(self.all_vars());
            fresh.avoid_all(other.all_vars());
            let map: crate::subst::Subst = clash
                .iter()
                .map(|&v| (v, Expr::Var(fresh.next())))
                .collect();
            other = crate::subst::subst_symheap_bound(&other, &map);
        }
        self.exists.extend(other.exists);
        self.spatial.extend(other.spatial);
        self.pure.extend(other.pure);
        self
    }

    /// Number of points-to atoms (the paper's "Single" statistic).
    pub fn singleton_count(&self) -> usize {
        self.spatial
            .iter()
            .filter(|a| matches!(a, SpatialAtom::PointsTo { .. }))
            .count()
    }

    /// Number of inductive-predicate atoms (the paper's "Pred" statistic).
    pub fn pred_count(&self) -> usize {
        self.spatial
            .iter()
            .filter(|a| matches!(a, SpatialAtom::Pred { .. }))
            .count()
    }

    /// Number of pure atoms (the paper's "Pure" statistic).
    pub fn pure_count(&self) -> usize {
        self.pure.len()
    }
}

/// A top-level formula: a disjunction of symbolic heaps.
///
/// Predicate definitions and complete postconditions (e.g. `F'_L2 ∨ F'_L3`
/// for `concat` in §2.3) are disjunctive; everything inside the inference
/// loop works on a single [`SymHeap`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Formula {
    /// The disjuncts.
    pub disjuncts: Vec<SymHeap>,
}

impl Formula {
    /// A formula with a single disjunct.
    pub fn single(heap: SymHeap) -> Formula {
        Formula {
            disjuncts: vec![heap],
        }
    }

    /// Free variables across all disjuncts.
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for d in &self.disjuncts {
            out.extend(d.free_vars());
        }
        out
    }
}

impl From<SymHeap> for Formula {
    fn from(h: SymHeap) -> Formula {
        Formula::single(h)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return f.write_str("false");
        }
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str(" \\/ ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Expr {
        Expr::var(s)
    }

    #[test]
    fn free_vars_of_expr() {
        let e = Expr::Add(Box::new(v("x")), Box::new(Expr::Mul(3, Box::new(v("y")))));
        let fv = e.free_vars();
        assert!(fv.contains(&Symbol::intern("x")));
        assert!(fv.contains(&Symbol::intern("y")));
        assert_eq!(fv.len(), 2);
    }

    #[test]
    fn exists_binds() {
        let h = SymHeap {
            exists: vec![Symbol::intern("u")],
            spatial: vec![SpatialAtom::Pred {
                name: Symbol::intern("sll"),
                args: vec![v("x"), v("u")],
            }],
            pure: vec![],
        };
        let fv = h.free_vars();
        assert!(fv.contains(&Symbol::intern("x")));
        assert!(!fv.contains(&Symbol::intern("u")));
    }

    #[test]
    fn star_is_capture_free() {
        let u = Symbol::intern("u");
        let left = SymHeap {
            exists: vec![],
            spatial: vec![SpatialAtom::Pred {
                name: Symbol::intern("p"),
                args: vec![Expr::Var(u)],
            }],
            pure: vec![],
        };
        let right = SymHeap {
            exists: vec![u],
            spatial: vec![SpatialAtom::Pred {
                name: Symbol::intern("q"),
                args: vec![Expr::Var(u)],
            }],
            pure: vec![],
        };
        let joined = left.star(right);
        // The free `u` of the left must not be captured: the right binder
        // must have been renamed.
        assert_eq!(joined.exists.len(), 1);
        assert_ne!(joined.exists[0], u);
        assert!(joined.free_vars().contains(&u));
    }

    #[test]
    fn counts() {
        let h = SymHeap {
            exists: vec![],
            spatial: vec![
                SpatialAtom::PointsTo {
                    root: v("x"),
                    ty: Symbol::intern("Node"),
                    fields: vec![FieldAssign {
                        name: Symbol::intern("next"),
                        value: Expr::Nil,
                    }],
                },
                SpatialAtom::Pred {
                    name: Symbol::intern("sll"),
                    args: vec![v("y")],
                },
            ],
            pure: vec![PureAtom::Eq(v("x"), v("y"))],
        };
        assert_eq!(h.singleton_count(), 1);
        assert_eq!(h.pred_count(), 1);
        assert_eq!(h.pure_count(), 1);
    }

    #[test]
    fn emp_is_emp() {
        assert!(SymHeap::emp().is_emp());
    }
}
