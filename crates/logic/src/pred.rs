//! Inductive heap predicate definitions.
//!
//! A predicate such as the paper's doubly linked list
//!
//! ```text
//! dll(hd, pr, tl, nx) := emp & hd == nx & pr == tl
//!                      | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx)
//! ```
//!
//! is a [`PredDef`]: named parameters with declared types and a disjunction
//! of symbolic-heap cases. A [`PredEnv`] is the set `P` given to SLING.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{Expr, SymHeap};
use crate::subst::{subst_symheap, Subst};
use crate::symbol::Symbol;
use crate::types::FieldTy;

/// One formal parameter of an inductive predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredParam {
    /// Parameter name, e.g. `hd`.
    pub name: Symbol,
    /// Declared type, e.g. `Node*`.
    pub ty: FieldTy,
}

/// An inductive heap predicate definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredDef {
    /// Predicate name, e.g. `dll`.
    pub name: Symbol,
    /// Formal parameters in order.
    pub params: Vec<PredParam>,
    /// Definition cases (disjuncts). The base case(s) typically constrain
    /// the heap to `emp`; inductive case(s) contain at least one points-to.
    pub cases: Vec<SymHeap>,
}

impl PredDef {
    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Instantiates the definition's cases with actual arguments.
    ///
    /// Returns each case with formals replaced by `args` (capture-avoiding).
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.arity()`; the caller (the model
    /// checker) always constructs arity-correct applications.
    pub fn unfold(&self, args: &[Expr]) -> Vec<SymHeap> {
        assert_eq!(
            args.len(),
            self.arity(),
            "arity mismatch unfolding `{}`",
            self.name
        );
        let map: Subst = self
            .params
            .iter()
            .zip(args)
            .map(|(p, a)| (p.name, a.clone()))
            .collect();
        self.cases.iter().map(|c| subst_symheap(c, &map)).collect()
    }

    /// True if some parameter has pointer type `ty`.
    ///
    /// SLING filters the predicate set to those matching the root pointer's
    /// type (§4.2 "For optimization, we filter...").
    pub fn mentions_ptr_type(&self, ty: Symbol) -> bool {
        self.params.iter().any(|p| p.ty == FieldTy::Ptr(ty))
    }

    /// Total number of points-to atoms across all cases (complexity stat).
    pub fn singleton_atoms(&self) -> usize {
        self.cases.iter().map(|c| c.singleton_count()).sum()
    }

    /// Total number of predicate atoms across all cases (complexity stat).
    pub fn inductive_atoms(&self) -> usize {
        self.cases.iter().map(|c| c.pred_count()).sum()
    }
}

impl fmt::Display for PredDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pred {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", p.name, p.ty)?;
        }
        f.write_str(") :=\n")?;
        for (i, c) in self.cases.iter().enumerate() {
            writeln!(f, "  {} {}", if i == 0 { " " } else { "|" }, c)?;
        }
        f.write_str(";")
    }
}

/// Error registering a predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredEnvError {
    /// A predicate with this name already exists.
    Duplicate(Symbol),
}

impl fmt::Display for PredEnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredEnvError::Duplicate(s) => write!(f, "duplicate predicate `{s}`"),
        }
    }
}

impl std::error::Error for PredEnvError {}

/// The set `P` of predefined predicates given to SLING.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredEnv {
    defs: BTreeMap<Symbol, PredDef>,
}

impl PredEnv {
    /// An empty environment.
    pub fn new() -> PredEnv {
        PredEnv::default()
    }

    /// Registers a predicate definition.
    ///
    /// # Errors
    ///
    /// Returns [`PredEnvError::Duplicate`] if the name is taken.
    pub fn define(&mut self, def: PredDef) -> Result<(), PredEnvError> {
        if self.defs.contains_key(&def.name) {
            return Err(PredEnvError::Duplicate(def.name));
        }
        self.defs.insert(def.name, def);
        Ok(())
    }

    /// Looks up a predicate by name.
    pub fn get(&self, name: Symbol) -> Option<&PredDef> {
        self.defs.get(&name)
    }

    /// Iterates over definitions in name order.
    pub fn iter(&self) -> impl Iterator<Item = &PredDef> {
        self.defs.values()
    }

    /// Predicates with at least one parameter of pointer type `ty`
    /// (the Algorithm 2 pre-filter).
    pub fn for_root_type(&self, ty: Symbol) -> Vec<&PredDef> {
        self.iter().filter(|d| d.mentions_ptr_type(ty)).collect()
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_predicates;
    use crate::types::FieldTy;

    const DLL: &str = r#"
        pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
            emp & hd == nx & pr == tl
          | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx)
        ;
    "#;

    fn node_env() -> crate::types::TypeEnv {
        let mut env = crate::types::TypeEnv::new();
        let node = Symbol::intern("Node");
        env.define(crate::types::StructDef {
            name: node,
            fields: vec![
                crate::types::FieldDef {
                    name: Symbol::intern("next"),
                    ty: FieldTy::Ptr(node),
                },
                crate::types::FieldDef {
                    name: Symbol::intern("prev"),
                    ty: FieldTy::Ptr(node),
                },
            ],
        })
        .unwrap();
        env
    }

    #[test]
    fn unfold_substitutes_params() {
        let _ = node_env();
        let preds = parse_predicates(DLL).unwrap();
        let dll = &preds[0];
        let args = vec![Expr::var("a"), Expr::Nil, Expr::var("t"), Expr::Nil];
        let cases = dll.unfold(&args);
        assert_eq!(cases.len(), 2);
        // Base case: emp & a == nil & nil == t
        assert!(cases[0].spatial.is_empty());
        assert_eq!(cases[0].pure.len(), 2);
        // Inductive case roots the points-to at `a`.
        match &cases[1].spatial[0] {
            crate::ast::SpatialAtom::PointsTo { root, .. } => assert_eq!(*root, Expr::var("a")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn type_filter() {
        let preds = parse_predicates(DLL).unwrap();
        let mut env = PredEnv::new();
        env.define(preds[0].clone()).unwrap();
        assert_eq!(env.for_root_type(Symbol::intern("Node")).len(), 1);
        assert_eq!(env.for_root_type(Symbol::intern("Tree")).len(), 0);
    }

    #[test]
    fn duplicate_rejected() {
        let preds = parse_predicates(DLL).unwrap();
        let mut env = PredEnv::new();
        env.define(preds[0].clone()).unwrap();
        assert!(env.define(preds[0].clone()).is_err());
    }

    #[test]
    fn complexity_stats() {
        let preds = parse_predicates(DLL).unwrap();
        assert_eq!(preds[0].singleton_atoms(), 1);
        assert_eq!(preds[0].inductive_atoms(), 1);
        assert_eq!(preds[0].arity(), 4);
    }
}
