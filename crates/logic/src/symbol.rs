//! Interned identifiers.
//!
//! Every variable, predicate name, structure name, and field name in the
//! workspace is a [`Symbol`]: a small copyable index into a global string
//! interner. Interning makes identifier comparison and hashing O(1), which
//! matters because the SLING search (Algorithm 2 of the paper) compares
//! candidate argument tuples millions of times on larger benchmarks.
//!
//! # Examples
//!
//! ```
//! use sling_logic::Symbol;
//!
//! let x = Symbol::intern("x");
//! let x2 = Symbol::intern("x");
//! assert_eq!(x, x2);
//! assert_eq!(x.as_str(), "x");
//! ```

use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// `Symbol` is `Copy` and cheap to compare; the underlying text is obtained
/// with [`Symbol::as_str`]. Symbols are ordered by their text (not creation
/// order) so that data structures keyed by `Symbol` iterate
/// deterministically and independently of interning history.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    strings: Vec<&'static str>,
    lookup: std::collections::HashMap<&'static str, u32>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            strings: Vec::new(),
            lookup: std::collections::HashMap::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        // Leaking is fine: the set of distinct identifiers in any run is
        // small (bounded by source text), and `&'static str` lets us hand
        // out `as_str` without a guard.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = self.strings.len() as u32;
        self.strings.push(leaked);
        self.lookup.insert(leaked, id);
        id
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

impl Symbol {
    /// Interns `text` and returns its symbol.
    ///
    /// ```
    /// # use sling_logic::Symbol;
    /// assert_eq!(Symbol::intern("next"), Symbol::intern("next"));
    /// ```
    pub fn intern(text: &str) -> Symbol {
        // Fast path: read lock only.
        if let Some(&id) = interner().read().expect("interner lock").lookup.get(text) {
            return Symbol(id);
        }
        Symbol(interner().write().expect("interner lock").intern(text))
    }

    /// Returns the interned text.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner lock").strings[self.0 as usize]
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Textual order: deterministic regardless of interning order.
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

/// Generates fresh variables (`u1`, `u2`, ...) that avoid a given set.
///
/// SLING introduces fresh existential variables when a predicate has more
/// parameters than chosen boundary variables (Algorithm 2, line 5). The
/// generator never returns a symbol in its avoid set or one it has already
/// produced.
///
/// # Examples
///
/// ```
/// use sling_logic::{FreshVars, Symbol};
///
/// let mut fresh = FreshVars::new("u");
/// fresh.avoid(Symbol::intern("u1"));
/// let a = fresh.next();
/// let b = fresh.next();
/// assert_eq!(a.as_str(), "u2"); // u1 was avoided
/// assert_eq!(b.as_str(), "u3");
/// ```
#[derive(Debug, Clone)]
pub struct FreshVars {
    prefix: String,
    counter: u32,
    avoid: std::collections::HashSet<Symbol>,
}

impl FreshVars {
    /// Creates a generator producing `<prefix>1`, `<prefix>2`, ...
    pub fn new(prefix: &str) -> FreshVars {
        FreshVars {
            prefix: prefix.to_owned(),
            counter: 0,
            avoid: Default::default(),
        }
    }

    /// Adds a symbol the generator must never produce.
    pub fn avoid(&mut self, sym: Symbol) {
        self.avoid.insert(sym);
    }

    /// Adds every symbol in `syms` to the avoid set.
    pub fn avoid_all<I: IntoIterator<Item = Symbol>>(&mut self, syms: I) {
        self.avoid.extend(syms);
    }

    /// Returns the next fresh symbol.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Symbol {
        loop {
            self.counter += 1;
            let sym = Symbol::intern(&format!("{}{}", self.prefix, self.counter));
            if !self.avoid.contains(&sym) {
                self.avoid.insert(sym);
                return sym;
            }
        }
    }

    /// Returns `n` fresh symbols.
    pub fn take(&mut self, n: usize) -> Vec<Symbol> {
        (0..n).map(|_| self.next()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "foo");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("a"), Symbol::intern("b"));
    }

    #[test]
    fn ordering_is_textual() {
        // Intern in reverse order; ordering must still be textual.
        let z = Symbol::intern("zzz_order");
        let a = Symbol::intern("aaa_order");
        assert!(a < z);
    }

    #[test]
    fn fresh_skips_avoided() {
        let mut fresh = FreshVars::new("v");
        fresh.avoid(Symbol::intern("v1"));
        fresh.avoid(Symbol::intern("v2"));
        assert_eq!(fresh.next().as_str(), "v3");
    }

    #[test]
    fn fresh_never_repeats() {
        let mut fresh = FreshVars::new("w");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(fresh.next()));
        }
    }

    #[test]
    fn take_returns_n() {
        let mut fresh = FreshVars::new("t");
        assert_eq!(fresh.take(5).len(), 5);
    }

    #[test]
    fn display_matches_text() {
        assert_eq!(Symbol::intern("hd").to_string(), "hd");
    }
}
