//! Well-formedness checking of formulae and predicate definitions.
//!
//! Checks performed against a [`TypeEnv`] and [`PredEnv`]:
//!
//! * points-to atoms name a known structure and list **exactly** its fields
//!   (any order in the source; callers can normalize with
//!   [`normalize_points_to`]);
//! * predicate applications name a known predicate with matching arity;
//! * predicate definitions are *heap-founded*: every recursive case contains
//!   at least one points-to atom, so unfolding against a finite heap
//!   terminates (this is the condition the model checker relies on).

use std::collections::BTreeSet;
use std::fmt;

use crate::ast::{SpatialAtom, SymHeap};
use crate::pred::{PredDef, PredEnv};
use crate::symbol::Symbol;
use crate::types::TypeEnv;

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WfError {
    /// Points-to names an unknown structure type.
    UnknownStruct(Symbol),
    /// Points-to field set differs from the structure's declaration.
    FieldMismatch {
        /// The structure.
        strukt: Symbol,
        /// Explanation.
        detail: String,
    },
    /// Application of an unknown predicate.
    UnknownPred(Symbol),
    /// Wrong number of arguments.
    ArityMismatch {
        /// The predicate.
        pred: Symbol,
        /// Expected arity.
        expected: usize,
        /// Actual argument count.
        actual: usize,
    },
    /// A recursive case with no points-to atom: unfolding may diverge.
    NotHeapFounded(Symbol),
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfError::UnknownStruct(s) => write!(f, "unknown struct `{s}` in points-to"),
            WfError::FieldMismatch { strukt, detail } => {
                write!(f, "field mismatch for struct `{strukt}`: {detail}")
            }
            WfError::UnknownPred(p) => write!(f, "unknown predicate `{p}`"),
            WfError::ArityMismatch {
                pred,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "predicate `{pred}` expects {expected} arguments, got {actual}"
                )
            }
            WfError::NotHeapFounded(p) => write!(
                f,
                "predicate `{p}` has a recursive case without a points-to atom; \
                 model checking could diverge"
            ),
        }
    }
}

impl std::error::Error for WfError {}

/// Checks a symbolic heap against the environments.
///
/// # Errors
///
/// Returns the first [`WfError`] found.
pub fn check_symheap(h: &SymHeap, types: &TypeEnv, preds: &PredEnv) -> Result<(), WfError> {
    for atom in &h.spatial {
        match atom {
            SpatialAtom::PointsTo { ty, fields, .. } => {
                let def = types.get(*ty).ok_or(WfError::UnknownStruct(*ty))?;
                let declared: BTreeSet<Symbol> = def.fields.iter().map(|f| f.name).collect();
                let given: BTreeSet<Symbol> = fields.iter().map(|f| f.name).collect();
                if given.len() != fields.len() {
                    return Err(WfError::FieldMismatch {
                        strukt: *ty,
                        detail: "a field is assigned twice".into(),
                    });
                }
                if declared != given {
                    let missing: Vec<String> =
                        declared.difference(&given).map(|s| s.to_string()).collect();
                    let extra: Vec<String> =
                        given.difference(&declared).map(|s| s.to_string()).collect();
                    return Err(WfError::FieldMismatch {
                        strukt: *ty,
                        detail: format!(
                            "missing [{}], unknown [{}]",
                            missing.join(", "),
                            extra.join(", ")
                        ),
                    });
                }
            }
            SpatialAtom::Pred { name, args } => {
                let def = preds.get(*name).ok_or(WfError::UnknownPred(*name))?;
                if def.arity() != args.len() {
                    return Err(WfError::ArityMismatch {
                        pred: *name,
                        expected: def.arity(),
                        actual: args.len(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks a predicate definition (all cases well-formed and heap-founded).
///
/// # Errors
///
/// Returns the first [`WfError`] found.
pub fn check_pred_def(def: &PredDef, types: &TypeEnv, preds: &PredEnv) -> Result<(), WfError> {
    for case in &def.cases {
        check_symheap(case, types, preds)?;
        let has_points_to = case
            .spatial
            .iter()
            .any(|a| matches!(a, SpatialAtom::PointsTo { .. }));
        let recursive = case.spatial.iter().any(
            |a| matches!(a, SpatialAtom::Pred { name, .. } if preds.get(*name).is_some() || *name == def.name),
        );
        if recursive && !has_points_to {
            return Err(WfError::NotHeapFounded(def.name));
        }
    }
    Ok(())
}

/// Checks every predicate of `preds` (definitions may be mutually
/// recursive; each must already be registered).
///
/// # Errors
///
/// Returns the first [`WfError`] found.
pub fn check_pred_env(types: &TypeEnv, preds: &PredEnv) -> Result<(), WfError> {
    for def in preds.iter() {
        check_pred_def(def, types, preds)?;
    }
    Ok(())
}

/// Reorders the named fields of every points-to atom into the structure's
/// declaration order. Call after a successful [`check_symheap`].
pub fn normalize_points_to(h: &mut SymHeap, types: &TypeEnv) {
    for atom in &mut h.spatial {
        if let SpatialAtom::PointsTo { ty, fields, .. } = atom {
            if let Some(def) = types.get(*ty) {
                fields.sort_by_key(|f| def.field_index(f.name).unwrap_or(usize::MAX));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_formula, parse_predicates};
    use crate::types::{FieldDef, FieldTy, StructDef};

    fn env() -> (TypeEnv, PredEnv) {
        let mut types = TypeEnv::new();
        let node = Symbol::intern("Node");
        types
            .define(StructDef {
                name: node,
                fields: vec![
                    FieldDef {
                        name: Symbol::intern("next"),
                        ty: FieldTy::Ptr(node),
                    },
                    FieldDef {
                        name: Symbol::intern("prev"),
                        ty: FieldTy::Ptr(node),
                    },
                ],
            })
            .unwrap();
        let mut preds = PredEnv::new();
        for def in parse_predicates(
            "pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
                emp & hd == nx & pr == tl
              | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx);",
        )
        .unwrap()
        {
            preds.define(def).unwrap();
        }
        (types, preds)
    }

    #[test]
    fn accepts_well_formed() {
        let (types, preds) = env();
        let h =
            parse_formula("exists u. x -> Node{next: u, prev: nil} * dll(u, x, y, nil)").unwrap();
        assert_eq!(check_symheap(&h, &types, &preds), Ok(()));
    }

    #[test]
    fn rejects_unknown_struct() {
        let (types, preds) = env();
        let h = parse_formula("x -> Ghost{f: nil}").unwrap();
        assert!(matches!(
            check_symheap(&h, &types, &preds),
            Err(WfError::UnknownStruct(_))
        ));
    }

    #[test]
    fn rejects_missing_field() {
        let (types, preds) = env();
        let h = parse_formula("x -> Node{next: nil}").unwrap();
        assert!(matches!(
            check_symheap(&h, &types, &preds),
            Err(WfError::FieldMismatch { .. })
        ));
    }

    #[test]
    fn rejects_wrong_arity() {
        let (types, preds) = env();
        let h = parse_formula("dll(x, y)").unwrap();
        assert!(matches!(
            check_symheap(&h, &types, &preds),
            Err(WfError::ArityMismatch {
                expected: 4,
                actual: 2,
                ..
            })
        ));
    }

    #[test]
    fn rejects_non_heap_founded() {
        let (types, mut preds) = env();
        let bad = parse_predicates("pred spin(x: Node*) := spin(x);").unwrap();
        preds.define(bad[0].clone()).unwrap();
        assert!(matches!(
            check_pred_env(&types, &preds),
            Err(WfError::NotHeapFounded(_))
        ));
    }

    #[test]
    fn accepts_whole_env() {
        let (types, preds) = env();
        assert_eq!(check_pred_env(&types, &preds), Ok(()));
    }

    #[test]
    fn normalize_reorders_fields() {
        let (types, _) = env();
        let mut h = parse_formula("x -> Node{prev: nil, next: y}").unwrap();
        normalize_points_to(&mut h, &types);
        match &h.spatial[0] {
            SpatialAtom::PointsTo { fields, .. } => {
                assert_eq!(fields[0].name, Symbol::intern("next"));
                assert_eq!(fields[1].name, Symbol::intern("prev"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
