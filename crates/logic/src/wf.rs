//! Well-formedness checking of formulae and predicate definitions.
//!
//! Checks performed against a [`TypeEnv`] and [`PredEnv`]:
//!
//! * points-to atoms name a known structure and list **exactly** its fields
//!   (any order in the source; callers can normalize with
//!   [`normalize_points_to`]);
//! * predicate applications name a known predicate with matching arity;
//! * predicate definitions are *productive*: every cycle in the call graph
//!   passes through at least one case that allocates (contains a points-to
//!   atom), so unfolding against a finite heap terminates (the condition
//!   the model checker and the verification prover rely on). Acyclic
//!   unguarded calls — a wrapper case like `wrap(x) := inner(x)` — are
//!   fine: they can only be taken a bounded number of times.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::ast::{SpatialAtom, SymHeap};
use crate::pred::{PredDef, PredEnv};
use crate::symbol::Symbol;
use crate::types::TypeEnv;

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WfError {
    /// Points-to names an unknown structure type.
    UnknownStruct(Symbol),
    /// Points-to field set differs from the structure's declaration.
    FieldMismatch {
        /// The structure.
        strukt: Symbol,
        /// Explanation.
        detail: String,
    },
    /// Application of an unknown predicate.
    UnknownPred(Symbol),
    /// Wrong number of arguments.
    ArityMismatch {
        /// The predicate.
        pred: Symbol,
        /// Expected arity.
        expected: usize,
        /// Actual argument count.
        actual: usize,
    },
    /// Unguarded recursion: a cycle of predicate calls in which no case
    /// along the way consumes a heap cell, so bounded unfolding would spin
    /// without ever shrinking the heap.
    NotProductive {
        /// The predicate the cycle was detected at.
        pred: Symbol,
        /// The call cycle, starting and ending at `pred`.
        cycle: Vec<Symbol>,
    },
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfError::UnknownStruct(s) => write!(f, "unknown struct `{s}` in points-to"),
            WfError::FieldMismatch { strukt, detail } => {
                write!(f, "field mismatch for struct `{strukt}`: {detail}")
            }
            WfError::UnknownPred(p) => write!(f, "unknown predicate `{p}`"),
            WfError::ArityMismatch {
                pred,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "predicate `{pred}` expects {expected} arguments, got {actual}"
                )
            }
            WfError::NotProductive { pred, cycle } => {
                let path: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
                write!(
                    f,
                    "predicate `{pred}` is not productive: the unguarded call cycle \
                     {} never consumes a heap cell; bounded unfolding would diverge",
                    path.join(" -> ")
                )
            }
        }
    }
}

impl std::error::Error for WfError {}

/// Checks a symbolic heap against the environments.
///
/// # Errors
///
/// Returns the first [`WfError`] found.
pub fn check_symheap(h: &SymHeap, types: &TypeEnv, preds: &PredEnv) -> Result<(), WfError> {
    for atom in &h.spatial {
        match atom {
            SpatialAtom::PointsTo { ty, fields, .. } => {
                let def = types.get(*ty).ok_or(WfError::UnknownStruct(*ty))?;
                let declared: BTreeSet<Symbol> = def.fields.iter().map(|f| f.name).collect();
                let given: BTreeSet<Symbol> = fields.iter().map(|f| f.name).collect();
                if given.len() != fields.len() {
                    return Err(WfError::FieldMismatch {
                        strukt: *ty,
                        detail: "a field is assigned twice".into(),
                    });
                }
                if declared != given {
                    let missing: Vec<String> =
                        declared.difference(&given).map(|s| s.to_string()).collect();
                    let extra: Vec<String> =
                        given.difference(&declared).map(|s| s.to_string()).collect();
                    return Err(WfError::FieldMismatch {
                        strukt: *ty,
                        detail: format!(
                            "missing [{}], unknown [{}]",
                            missing.join(", "),
                            extra.join(", ")
                        ),
                    });
                }
            }
            SpatialAtom::Pred { name, args } => {
                let def = preds.get(*name).ok_or(WfError::UnknownPred(*name))?;
                if def.arity() != args.len() {
                    return Err(WfError::ArityMismatch {
                        pred: *name,
                        expected: def.arity(),
                        actual: args.len(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks a predicate definition: all cases well-formed, and no case is an
/// unguarded *self*-call (`p(..) := .. p(..)` with no points-to), which is
/// a productivity cycle of length one. Cross-predicate cycles need the
/// whole environment and are detected by [`check_pred_env`].
///
/// # Errors
///
/// Returns the first [`WfError`] found.
pub fn check_pred_def(def: &PredDef, types: &TypeEnv, preds: &PredEnv) -> Result<(), WfError> {
    for case in &def.cases {
        check_symheap(case, types, preds)?;
        if !case_is_guarded(case) && case_calls(case).contains(&def.name) {
            return Err(WfError::NotProductive {
                pred: def.name,
                cycle: vec![def.name, def.name],
            });
        }
    }
    Ok(())
}

/// True if the case consumes at least one heap cell when taken.
fn case_is_guarded(case: &SymHeap) -> bool {
    case.spatial
        .iter()
        .any(|a| matches!(a, SpatialAtom::PointsTo { .. }))
}

/// The predicates a case applies.
fn case_calls(case: &SymHeap) -> BTreeSet<Symbol> {
    case.spatial
        .iter()
        .filter_map(|a| match a {
            SpatialAtom::Pred { name, .. } => Some(*name),
            SpatialAtom::PointsTo { .. } => None,
        })
        .collect()
}

/// The environment-level productivity lint over a whole predicate set
/// (definitions may be mutually recursive): in the *unguarded* call
/// graph — an edge `p -> q` for every case of `p` that applies `q`
/// without containing a points-to atom — any cycle means a chain of
/// unfoldings that never consumes a heap cell, so bounded unfolding
/// would spin. Guarded recursion (the normal inductive case)
/// contributes no edge.
///
/// Deliberately call-graph-only: per-case structure and arity checks
/// belong to [`check_symheap`] / [`check_pred_def`] against a concrete
/// [`TypeEnv`], and a shared predicate library may span struct types a
/// given program does not declare.
///
/// # Errors
///
/// An unguarded cycle is reported as [`WfError::NotProductive`] with
/// the offending call path.
pub fn check_pred_env(preds: &PredEnv) -> Result<(), WfError> {
    let mut unguarded: BTreeMap<Symbol, BTreeSet<Symbol>> = BTreeMap::new();
    for def in preds.iter() {
        for case in &def.cases {
            if !case_is_guarded(case) {
                unguarded
                    .entry(def.name)
                    .or_default()
                    .extend(case_calls(case));
            }
        }
    }
    // DFS over the unguarded graph; a back edge closes a non-productive
    // cycle. Graph order is BTreeMap order, so the reported cycle is
    // deterministic.
    let mut state: BTreeMap<Symbol, Color> = BTreeMap::new();
    for &start in unguarded.keys() {
        if state.contains_key(&start) {
            continue;
        }
        let mut path: Vec<Symbol> = Vec::new();
        if let Some(cycle) = dfs_cycle(start, &unguarded, &mut state, &mut path) {
            return Err(WfError::NotProductive {
                pred: cycle[0],
                cycle,
            });
        }
    }
    Ok(())
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Color {
    OnPath,
    Done,
}

/// Depth-first search for a cycle reachable from `node`; on success the
/// returned path starts and ends at the same predicate.
fn dfs_cycle(
    node: Symbol,
    graph: &BTreeMap<Symbol, BTreeSet<Symbol>>,
    state: &mut BTreeMap<Symbol, Color>,
    path: &mut Vec<Symbol>,
) -> Option<Vec<Symbol>> {
    state.insert(node, Color::OnPath);
    path.push(node);
    for &next in graph.get(&node).into_iter().flatten() {
        match state.get(&next) {
            Some(Color::OnPath) => {
                let from = path.iter().position(|&p| p == next).unwrap_or(0);
                let mut cycle: Vec<Symbol> = path[from..].to_vec();
                cycle.push(next);
                return Some(cycle);
            }
            Some(Color::Done) => {}
            None => {
                if let Some(cycle) = dfs_cycle(next, graph, state, path) {
                    return Some(cycle);
                }
            }
        }
    }
    path.pop();
    state.insert(node, Color::Done);
    None
}

/// Reorders the named fields of every points-to atom into the structure's
/// declaration order. Call after a successful [`check_symheap`].
pub fn normalize_points_to(h: &mut SymHeap, types: &TypeEnv) {
    for atom in &mut h.spatial {
        if let SpatialAtom::PointsTo { ty, fields, .. } = atom {
            if let Some(def) = types.get(*ty) {
                fields.sort_by_key(|f| def.field_index(f.name).unwrap_or(usize::MAX));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_formula, parse_predicates};
    use crate::types::{FieldDef, FieldTy, StructDef};

    fn env() -> (TypeEnv, PredEnv) {
        let mut types = TypeEnv::new();
        let node = Symbol::intern("Node");
        types
            .define(StructDef {
                name: node,
                fields: vec![
                    FieldDef {
                        name: Symbol::intern("next"),
                        ty: FieldTy::Ptr(node),
                    },
                    FieldDef {
                        name: Symbol::intern("prev"),
                        ty: FieldTy::Ptr(node),
                    },
                ],
            })
            .unwrap();
        let mut preds = PredEnv::new();
        for def in parse_predicates(
            "pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
                emp & hd == nx & pr == tl
              | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx);",
        )
        .unwrap()
        {
            preds.define(def).unwrap();
        }
        (types, preds)
    }

    #[test]
    fn accepts_well_formed() {
        let (types, preds) = env();
        let h =
            parse_formula("exists u. x -> Node{next: u, prev: nil} * dll(u, x, y, nil)").unwrap();
        assert_eq!(check_symheap(&h, &types, &preds), Ok(()));
    }

    #[test]
    fn rejects_unknown_struct() {
        let (types, preds) = env();
        let h = parse_formula("x -> Ghost{f: nil}").unwrap();
        assert!(matches!(
            check_symheap(&h, &types, &preds),
            Err(WfError::UnknownStruct(_))
        ));
    }

    #[test]
    fn rejects_missing_field() {
        let (types, preds) = env();
        let h = parse_formula("x -> Node{next: nil}").unwrap();
        assert!(matches!(
            check_symheap(&h, &types, &preds),
            Err(WfError::FieldMismatch { .. })
        ));
    }

    #[test]
    fn rejects_wrong_arity() {
        let (types, preds) = env();
        let h = parse_formula("dll(x, y)").unwrap();
        assert!(matches!(
            check_symheap(&h, &types, &preds),
            Err(WfError::ArityMismatch {
                expected: 4,
                actual: 2,
                ..
            })
        ));
    }

    #[test]
    fn rejects_unguarded_self_recursion() {
        let (types, mut preds) = env();
        let bad = parse_predicates("pred spin(x: Node*) := spin(x);").unwrap();
        preds.define(bad[0].clone()).unwrap();
        let spin = Symbol::intern("spin");
        assert_eq!(
            check_pred_env(&preds),
            Err(WfError::NotProductive {
                pred: spin,
                cycle: vec![spin, spin],
            })
        );
        // The single-definition check catches the self-loop too.
        assert!(matches!(
            check_pred_def(&bad[0], &types, &preds),
            Err(WfError::NotProductive { .. })
        ));
    }

    #[test]
    fn rejects_unguarded_mutual_recursion() {
        let (_types, mut preds) = env();
        for def in parse_predicates(
            "pred ping(x: Node*) := emp & x == nil | pong(x);
             pred pong(x: Node*) := emp & x == nil | ping(x);",
        )
        .unwrap()
        {
            preds.define(def).unwrap();
        }
        match check_pred_env(&preds) {
            Err(WfError::NotProductive { cycle, .. }) => {
                assert_eq!(cycle.len(), 3, "ping -> pong -> ping");
                assert_eq!(cycle.first(), cycle.last());
            }
            other => panic!("expected NotProductive, got {other:?}"),
        }
    }

    #[test]
    fn accepts_acyclic_wrapper() {
        // An unguarded but non-recursive alias case is fine: it can only
        // be taken once per unfolding chain.
        let (_types, mut preds) = env();
        let wrap = parse_predicates("pred closed(hd: Node*) := dll(hd, nil, nil, nil);").unwrap();
        preds.define(wrap[0].clone()).unwrap();
        assert_eq!(check_pred_env(&preds), Ok(()));
    }

    #[test]
    fn accepts_guarded_mutual_recursion() {
        // even/odd-length lists: the cycle exists in the call graph but
        // every step consumes a cell, so it is productive.
        let (_types, mut preds) = env();
        for def in parse_predicates(
            "pred evenl(x: Node*) := emp & x == nil
               | exists u. x -> Node{next: u, prev: nil} * oddl(u);
             pred oddl(x: Node*) := exists u. x -> Node{next: u, prev: nil} * evenl(u);",
        )
        .unwrap()
        {
            preds.define(def).unwrap();
        }
        assert_eq!(check_pred_env(&preds), Ok(()));
    }

    #[test]
    fn accepts_whole_env() {
        let (_types, preds) = env();
        assert_eq!(check_pred_env(&preds), Ok(()));
    }

    #[test]
    fn normalize_reorders_fields() {
        let (types, _) = env();
        let mut h = parse_formula("x -> Node{prev: nil, next: y}").unwrap();
        normalize_points_to(&mut h, &types);
        match &h.spatial[0] {
            SpatialAtom::PointsTo { fields, .. } => {
                assert_eq!(fields[0].name, Symbol::intern("next"));
                assert_eq!(fields[1].name, Symbol::intern("prev"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
