//! Source locations and spans shared by the SL and MiniC front ends.

use std::fmt;

/// A half-open byte range `[lo, hi)` into a source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering bytes `lo..hi`.
    pub fn new(lo: u32, hi: u32) -> Span {
        Span { lo, hi }
    }

    /// A zero-width placeholder span.
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Computes the 1-based line and column of `self.lo` in `source`.
    pub fn line_col(self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i as u32 >= self.lo {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// A value paired with the span it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where it came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs `node` with `span`.
    pub fn new(node: T, span: Span) -> Spanned<T> {
        Spanned { node, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_merges_spans() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncde\nf";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 1));
    }
}
