//! Dead stores and unused variables, via backward liveness.
//!
//! Snapshot nodes (`@label;`, labelled loop heads, `return`) use every
//! variable in scope — the tracer records the whole stack there, so a
//! store feeding only a snapshot is *not* dead (see the module docs in
//! [`crate::lints`]). An unused variable is purely syntactic: a local
//! no statement ever reads.

use std::collections::BTreeSet;

use crate::cfg::{Cfg, NodeId, NodeKind};
use crate::diag::{codes, Diagnostic, Diagnostics, Severity};
use crate::lints::{is_snapshot_node, node_stmt, stmt_def, stmt_reads, FnInfo};
use crate::solver::{solve, Analysis, Direction};

use sling_lang::StmtKind;

struct Liveness<'i> {
    info: &'i FnInfo,
}

impl<'a, 'i> Analysis<'a> for Liveness<'i> {
    type Fact = BTreeSet<usize>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn init(&self, _cfg: &Cfg<'a>) -> BTreeSet<usize> {
        BTreeSet::new()
    }

    fn boundary(&self, _cfg: &Cfg<'a>) -> BTreeSet<usize> {
        BTreeSet::new()
    }

    fn join(&self, into: &mut BTreeSet<usize>, from: &BTreeSet<usize>) -> bool {
        let before = into.len();
        into.extend(from);
        before != into.len()
    }

    fn transfer(&self, cfg: &Cfg<'a>, node: NodeId, fact: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut out = fact.clone();
        let kind = cfg.node(node);
        if let NodeKind::Stmt(stmt) = kind {
            if let Some(def) = stmt_def(stmt) {
                if let Some(slot) = self.info.slot(def) {
                    out.remove(&slot);
                }
            }
            stmt_reads(stmt, &mut |name| {
                if let Some(slot) = self.info.slot(name) {
                    out.insert(slot);
                }
            });
            if is_snapshot_node(kind) {
                out.extend(0..self.info.vars.len());
            }
        }
        out
    }
}

/// Runs the lint over one function's CFG.
pub(crate) fn run(cfg: &Cfg<'_>, info: &FnInfo, out: &mut Diagnostics) {
    let func = cfg.func.name;

    // Syntactic read census over every statement, reachable or not.
    let mut read_somewhere = vec![false; info.vars.len()];
    for node in 0..cfg.len() {
        if let Some(stmt) = node_stmt(cfg, node) {
            stmt_reads(stmt, &mut |name| {
                if let Some(slot) = info.slot(name) {
                    read_somewhere[slot] = true;
                }
            });
        }
    }

    // Unused variables: locals never read. Report at the (first)
    // declaration.
    let mut unused = vec![false; info.vars.len()];
    let mut declared = BTreeSet::new();
    for node in 0..cfg.len() {
        let Some(stmt) = node_stmt(cfg, node) else {
            continue;
        };
        if let StmtKind::VarDecl { name, .. } = &stmt.kind {
            let Some(slot) = info.slot(*name) else {
                continue;
            };
            if !read_somewhere[slot] && declared.insert(slot) {
                unused[slot] = true;
                out.push(
                    Diagnostic::new(
                        codes::UNUSED_VAR,
                        Severity::Warning,
                        format!("variable `{name}` is never read"),
                    )
                    .in_function(func)
                    .with_span(stmt.span),
                );
            }
        }
    }

    // Dead stores: definitions whose value is not live afterwards.
    // Skip stores to unused variables (already reported once, above).
    let solution = solve(cfg, &Liveness { info });
    let reachable = cfg.reachable();
    for (node, ok) in reachable.iter().enumerate() {
        if !ok {
            continue;
        }
        let Some(stmt) = node_stmt(cfg, node) else {
            continue;
        };
        let Some(def) = stmt_def(stmt) else { continue };
        let Some(slot) = info.slot(def) else { continue };
        if unused[slot] {
            continue;
        }
        // Backward solution: `input[node]` is the fact *after* the
        // statement executes.
        if !solution.input[node].contains(&slot) {
            let what = match stmt.kind {
                StmtKind::VarDecl { .. } => "initializer of",
                _ => "value assigned to",
            };
            out.push(
                Diagnostic::new(
                    codes::DEAD_STORE,
                    Severity::Warning,
                    format!("{what} `{def}` is never used"),
                )
                .in_function(func)
                .with_span(stmt.span)
                .with_note("no later statement or snapshot location observes this value"),
            );
        }
    }
}
