//! The lint suite: each lint is one dataflow analysis (or a plain graph
//! walk) over the function [`Cfg`](crate::cfg::Cfg) plus a reporting
//! pass that turns fixpoint facts into [`Diagnostic`]s.
//!
//! A design point worth calling out: SLING's tracer snapshots the
//! *entire* stack at every breakpoint — `@label;` statements, labelled
//! loop heads, and every `return`. A store whose value no later
//! statement reads is therefore still observable if a snapshot location
//! sits between the store and the overwrite, and the liveness lint
//! treats those nodes as using every variable in scope. Dead-store
//! findings never ask you to delete a value the inference pipeline
//! would have seen.

pub mod init;
pub mod live;
pub mod null;
pub mod reach;

use std::collections::BTreeMap;

use sling_lang::{Expr, ExprKind, FuncDecl, LValue, Stmt, StmtKind};
use sling_logic::{Span, Symbol};

use crate::cfg::{Cfg, NodeId, NodeKind};

/// Per-function variable numbering shared by the dataflow lints:
/// parameters first, then every declared local, in source order.
#[derive(Debug)]
pub(crate) struct FnInfo {
    /// All variables, parameters first.
    pub vars: Vec<Symbol>,
    /// Name → index in `vars`. Re-declarations of the same name (MiniC
    /// scoping permitting) share one slot — conservative for every lint
    /// here.
    pub index: BTreeMap<Symbol, usize>,
    /// How many leading entries of `vars` are parameters.
    pub params: usize,
}

impl FnInfo {
    pub(crate) fn new(func: &FuncDecl) -> FnInfo {
        let mut vars = Vec::new();
        let mut index = BTreeMap::new();
        for p in &func.params {
            if let std::collections::btree_map::Entry::Vacant(e) = index.entry(p.name) {
                e.insert(vars.len());
                vars.push(p.name);
            }
        }
        let params = vars.len();
        collect_locals(&func.body, &mut vars, &mut index);
        FnInfo {
            vars,
            index,
            params,
        }
    }

    /// The slot of `name`, if it is a known variable.
    pub(crate) fn slot(&self, name: Symbol) -> Option<usize> {
        self.index.get(&name).copied()
    }
}

fn collect_locals(
    block: &sling_lang::Block,
    vars: &mut Vec<Symbol>,
    index: &mut BTreeMap<Symbol, usize>,
) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::VarDecl { name, .. } => {
                if let std::collections::btree_map::Entry::Vacant(e) = index.entry(*name) {
                    e.insert(vars.len());
                    vars.push(*name);
                }
            }
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                collect_locals(then_blk, vars, index);
                if let Some(e) = else_blk {
                    collect_locals(e, vars, index);
                }
            }
            StmtKind::While { body, .. } => collect_locals(body, vars, index),
            _ => {}
        }
    }
}

/// Calls `f` for every variable *read* in `expr` (lvalue bases count:
/// `x->f = e` reads `x`).
pub(crate) fn for_each_read(expr: &Expr, f: &mut impl FnMut(Symbol)) {
    match &expr.kind {
        ExprKind::Var(s) => f(*s),
        ExprKind::Field(base, _) => for_each_read(base, f),
        ExprKind::Unary(_, e) => for_each_read(e, f),
        ExprKind::Binary(_, a, b) => {
            for_each_read(a, f);
            for_each_read(b, f);
        }
        ExprKind::New(_, inits) => {
            for (_, e) in inits {
                for_each_read(e, f);
            }
        }
        ExprKind::Call(_, args) => {
            for e in args {
                for_each_read(e, f);
            }
        }
        ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Null => {}
    }
}

/// The variables the statement node itself reads when it executes
/// (branch bodies excluded: those are separate nodes).
pub(crate) fn stmt_reads(stmt: &Stmt, f: &mut impl FnMut(Symbol)) {
    match &stmt.kind {
        StmtKind::VarDecl { init, .. } => {
            if let Some(e) = init {
                for_each_read(e, f);
            }
        }
        StmtKind::Assign { lhs, rhs } => {
            if let LValue::Field(base, _) = lhs {
                for_each_read(base, f);
            }
            for_each_read(rhs, f);
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => for_each_read(cond, f),
        StmtKind::Return(e) => {
            if let Some(e) = e {
                for_each_read(e, f);
            }
        }
        StmtKind::Free(e) | StmtKind::ExprStmt(e) => for_each_read(e, f),
        StmtKind::Label(_) => {}
    }
}

/// The variable the statement (re)defines, with its span: `x = e`,
/// `var x: T = e`. `var x: T;` (no initializer) is *not* a definition —
/// the init lint treats it as the opposite.
pub(crate) fn stmt_def(stmt: &Stmt) -> Option<Symbol> {
    match &stmt.kind {
        StmtKind::VarDecl {
            name,
            init: Some(_),
            ..
        } => Some(*name),
        StmtKind::Assign {
            lhs: LValue::Var(name),
            ..
        } => Some(*name),
        _ => None,
    }
}

/// True when the tracer takes a snapshot at this node: `@label;`
/// statements, labelled loop heads, and `return`s. Such nodes observe
/// every variable in scope (see the module docs).
pub(crate) fn is_snapshot_node(kind: NodeKind<'_>) -> bool {
    match kind {
        NodeKind::Stmt(stmt) => matches!(
            stmt.kind,
            StmtKind::Label(_) | StmtKind::Return(_) | StmtKind::While { label: Some(_), .. }
        ),
        NodeKind::Entry | NodeKind::Exit => false,
    }
}

/// Calls `f` with `(pointer var, span of the access)` for every place
/// the statement dereferences a *variable* directly: field reads and
/// writes `x->f`, and `free(x)` (freeing null is a runtime fault).
/// Dereferences of compound bases (`x->next->f`) report the inner
/// variable access only — the outer base is no single variable.
pub(crate) fn stmt_derefs(stmt: &Stmt, f: &mut impl FnMut(Symbol, Span)) {
    fn walk_expr(expr: &Expr, f: &mut impl FnMut(Symbol, Span)) {
        match &expr.kind {
            ExprKind::Field(base, _) => {
                if let ExprKind::Var(s) = base.kind {
                    f(s, expr.span);
                }
                walk_expr(base, f);
            }
            ExprKind::Unary(_, e) => walk_expr(e, f),
            ExprKind::Binary(_, a, b) => {
                walk_expr(a, f);
                walk_expr(b, f);
            }
            ExprKind::New(_, inits) => {
                for (_, e) in inits {
                    walk_expr(e, f);
                }
            }
            ExprKind::Call(_, args) => {
                for e in args {
                    walk_expr(e, f);
                }
            }
            ExprKind::Var(_) | ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Null => {}
        }
    }
    match &stmt.kind {
        StmtKind::VarDecl { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, f);
            }
        }
        StmtKind::Assign { lhs, rhs } => {
            if let LValue::Field(base, _) = lhs {
                if let ExprKind::Var(s) = base.kind {
                    f(s, base.span);
                }
                walk_expr(base, f);
            }
            walk_expr(rhs, f);
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => walk_expr(cond, f),
        StmtKind::Return(e) => {
            if let Some(e) = e {
                walk_expr(e, f);
            }
        }
        StmtKind::Free(e) => {
            if let ExprKind::Var(s) = e.kind {
                f(s, e.span);
            }
            walk_expr(e, f);
        }
        StmtKind::ExprStmt(e) => walk_expr(e, f),
        StmtKind::Label(_) => {}
    }
}

/// The statement borrowed by a CFG node, when it is one.
pub(crate) fn node_stmt<'a>(cfg: &Cfg<'a>, id: NodeId) -> Option<&'a Stmt> {
    match cfg.node(id) {
        NodeKind::Stmt(s) => Some(s),
        _ => None,
    }
}
