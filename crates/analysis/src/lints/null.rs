//! Possible-null dereferences, via a forward flat nullness domain.
//!
//! Per variable: `Null` (definitely null), `NonNull` (definitely not),
//! or `Unknown`; the whole fact is `None` while a node is unreached.
//! Branch conditions seed the domain: on the true edge of
//! `x == null` the variable is `Null`, on the false edge `NonNull`
//! (and dually for `!=`, through `!`, `&&`-true and `||`-false).
//! A successful dereference also refines its base to `NonNull` on the
//! fall-through. Only *definite* nulls are reported — the lint is
//! deny-level, and `Unknown` dereferences are the overwhelmingly common
//! legitimate case in heap-manipulating code.

use std::collections::BTreeSet;

use sling_lang::{Expr, ExprKind, LValue, StmtKind, UnOp};

use crate::cfg::{Cfg, EdgeKind, NodeId};
use crate::diag::{codes, Diagnostic, Diagnostics, Severity};
use crate::lints::{node_stmt, stmt_derefs, FnInfo};
use crate::solver::{solve, Analysis, Direction};

/// The flat per-variable lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Nullness {
    Null,
    NonNull,
    Unknown,
}

impl Nullness {
    fn join(self, other: Nullness) -> Nullness {
        if self == other {
            self
        } else {
            Nullness::Unknown
        }
    }
}

/// `None` = node not reached yet (the join identity).
type Fact = Option<Vec<Nullness>>;

struct NullAnalysis<'i> {
    info: &'i FnInfo,
}

impl<'i> NullAnalysis<'i> {
    fn eval(&self, expr: &Expr, fact: &[Nullness]) -> Nullness {
        match &expr.kind {
            ExprKind::Null => Nullness::Null,
            ExprKind::New(..) => Nullness::NonNull,
            ExprKind::Var(s) => self
                .info
                .slot(*s)
                .map(|i| fact[i])
                .unwrap_or(Nullness::Unknown),
            _ => Nullness::Unknown,
        }
    }

    /// Applies what `cond == truth` implies to `fact`.
    fn refine(&self, cond: &Expr, truth: bool, fact: &mut [Nullness]) {
        use sling_lang::BinOp;
        match &cond.kind {
            ExprKind::Unary(UnOp::Not, inner) => self.refine(inner, !truth, fact),
            ExprKind::Binary(op, a, b) => match op {
                BinOp::Eq | BinOp::Ne => {
                    let var = match (&a.kind, &b.kind) {
                        (ExprKind::Var(s), ExprKind::Null) => Some(*s),
                        (ExprKind::Null, ExprKind::Var(s)) => Some(*s),
                        _ => None,
                    };
                    if let Some(slot) = var.and_then(|s| self.info.slot(s)) {
                        let is_null = (*op == BinOp::Eq) == truth;
                        fact[slot] = if is_null {
                            Nullness::Null
                        } else {
                            Nullness::NonNull
                        };
                    }
                }
                BinOp::And if truth => {
                    self.refine(a, true, fact);
                    self.refine(b, true, fact);
                }
                BinOp::Or if !truth => {
                    self.refine(a, false, fact);
                    self.refine(b, false, fact);
                }
                _ => {}
            },
            _ => {}
        }
    }
}

impl<'a, 'i> Analysis<'a> for NullAnalysis<'i> {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self, _cfg: &Cfg<'a>) -> Fact {
        None
    }

    fn boundary(&self, _cfg: &Cfg<'a>) -> Fact {
        Some(vec![Nullness::Unknown; self.info.vars.len()])
    }

    fn join(&self, into: &mut Fact, from: &Fact) -> bool {
        match (into.as_mut(), from) {
            (_, None) => false,
            (None, Some(_)) => {
                *into = from.clone();
                true
            }
            (Some(a), Some(b)) => {
                let mut changed = false;
                for (x, y) in a.iter_mut().zip(b) {
                    let joined = x.join(*y);
                    if joined != *x {
                        *x = joined;
                        changed = true;
                    }
                }
                changed
            }
        }
    }

    fn transfer(&self, cfg: &Cfg<'a>, node: NodeId, fact: &Fact) -> Fact {
        let Some(fact) = fact else { return None };
        let mut out = fact.clone();
        if let Some(stmt) = node_stmt(cfg, node) {
            // A dereference that executed implies the base was non-null
            // on the fall-through.
            stmt_derefs(stmt, &mut |name, _span| {
                if let Some(slot) = self.info.slot(name) {
                    out[slot] = Nullness::NonNull;
                }
            });
            match &stmt.kind {
                StmtKind::VarDecl {
                    name,
                    init: Some(e),
                    ..
                } => {
                    if let Some(slot) = self.info.slot(*name) {
                        out[slot] = self.eval(e, fact);
                    }
                }
                StmtKind::VarDecl {
                    name, init: None, ..
                } => {
                    if let Some(slot) = self.info.slot(*name) {
                        out[slot] = Nullness::Unknown;
                    }
                }
                StmtKind::Assign {
                    lhs: LValue::Var(name),
                    rhs,
                } => {
                    if let Some(slot) = self.info.slot(*name) {
                        out[slot] = self.eval(rhs, fact);
                    }
                }
                _ => {}
            }
        }
        Some(out)
    }

    fn edge(&self, cfg: &Cfg<'a>, from: NodeId, kind: EdgeKind, fact: &Fact) -> Option<Fact> {
        let truth = match kind {
            EdgeKind::True => true,
            EdgeKind::False => false,
            EdgeKind::Seq => return None,
        };
        let Some(values) = fact else { return None };
        let stmt = node_stmt(cfg, from)?;
        let cond = match &stmt.kind {
            StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => cond,
            _ => return None,
        };
        let mut refined = values.clone();
        self.refine(cond, truth, &mut refined);
        Some(Some(refined))
    }
}

/// Runs the lint over one function's CFG.
pub(crate) fn run(cfg: &Cfg<'_>, info: &FnInfo, out: &mut Diagnostics) {
    let analysis = NullAnalysis { info };
    let solution = solve(cfg, &analysis);
    let func = cfg.func.name;
    for node in 0..cfg.len() {
        let Some(fact) = &solution.input[node] else {
            continue; // unreached
        };
        let Some(stmt) = node_stmt(cfg, node) else {
            continue;
        };
        let mut reported = BTreeSet::new();
        stmt_derefs(stmt, &mut |name, span| {
            let Some(slot) = info.slot(name) else { return };
            if fact[slot] == Nullness::Null && reported.insert((slot, span.lo, span.hi)) {
                out.push(
                    Diagnostic::new(
                        codes::NULL_DEREF,
                        Severity::Deny,
                        format!("null dereference: `{name}` is null when this executes"),
                    )
                    .in_function(func)
                    .with_span(span),
                );
            }
        });
    }
}
