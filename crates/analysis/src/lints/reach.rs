//! Unreachable code, as plain graph reachability from the CFG entry.
//!
//! Statements no path reaches are warning-level `SA005`, reported once
//! per dead region (at its head). Declared *snapshot locations* no path
//! reaches are deny-level `SA006`: the dynamic collector can never
//! observe a model there, so inference at that location is silently
//! empty — exactly the failure mode the static pass exists to explain.

use sling_lang::Location;

use crate::cfg::Cfg;
use crate::diag::{codes, Diagnostic, Diagnostics, Severity};
use crate::lints::node_stmt;

/// Runs the lint; returns the statically-unreachable declared
/// locations, in declaration order.
pub(crate) fn run(cfg: &Cfg<'_>, out: &mut Diagnostics) -> Vec<Location> {
    let reachable = cfg.reachable();
    let func = cfg.func.name;

    let mut unreachable_locs = Vec::new();
    let mut loc_nodes = vec![None; cfg.len()];
    for &(loc, node) in &cfg.locations {
        loc_nodes[node] = Some(loc);
        if !reachable[node] {
            unreachable_locs.push(loc);
        }
    }

    for node in 0..cfg.len() {
        if reachable[node] {
            continue;
        }
        let Some(stmt) = node_stmt(cfg, node) else {
            continue;
        };
        if let Some(loc) = loc_nodes[node] {
            out.push(
                Diagnostic::new(
                    codes::UNREACHABLE_LOCATION,
                    Severity::Deny,
                    format!("snapshot location `{loc}` is statically unreachable"),
                )
                .in_function(func)
                .with_span(stmt.span)
                .with_note("the dynamic collector can never take a model here"),
            );
            continue;
        }
        // Only the head of a dead region: a node with no unreachable
        // predecessor (statements right after a `return` have no
        // predecessors at all).
        let head = cfg.pred(node).iter().all(|&(p, _)| reachable[p]);
        if head {
            out.push(
                Diagnostic::new(
                    codes::UNREACHABLE_STMT,
                    Severity::Warning,
                    "unreachable statement".to_string(),
                )
                .in_function(func)
                .with_span(stmt.span),
            );
        }
    }

    unreachable_locs
}
