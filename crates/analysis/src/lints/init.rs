//! Use-before-init, via forward reaching-definitions over a pair of
//! sets: variables *possibly* uninitialized (join = union) and
//! variables *definitely* uninitialized (join = intersection). A read
//! of a definitely-uninitialized variable is deny-level `SA001`; a read
//! that is uninitialized only on some path is warning-level `SA002`.

use std::collections::BTreeSet;

use crate::cfg::{Cfg, NodeId};
use crate::diag::{codes, Diagnostic, Diagnostics, Severity};
use crate::lints::{node_stmt, stmt_reads, FnInfo};
use crate::solver::{solve, Analysis, Direction};

use sling_lang::StmtKind;

#[derive(Debug, Clone, PartialEq)]
struct Fact {
    may_uninit: BTreeSet<usize>,
    must_uninit: BTreeSet<usize>,
}

struct InitAnalysis<'i> {
    info: &'i FnInfo,
}

impl<'a, 'i> Analysis<'a> for InitAnalysis<'i> {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init(&self, _cfg: &Cfg<'a>) -> Fact {
        // Bottom: nothing possibly-uninit (union identity), everything
        // definitely-uninit (intersection identity).
        Fact {
            may_uninit: BTreeSet::new(),
            must_uninit: (0..self.info.vars.len()).collect(),
        }
    }

    fn boundary(&self, _cfg: &Cfg<'a>) -> Fact {
        // At entry the parameters are initialized by the call; every
        // local is not.
        let locals: BTreeSet<usize> = (self.info.params..self.info.vars.len()).collect();
        Fact {
            may_uninit: locals.clone(),
            must_uninit: locals,
        }
    }

    fn join(&self, into: &mut Fact, from: &Fact) -> bool {
        let may_before = into.may_uninit.len();
        into.may_uninit.extend(&from.may_uninit);
        let must_before = into.must_uninit.len();
        into.must_uninit = into
            .must_uninit
            .intersection(&from.must_uninit)
            .copied()
            .collect();
        may_before != into.may_uninit.len() || must_before != into.must_uninit.len()
    }

    fn transfer(&self, cfg: &Cfg<'a>, node: NodeId, fact: &Fact) -> Fact {
        let mut out = fact.clone();
        if let Some(stmt) = node_stmt(cfg, node) {
            match &stmt.kind {
                StmtKind::VarDecl {
                    name, init: None, ..
                } => {
                    if let Some(slot) = self.info.slot(*name) {
                        out.may_uninit.insert(slot);
                        out.must_uninit.insert(slot);
                    }
                }
                StmtKind::VarDecl {
                    name,
                    init: Some(_),
                    ..
                } => {
                    if let Some(slot) = self.info.slot(*name) {
                        out.may_uninit.remove(&slot);
                        out.must_uninit.remove(&slot);
                    }
                }
                StmtKind::Assign {
                    lhs: sling_lang::LValue::Var(name),
                    ..
                } => {
                    if let Some(slot) = self.info.slot(*name) {
                        out.may_uninit.remove(&slot);
                        out.must_uninit.remove(&slot);
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// Runs the lint over one function's CFG.
pub(crate) fn run(cfg: &Cfg<'_>, info: &FnInfo, out: &mut Diagnostics) {
    let analysis = InitAnalysis { info };
    let solution = solve(cfg, &analysis);
    let reachable = cfg.reachable();
    let func = cfg.func.name;
    for (node, ok) in reachable.iter().enumerate() {
        if !ok {
            continue;
        }
        let Some(stmt) = node_stmt(cfg, node) else {
            continue;
        };
        let fact = &solution.input[node];
        let mut seen = BTreeSet::new();
        stmt_reads(stmt, &mut |name| {
            let Some(slot) = info.slot(name) else { return };
            if !seen.insert(slot) {
                return;
            }
            if fact.must_uninit.contains(&slot) {
                out.push(
                    Diagnostic::new(
                        codes::USE_BEFORE_INIT,
                        Severity::Deny,
                        format!("variable `{name}` is used before it is initialized"),
                    )
                    .in_function(func)
                    .with_span(stmt.span),
                );
            } else if fact.may_uninit.contains(&slot) {
                out.push(
                    Diagnostic::new(
                        codes::MAYBE_UNINIT,
                        Severity::Warning,
                        format!("variable `{name}` may be used before it is initialized"),
                    )
                    .in_function(func)
                    .with_span(stmt.span)
                    .with_note("uninitialized on at least one path reaching this use"),
                );
            }
        });
    }
}
