//! A generic monotone-framework worklist solver.
//!
//! An [`Analysis`] supplies the join-semilattice (via `init`, the
//! lattice bottom, and `join`), the direction, the per-node transfer
//! function, and — optionally — an edge refinement applied to facts as
//! they flow across labelled branch edges. [`solve`] iterates to the
//! least fixpoint; termination is the analysis's responsibility
//! (finite-height lattices and monotone transfers, as usual).

use crate::cfg::{Cfg, EdgeKind, NodeId};

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from entry towards exit.
    Forward,
    /// Facts flow from exit towards entry.
    Backward,
}

/// One dataflow analysis over a [`Cfg`].
pub trait Analysis<'a> {
    /// The lattice element attached to each node boundary.
    type Fact: Clone + PartialEq;

    /// The flow direction.
    fn direction(&self) -> Direction;

    /// The lattice bottom: the initial fact at every node boundary.
    fn init(&self, cfg: &Cfg<'a>) -> Self::Fact;

    /// The fact at the flow origin — the entry node for forward
    /// analyses, the exit node for backward ones.
    fn boundary(&self, cfg: &Cfg<'a>) -> Self::Fact;

    /// Joins `from` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// The transfer function of node `node` applied to its input fact.
    fn transfer(&self, cfg: &Cfg<'a>, node: NodeId, fact: &Self::Fact) -> Self::Fact;

    /// Refines `fact` as it flows across the edge `from → _` labelled
    /// `kind` (forward) or against it (backward). `None` means
    /// "unchanged"; the default refines nothing.
    fn edge(
        &self,
        cfg: &Cfg<'a>,
        from: NodeId,
        kind: EdgeKind,
        fact: &Self::Fact,
    ) -> Option<Self::Fact> {
        let (_, _, _, _) = (cfg, from, kind, fact);
        None
    }
}

/// The least fixpoint: facts at each node's input and output boundary,
/// indexed by [`NodeId`]. For forward analyses `input[n]` is the fact
/// *before* `n` executes; for backward analyses it is the fact *after*
/// (the side the join happens on, in both cases).
#[derive(Debug)]
pub struct Solution<F> {
    /// The joined fact flowing into each node (in flow order).
    pub input: Vec<F>,
    /// `transfer` applied to `input`, per node.
    pub output: Vec<F>,
}

/// Runs `analysis` over `cfg` to a fixpoint.
pub fn solve<'a, A: Analysis<'a>>(cfg: &Cfg<'a>, analysis: &A) -> Solution<A::Fact> {
    let n = cfg.len();
    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.init(cfg)).collect();
    let origin = match analysis.direction() {
        Direction::Forward => crate::cfg::ENTRY,
        Direction::Backward => crate::cfg::EXIT,
    };
    input[origin] = analysis.boundary(cfg);
    let mut output: Vec<A::Fact> = (0..n)
        .map(|id| analysis.transfer(cfg, id, &input[id]))
        .collect();

    let mut on_list = vec![true; n];
    let mut worklist: Vec<NodeId> = (0..n).collect();
    while let Some(node) = worklist.pop() {
        on_list[node] = false;
        // Join over the flow-predecessors' outputs.
        let mut fact = if node == origin {
            analysis.boundary(cfg)
        } else {
            analysis.init(cfg)
        };
        let incoming: Vec<(NodeId, EdgeKind)> = match analysis.direction() {
            Direction::Forward => cfg.pred(node).to_vec(),
            Direction::Backward => cfg.succ(node).to_vec(),
        };
        for (other, kind) in incoming {
            // The edge label lives on the branch source; for backward
            // flow the "source" is this node's CFG successor side, but
            // refinement is still keyed by the node that owns the
            // condition — the forward `from`.
            let from = match analysis.direction() {
                Direction::Forward => other,
                Direction::Backward => node,
            };
            match analysis.edge(cfg, from, kind, &output[other]) {
                Some(refined) => analysis.join(&mut fact, &refined),
                None => analysis.join(&mut fact, &output[other]),
            };
        }
        input[node] = fact;
        let new_out = analysis.transfer(cfg, node, &input[node]);
        if new_out != output[node] {
            output[node] = new_out;
            let downstream: Vec<NodeId> = match analysis.direction() {
                Direction::Forward => cfg.succ(node).iter().map(|&(s, _)| s).collect(),
                Direction::Backward => cfg.pred(node).iter().map(|&(p, _)| p).collect(),
            };
            for d in downstream {
                if !on_list[d] {
                    on_list[d] = true;
                    worklist.push(d);
                }
            }
        }
    }

    Solution { input, output }
}
