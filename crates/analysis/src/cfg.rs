//! AST-level control-flow graphs for MiniC functions.
//!
//! One node per statement (plus explicit entry and exit nodes), spans
//! preserved by borrowing the statements themselves. `if` and `while`
//! statements contribute a single *condition* node; their branch edges
//! are labelled [`EdgeKind::True`] / [`EdgeKind::False`] so flow
//! functions can refine facts from the branch condition (the nullness
//! lint leans on this).
//!
//! Trivially-constant conditions (`if (true)`, `while (false)`, ...)
//! drop the never-taken edge at construction time, so graph
//! reachability — and every dataflow analysis over the graph — agrees
//! that, say, the body of `while (false)` or the code after a
//! `while (true)` loop (MiniC has no `break`) is unreachable.

use sling_lang::{Block, ExprKind, FuncDecl, Location, Stmt, StmtKind};

/// Index of a node in its [`Cfg`].
pub type NodeId = usize;

/// What a CFG node stands for.
#[derive(Debug, Clone, Copy)]
pub enum NodeKind<'a> {
    /// The unique function entry (also the `Location::Entry` snapshot
    /// point).
    Entry,
    /// The unique function exit; every `return` (and the implicit
    /// fall-off-the-end return) flows here.
    Exit,
    /// One source statement. `if`/`while` statements appear as their
    /// condition evaluation only; their bodies are separate nodes.
    Stmt(&'a Stmt),
}

/// Edge labels: how control reaches the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Unconditional fall-through.
    Seq,
    /// The branch taken when the source node's condition is true.
    True,
    /// The branch taken when the source node's condition is false.
    False,
}

/// A control-flow graph over one function body.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// The function the graph was built from.
    pub func: &'a FuncDecl,
    nodes: Vec<NodeKind<'a>>,
    succ: Vec<Vec<(NodeId, EdgeKind)>>,
    pred: Vec<Vec<(NodeId, EdgeKind)>>,
    /// Declared snapshot locations, in `Program::locations_of` order,
    /// with the node that must execute for the tracer to fire there.
    pub locations: Vec<(Location, NodeId)>,
}

/// The entry node's id.
pub const ENTRY: NodeId = 0;
/// The exit node's id.
pub const EXIT: NodeId = 1;

impl<'a> Cfg<'a> {
    /// Builds the CFG for `func`.
    pub fn build(func: &'a FuncDecl) -> Cfg<'a> {
        let mut cfg = Cfg {
            func,
            nodes: vec![NodeKind::Entry, NodeKind::Exit],
            succ: vec![Vec::new(), Vec::new()],
            pred: vec![Vec::new(), Vec::new()],
            locations: vec![(Location::Entry, ENTRY)],
        };
        let mut returns = 0usize;
        let outs = cfg.lower_block(&func.body, vec![(ENTRY, EdgeKind::Seq)], &mut returns);
        for (from, kind) in outs {
            cfg.add_edge(from, EXIT, kind);
        }
        cfg
    }

    /// Number of nodes (entry and exit included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for a degenerate graph (never: entry and exit always
    /// exist).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node's kind.
    pub fn node(&self, id: NodeId) -> NodeKind<'a> {
        self.nodes[id]
    }

    /// Outgoing edges of `id`.
    pub fn succ(&self, id: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.succ[id]
    }

    /// Incoming edges of `id` (edge kind is the label on the edge from
    /// the predecessor).
    pub fn pred(&self, id: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.pred[id]
    }

    /// The set of nodes reachable from the entry, as a dense bitmap.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![ENTRY];
        seen[ENTRY] = true;
        while let Some(n) = stack.pop() {
            for &(s, _) in &self.succ[n] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    fn add_node(&mut self, kind: NodeKind<'a>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(kind);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        self.succ[from].push((to, kind));
        self.pred[to].push((from, kind));
    }

    fn connect(&mut self, preds: &[(NodeId, EdgeKind)], to: NodeId) {
        for &(from, kind) in preds {
            self.add_edge(from, to, kind);
        }
    }

    /// Lowers a block; `preds` are the dangling out-edges flowing into
    /// its first statement, the return value the dangling out-edges
    /// flowing past its last. Statements after a `return` (or any other
    /// dead region) are still lowered — with no incoming flow — so they
    /// exist as (unreachable) nodes.
    fn lower_block(
        &mut self,
        block: &'a Block,
        mut preds: Vec<(NodeId, EdgeKind)>,
        returns: &mut usize,
    ) -> Vec<(NodeId, EdgeKind)> {
        for stmt in &block.stmts {
            preds = self.lower_stmt(stmt, preds, returns);
        }
        preds
    }

    fn lower_stmt(
        &mut self,
        stmt: &'a Stmt,
        preds: Vec<(NodeId, EdgeKind)>,
        returns: &mut usize,
    ) -> Vec<(NodeId, EdgeKind)> {
        let node = self.add_node(NodeKind::Stmt(stmt));
        self.connect(&preds, node);
        match &stmt.kind {
            StmtKind::Label(l) => {
                self.locations.push((Location::Label(*l), node));
                vec![(node, EdgeKind::Seq)]
            }
            StmtKind::Return(_) => {
                self.locations.push((Location::Exit(*returns), node));
                *returns += 1;
                self.add_edge(node, EXIT, EdgeKind::Seq);
                Vec::new()
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let konst = const_bool(cond);
                let then_in = if konst == Some(false) {
                    Vec::new()
                } else {
                    vec![(node, EdgeKind::True)]
                };
                let else_in = if konst == Some(true) {
                    Vec::new()
                } else {
                    vec![(node, EdgeKind::False)]
                };
                let mut outs = self.lower_block(then_blk, then_in, returns);
                match else_blk {
                    Some(blk) => outs.extend(self.lower_block(blk, else_in, returns)),
                    None => outs.extend(else_in),
                }
                outs
            }
            StmtKind::While { label, cond, body } => {
                if let Some(l) = label {
                    self.locations.push((Location::LoopHead(*l), node));
                }
                let konst = const_bool(cond);
                let body_in = if konst == Some(false) {
                    Vec::new()
                } else {
                    vec![(node, EdgeKind::True)]
                };
                let body_outs = self.lower_block(body, body_in, returns);
                self.connect(&body_outs, node);
                if konst == Some(true) {
                    Vec::new()
                } else {
                    vec![(node, EdgeKind::False)]
                }
            }
            StmtKind::VarDecl { .. }
            | StmtKind::Assign { .. }
            | StmtKind::Free(_)
            | StmtKind::ExprStmt(_) => vec![(node, EdgeKind::Seq)],
        }
    }
}

/// The condition's constant truth value, when it is a bare boolean
/// literal. Anything fancier is treated as opaque — the graph stays
/// conservative.
fn const_bool(cond: &sling_lang::Expr) -> Option<bool> {
    match cond.kind {
        ExprKind::Bool(b) => Some(b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::parse_program;
    use sling_logic::Symbol;

    #[test]
    fn locations_agree_with_locations_of() {
        let src = "struct N { next: N*; }
            fn f(x: N*) -> N* {
                @pre;
                var i: int = 0;
                while @inv (x != null) { x = x->next; i = i + 1; }
                if (i > 2) { return x; }
                return null;
            }";
        let program = parse_program(src).expect("parses");
        let cfg = Cfg::build(&program.funcs[0]);
        let declared = program.locations_of(Symbol::intern("f"));
        let from_cfg: Vec<Location> = cfg.locations.iter().map(|(l, _)| *l).collect();
        assert_eq!(from_cfg, declared);
    }

    #[test]
    fn return_severs_flow() {
        let program = parse_program(
            "fn g() -> int {
                return 1;
                return 2;
            }",
        )
        .expect("parses");
        let cfg = Cfg::build(&program.funcs[0]);
        let reach = cfg.reachable();
        // Node layout: 0 entry, 1 exit, 2 first return, 3 second return.
        assert!(reach[2]);
        assert!(!reach[3], "the second return is dead");
    }

    #[test]
    fn while_true_has_no_exit_edge() {
        let program = parse_program(
            "fn spin() -> int {
                while (true) { var x: int = 1; }
                return 0;
            }",
        )
        .expect("parses");
        let cfg = Cfg::build(&program.funcs[0]);
        let reach = cfg.reachable();
        // 0 entry, 1 exit, 2 while, 3 body decl, 4 return.
        assert!(reach[2] && reach[3]);
        assert!(!reach[4], "code after while(true) is dead");
    }
}
