//! The diagnostics vocabulary: stable lint codes, typed severities, and
//! the [`Diagnostic`] / [`Diagnostics`] report types every static
//! finding in the system flows through — the CFG lints in this crate as
//! well as the re-homed predicate-productivity check from
//! [`sling_logic::check_pred_env`].

use std::fmt;

use sling_logic::{Span, Symbol, WfError};

/// Stable lint codes. These are part of the public (and wire) surface:
/// codes are never renumbered, only appended.
pub mod codes {
    /// Definite use of a variable before any initialization (deny).
    pub const USE_BEFORE_INIT: &str = "SA001";
    /// Use of a variable that is uninitialized on *some* path (warning).
    pub const MAYBE_UNINIT: &str = "SA002";
    /// A stored value that no later statement or snapshot observes
    /// (warning).
    pub const DEAD_STORE: &str = "SA003";
    /// A local variable that is never read (warning).
    pub const UNUSED_VAR: &str = "SA004";
    /// A statement no control-flow path reaches (warning).
    pub const UNREACHABLE_STMT: &str = "SA005";
    /// A snapshot location no control-flow path reaches — the dynamic
    /// collector can never produce models there (deny).
    pub const UNREACHABLE_LOCATION: &str = "SA006";
    /// A pointer dereferenced on a path where it is definitely null
    /// (deny).
    pub const NULL_DEREF: &str = "SA007";
    /// An inductive predicate with an unguarded call cycle — bounded
    /// unfolding would diverge (deny; re-homed from
    /// `sling_logic::check_pred_env`).
    pub const UNPRODUCTIVE_PRED: &str = "SL001";
}

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth reporting, but the program is still analyzable; warnings
    /// ride along in the analysis report.
    Warning,
    /// The program is rejected: `EngineBuilder::build()` fails and the
    /// service refuses the upload.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Deny => write!(f, "error"),
        }
    }
}

/// One static finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (see [`codes`]).
    pub code: String,
    /// Typed severity.
    pub severity: Severity,
    /// The function the finding is in, if any (predicate-environment
    /// findings have none).
    pub function: Option<Symbol>,
    /// Source span of the offending statement or expression
    /// ([`Span::DUMMY`] when the input carries no spans, e.g. predicate
    /// definitions).
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// Secondary lines (e.g. the predicate call cycle path).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new finding with no function, span, or notes attached.
    pub fn new(code: &str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity,
            function: None,
            span: Span::DUMMY,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attaches the containing function.
    pub fn in_function(mut self, func: Symbol) -> Diagnostic {
        self.function = Some(func);
        self
    }

    /// Attaches the source span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = span;
        self
    }

    /// Appends a secondary note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Re-homes a predicate well-formedness error onto the shared
    /// diagnostics vocabulary. The message is the error's own rendering
    /// (so existing substring matches keep working); the unguarded call
    /// cycle, when there is one, becomes a structured note.
    pub fn from_wf_error(err: &WfError) -> Diagnostic {
        let mut diag = Diagnostic::new(codes::UNPRODUCTIVE_PRED, Severity::Deny, err.to_string());
        if let WfError::NotProductive { pred, cycle } = err {
            diag.function = Some(*pred);
            let path: Vec<&str> = cycle.iter().map(|s| s.as_str()).collect();
            diag = diag.with_note(format!("unguarded call cycle: {}", path.join(" -> ")));
        }
        diag
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(func) = self.function {
            write!(f, " in `{}`", func)?;
        }
        if self.span != Span::DUMMY {
            write!(f, " at {}..{}", self.span.lo, self.span.hi)?;
        }
        write!(f, ": {}", self.message)?;
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        Ok(())
    }
}

/// An ordered collection of findings (source order within a function,
/// function order within a program).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    /// The findings.
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty report.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the findings.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.items.iter()
    }

    /// Appends one finding.
    pub fn push(&mut self, diag: Diagnostic) {
        self.items.push(diag);
    }

    /// Appends all findings from `other`.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.iter().filter(|d| d.severity == Severity::Deny).count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when any finding is deny-level.
    pub fn has_deny(&self) -> bool {
        self.iter().any(|d| d.severity == Severity::Deny)
    }

    /// The deny-level findings only.
    pub fn denies(&self) -> impl Iterator<Item = &Diagnostic> {
        self.iter().filter(|d| d.severity == Severity::Deny)
    }

    /// The warnings only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.iter().filter(|d| d.severity == Severity::Warning)
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}
