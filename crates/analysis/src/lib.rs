//! Static diagnostics over MiniC: a span-preserving AST-level CFG, a
//! generic monotone-framework worklist solver, and the lint suite built
//! on top of them.
//!
//! SLING itself is purely dynamic — it learns invariants from models the
//! tracer observes at snapshot locations. That makes three classes of
//! program defect silently corrosive rather than loud: a snapshot
//! location no path reaches yields an *empty* inference site, an
//! uninitialized or definitely-null pointer kills the run at trace
//! time, and dead stores add noise to every model. This crate is the
//! static complement: it grades a program *before* the engine runs it,
//! as
//!
//! * a **build gate** — `EngineBuilder::static_analysis` fails the
//!   build on deny-level findings;
//! * an **upload gate** — the `sling-serve` daemon analyzes every
//!   uploaded tenant program before pooling an engine for it, and
//!   rejects hostile or broken uploads with a typed wire diagnostic
//!   frame;
//! * an **inference pre-filter** — statically-unreachable snapshot
//!   locations are attached to reports, so an empty site is explained
//!   instead of silent.
//!
//! # Lints
//!
//! | Code | Severity | Finding |
//! | --- | --- | --- |
//! | `SA001` | deny | use of a variable that is uninitialized on every path |
//! | `SA002` | warning | use of a variable that is uninitialized on some path |
//! | `SA003` | warning | dead store: no later statement *or snapshot* observes the value |
//! | `SA004` | warning | local variable never read |
//! | `SA005` | warning | unreachable statement |
//! | `SA006` | deny | unreachable snapshot location (empty inference site) |
//! | `SA007` | deny | dereference of a definitely-null pointer |
//! | `SL001` | deny | unproductive inductive-predicate cycle (re-homed from `check_pred_env`) |
//!
//! # Example
//!
//! ```
//! use sling_analysis::{analyze_program, AnalysisSettings};
//! use sling_lang::parse_program;
//!
//! let program = parse_program(
//!     "fn f(x: int) -> int {
//!          var y: int;
//!          return y;
//!      }",
//! )?;
//! let analysis = analyze_program(&program, &AnalysisSettings::default());
//! assert!(analysis.diagnostics.has_deny()); // SA001: `y` never initialized
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod diag;
mod lints;
pub mod solver;

use std::collections::BTreeMap;

use sling_lang::{FuncDecl, Location, Program};
use sling_logic::Symbol;

pub use cfg::{Cfg, EdgeKind, NodeId, NodeKind};
pub use diag::{codes, Diagnostic, Diagnostics, Severity};
pub use solver::{solve, Analysis, Direction, Solution};

/// Which lints run, and how strictly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisSettings {
    /// Use-before-init (`SA001`/`SA002`).
    pub init: bool,
    /// Dead stores and unused variables (`SA003`/`SA004`).
    pub liveness: bool,
    /// Unreachable statements and snapshot locations (`SA005`/`SA006`).
    pub reachability: bool,
    /// Definite-null dereferences (`SA007`).
    pub nullness: bool,
    /// Escalate every warning to deny level.
    pub deny_warnings: bool,
}

impl Default for AnalysisSettings {
    fn default() -> AnalysisSettings {
        AnalysisSettings {
            init: true,
            liveness: true,
            reachability: true,
            nullness: true,
            deny_warnings: false,
        }
    }
}

/// The result of analyzing one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FunctionAnalysis {
    /// Findings, in lint order then source order.
    pub diagnostics: Diagnostics,
    /// Declared snapshot locations no control-flow path reaches, in
    /// declaration order (a subset of `Program::locations_of`).
    pub unreachable_locations: Vec<Location>,
}

/// The result of analyzing a whole program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramAnalysis {
    /// All findings, functions in declaration order.
    pub diagnostics: Diagnostics,
    /// Per-function statically-unreachable snapshot locations (only
    /// functions that have any appear).
    pub unreachable: BTreeMap<Symbol, Vec<Location>>,
}

impl ProgramAnalysis {
    /// The unreachable locations of `func`, empty when none.
    pub fn unreachable_in(&self, func: Symbol) -> &[Location] {
        self.unreachable
            .get(&func)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Analyzes one function.
pub fn analyze_function(func: &FuncDecl, settings: &AnalysisSettings) -> FunctionAnalysis {
    let cfg = Cfg::build(func);
    let info = lints::FnInfo::new(func);
    let mut diagnostics = Diagnostics::new();
    let mut unreachable_locations = Vec::new();
    if settings.reachability {
        unreachable_locations = lints::reach::run(&cfg, &mut diagnostics);
    }
    if settings.init {
        lints::init::run(&cfg, &info, &mut diagnostics);
    }
    if settings.liveness {
        lints::live::run(&cfg, &info, &mut diagnostics);
    }
    if settings.nullness {
        lints::null::run(&cfg, &info, &mut diagnostics);
    }
    if settings.deny_warnings {
        for d in &mut diagnostics.items {
            d.severity = Severity::Deny;
        }
    }
    FunctionAnalysis {
        diagnostics,
        unreachable_locations,
    }
}

/// Analyzes every function of `program`.
pub fn analyze_program(program: &Program, settings: &AnalysisSettings) -> ProgramAnalysis {
    let mut out = ProgramAnalysis::default();
    for func in &program.funcs {
        let fa = analyze_function(func, settings);
        if !fa.unreachable_locations.is_empty() {
            out.unreachable.insert(func.name, fa.unreachable_locations);
        }
        out.diagnostics.extend(fa.diagnostics);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::parse_program;

    fn analyze(src: &str) -> ProgramAnalysis {
        let program = parse_program(src).expect("test source parses");
        analyze_program(&program, &AnalysisSettings::default())
    }

    fn codes_of(a: &ProgramAnalysis) -> Vec<&str> {
        a.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_function_is_clean() {
        let a = analyze(
            "struct N { next: N*; }
             fn len(x: N*) -> int {
                 var n: int = 0;
                 while @inv (x != null) { x = x->next; n = n + 1; }
                 return n;
             }",
        );
        assert!(a.diagnostics.is_empty(), "{}", a.diagnostics);
        assert!(a.unreachable.is_empty());
    }

    #[test]
    fn definite_use_before_init_is_deny() {
        let a = analyze("fn f() -> int { var y: int; return y; }");
        assert_eq!(codes_of(&a), vec![codes::USE_BEFORE_INIT]);
        assert!(a.diagnostics.has_deny());
    }

    #[test]
    fn branch_init_is_a_warning_only() {
        let a = analyze(
            "fn f(c: bool) -> int {
                 var y: int;
                 if (c) { y = 1; }
                 return y;
             }",
        );
        assert_eq!(codes_of(&a), vec![codes::MAYBE_UNINIT]);
        assert!(!a.diagnostics.has_deny());
    }

    #[test]
    fn both_branches_init_is_clean() {
        let a = analyze(
            "fn f(c: bool) -> int {
                 var y: int;
                 if (c) { y = 1; } else { y = 2; }
                 return y;
             }",
        );
        assert!(a.diagnostics.is_empty(), "{}", a.diagnostics);
    }

    #[test]
    fn overwritten_store_is_dead() {
        let a = analyze(
            "fn f() -> int {
                 var x: int = 1;
                 x = 2;
                 return x;
             }",
        );
        assert_eq!(codes_of(&a), vec![codes::DEAD_STORE]);
    }

    #[test]
    fn snapshot_between_stores_keeps_the_first_alive() {
        let a = analyze(
            "fn f() -> int {
                 var x: int = 1;
                 @mid;
                 x = 2;
                 return x;
             }",
        );
        assert!(a.diagnostics.is_empty(), "{}", a.diagnostics);
    }

    #[test]
    fn unused_local_is_reported_once() {
        let a = analyze(
            "fn f() -> int {
                 var x: int = 1;
                 return 0;
             }",
        );
        assert_eq!(codes_of(&a), vec![codes::UNUSED_VAR]);
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let a = analyze(
            "fn f() -> int {
                 return 1;
                 var x: int = 2;
                 var y: int = 3;
             }",
        );
        // One SA005 for the dead region head; the dead stores/unused
        // vars inside the dead region are not separately reported
        // (unused is syntactic, so those two still count).
        assert!(codes_of(&a).contains(&codes::UNREACHABLE_STMT));
    }

    #[test]
    fn unreachable_label_is_deny_and_listed() {
        let a = analyze(
            "fn f() -> int {
                 return 1;
                 @dead;
             }",
        );
        assert!(codes_of(&a).contains(&codes::UNREACHABLE_LOCATION));
        assert!(a.diagnostics.has_deny());
        assert_eq!(
            a.unreachable_in(sling_logic::Symbol::intern("f")),
            &[Location::Label(sling_logic::Symbol::intern("dead"))]
        );
    }

    #[test]
    fn unreachable_second_return_is_a_dead_exit() {
        let a = analyze("fn f() -> int { return 1; return 2; }");
        assert!(codes_of(&a).contains(&codes::UNREACHABLE_LOCATION));
        assert_eq!(
            a.unreachable_in(sling_logic::Symbol::intern("f")),
            &[Location::Exit(1)]
        );
    }

    #[test]
    fn null_branch_deref_is_deny() {
        let a = analyze(
            "struct N { next: N*; }
             fn f(x: N*) -> N* {
                 if (x == null) { x->next = null; }
                 return x;
             }",
        );
        assert_eq!(codes_of(&a), vec![codes::NULL_DEREF]);
    }

    #[test]
    fn nonnull_branch_deref_is_clean() {
        let a = analyze(
            "struct N { next: N*; }
             fn f(x: N*) -> N* {
                 if (x != null) { x->next = null; }
                 return x;
             }",
        );
        assert!(a.diagnostics.is_empty(), "{}", a.diagnostics);
    }

    #[test]
    fn null_literal_assignment_then_deref_is_deny() {
        let a = analyze(
            "struct N { next: N*; }
             fn f() -> N* {
                 var x: N* = null;
                 return x->next;
             }",
        );
        assert_eq!(codes_of(&a), vec![codes::NULL_DEREF]);
    }

    #[test]
    fn reassignment_clears_nullness() {
        let a = analyze(
            "struct N { next: N*; }
             fn f() -> N* {
                 var x: N* = null;
                 x = new N { next: null };
                 return x->next;
             }",
        );
        // The dead `null` initializer is (correctly) warned about, but
        // the deref is clean: reassignment cleared the nullness.
        assert_eq!(codes_of(&a), vec![codes::DEAD_STORE]);
    }

    #[test]
    fn deny_warnings_escalates() {
        let program = parse_program("fn f() -> int { var x: int = 1; return 0; }").unwrap();
        let settings = AnalysisSettings {
            deny_warnings: true,
            ..AnalysisSettings::default()
        };
        let a = analyze_program(&program, &settings);
        assert!(a.diagnostics.has_deny());
    }

    #[test]
    fn analysis_is_deterministic() {
        let src = "struct N { next: N*; }
             fn f(x: N*, c: bool) -> N* {
                 var y: N*;
                 if (c) { y = x; }
                 while @w (x != null) { x = x->next; }
                 return y;
                 @dead;
             }";
        assert_eq!(analyze(src), analyze(src));
    }
}
