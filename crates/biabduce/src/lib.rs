//! A deliberately scoped bi-abduction static analyzer — the stand-in for
//! the S2 tool in the paper's Table 2 comparison (see DESIGN.md §1).
//!
//! The real S2 (Le et al., CAV'14) uses second-order bi-abduction over
//! full C. This crate implements the same *kind* of analysis — forward
//! symbolic execution over symbolic heaps, unfolding shape predicates at
//! dereferences and folding the final state back into predicate instances
//! — over MiniC, restricted to the fragment where that style of analysis
//! is strong:
//!
//! * **recursive** functions (no loops: loop invariants would need
//!   widening this baseline does not implement — matching Table 2, where
//!   S2 misses almost all iterative glib programs);
//! * structures describable by a **unary pointer predicate** (`sll`,
//!   `tree`, ...): doubly linked, nested, or parameter-rich predicates
//!   (`dll/4`, `bst/3`) are out of scope — matching S2's published
//!   profile (0/13 DLL properties found);
//! * self-calls handled by the **inductive summary** `{shape(p⃗)} f
//!   {shape(res)}`, fresh-chunk havocking the result.
//!
//! The output is a specification in the same formula vocabulary SLING
//! uses, so the Table 2 harness can run one property matcher over both
//! tools' results.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

use sling_lang::{BinOp, Block, Expr, ExprKind, FuncDecl, LValue, Program, Stmt, StmtKind, UnOp};
use sling_logic::{FieldTy, FreshVars, PredDef, PredEnv, SpatialAtom, SymHeap, Symbol};

/// Why the baseline declined a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsupported {
    /// The function contains a loop (no widening implemented).
    Loop,
    /// No unary shape predicate describes the parameter's structure.
    NoShapePredicate(Symbol),
    /// A call to a function other than the target itself.
    ExternalCall(Symbol),
    /// Dereference of a pointer with no materialized cell or chunk.
    UnknownPointer,
    /// The final heap of some path does not fold back into predicates.
    FoldFailure,
    /// State explosion (fork/step budget exhausted).
    Budget,
    /// The function has no pointer parameter or target is missing.
    NotApplicable,
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unsupported::Loop => f.write_str("loops are outside the supported fragment"),
            Unsupported::NoShapePredicate(t) => {
                write!(f, "no unary shape predicate for struct `{t}`")
            }
            Unsupported::ExternalCall(n) => write!(f, "call to external function `{n}`"),
            Unsupported::UnknownPointer => f.write_str("dereference of unknown pointer"),
            Unsupported::FoldFailure => f.write_str("final state does not fold into predicates"),
            Unsupported::Budget => f.write_str("state budget exhausted"),
            Unsupported::NotApplicable => f.write_str("not applicable"),
        }
    }
}

impl std::error::Error for Unsupported {}

/// A specification inferred by the baseline.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Precondition over the parameters.
    pub pre: SymHeap,
    /// One postcondition per reachable exit index.
    pub posts: Vec<(usize, SymHeap)>,
}

/// Infers a specification for `target`, or explains why it cannot.
///
/// # Errors
///
/// Returns [`Unsupported`] for programs outside the fragment.
pub fn infer_spec(program: &Program, target: Symbol, preds: &PredEnv) -> Result<Spec, Unsupported> {
    let func = program.func(target).ok_or(Unsupported::NotApplicable)?;
    reject_loops(&func.body)?;

    // Map each pointer-parameter struct to its unary shape predicate.
    let mut shapes: BTreeMap<Symbol, &PredDef> = BTreeMap::new();
    for p in &func.params {
        if let sling_lang::TyExpr::Ptr(s) = p.ty {
            let def = unary_shape_pred(preds, s).ok_or(Unsupported::NoShapePredicate(s))?;
            shapes.insert(s, def);
        }
    }
    if shapes.is_empty()
        && func
            .params
            .iter()
            .any(|p| matches!(p.ty, sling_lang::TyExpr::Ptr(_)))
    {
        return Err(Unsupported::NotApplicable);
    }

    let mut exec = Exec {
        program,
        func,
        shapes,
        states_explored: 0,
        exits: BTreeMap::new(),
        exit_index: index_returns(&func.body),
    };
    let init = State::initial(func);
    exec.run_block(&func.body, init)?;

    // Fold every exit state; all states at an exit must agree on the
    // post skeleton (we take the disjunction-free strongest common form:
    // if they differ we keep each as its own exit entry only when one
    // state reached it).
    let mut posts = Vec::new();
    for (exit, states) in &exec.exits {
        let mut folded: Option<SymHeap> = None;
        for st in states {
            let f = fold_state(st, &exec.shapes)?;
            match &folded {
                None => folded = Some(f),
                Some(prev) if *prev == f => {}
                // Differing posts at one syntactic exit: keep the weaker
                // common shape by requiring equality (S2-style strongest
                // spec search gives up here).
                Some(_) => return Err(Unsupported::FoldFailure),
            }
        }
        if let Some(f) = folded {
            posts.push((*exit, f));
        }
    }

    // Precondition: shape(p) for every pointer parameter.
    let mut pre = SymHeap::emp();
    for p in &func.params {
        if let sling_lang::TyExpr::Ptr(s) = p.ty {
            let def = exec.shapes[&s];
            pre = pre.star(SymHeap {
                exists: vec![],
                spatial: vec![SpatialAtom::Pred {
                    name: def.name,
                    args: vec![sling_logic::Expr::Var(p.name)],
                }],
                pure: vec![],
            });
        }
    }
    Ok(Spec { pre, posts })
}

/// Finds a predicate with exactly one pointer parameter of type `ty`
/// (extra *int* parameters disqualify it: the baseline has no data
/// reasoning).
fn unary_shape_pred(preds: &PredEnv, ty: Symbol) -> Option<&PredDef> {
    preds
        .iter()
        .find(|d| d.params.len() == 1 && d.params[0].ty == FieldTy::Ptr(ty))
}

fn reject_loops(block: &Block) -> Result<(), Unsupported> {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::While { .. } => return Err(Unsupported::Loop),
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                reject_loops(then_blk)?;
                if let Some(e) = else_blk {
                    reject_loops(e)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn index_returns(block: &Block) -> BTreeMap<*const Stmt, usize> {
    let mut map = BTreeMap::new();
    let mut idx = 0usize;
    fn walk(block: &Block, map: &mut BTreeMap<*const Stmt, usize>, idx: &mut usize) {
        for stmt in &block.stmts {
            match &stmt.kind {
                StmtKind::Return(_) => {
                    map.insert(stmt as *const Stmt, *idx);
                    *idx += 1;
                }
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    walk(then_blk, map, idx);
                    if let Some(e) = else_blk {
                        walk(e, map, idx);
                    }
                }
                StmtKind::While { body, .. } => walk(body, map, idx),
                _ => {}
            }
        }
    }
    walk(block, &mut map, &mut idx);
    map
}

/// A symbolic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SV {
    /// Definitely null.
    Null,
    /// A symbolic heap object (cell or shape chunk).
    Obj(u32),
    /// An unconstrained integer.
    Int,
}

/// A materialized cell: concrete fields.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cell {
    ty: Symbol,
    fields: Vec<SV>,
}

/// One symbolic state.
#[derive(Debug, Clone)]
struct State {
    env: BTreeMap<Symbol, SV>,
    cells: BTreeMap<u32, Cell>,
    /// Unmaterialized shape chunks: object id → struct type.
    chunks: BTreeMap<u32, Symbol>,
    next: u32,
    /// The value returned, once a `return` executes.
    result: Option<SV>,
}

impl State {
    fn initial(func: &FuncDecl) -> State {
        let mut st = State {
            env: BTreeMap::new(),
            cells: BTreeMap::new(),
            chunks: BTreeMap::new(),
            next: 1,
            result: None,
        };
        for p in &func.params {
            let v = match p.ty {
                sling_lang::TyExpr::Ptr(s) => {
                    let id = st.fresh();
                    st.chunks.insert(id, s);
                    SV::Obj(id)
                }
                _ => SV::Int,
            };
            st.env.insert(p.name, v);
        }
        st
    }

    fn fresh(&mut self) -> u32 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Replaces every occurrence of `Obj(id)` with `Null` (a chunk
    /// assumed empty by a null-test fork).
    fn assume_null(&mut self, id: u32) {
        self.chunks.remove(&id);
        for v in self.env.values_mut() {
            if *v == SV::Obj(id) {
                *v = SV::Null;
            }
        }
        for c in self.cells.values_mut() {
            for f in &mut c.fields {
                if *f == SV::Obj(id) {
                    *f = SV::Null;
                }
            }
        }
    }
}

struct Exec<'a> {
    program: &'a Program,
    func: &'a FuncDecl,
    shapes: BTreeMap<Symbol, &'a PredDef>,
    states_explored: u32,
    exits: BTreeMap<usize, Vec<State>>,
    exit_index: BTreeMap<*const Stmt, usize>,
}

const MAX_STATES: u32 = 512;

enum Outcome {
    /// Execution continues with these states.
    Cont(Vec<State>),
}

impl<'a> Exec<'a> {
    fn budget(&mut self) -> Result<(), Unsupported> {
        self.states_explored += 1;
        if self.states_explored > MAX_STATES {
            return Err(Unsupported::Budget);
        }
        Ok(())
    }

    fn run_block(&mut self, block: &Block, state: State) -> Result<Outcome, Unsupported> {
        let mut states = vec![state];
        for stmt in &block.stmts {
            let mut next = Vec::new();
            for st in states {
                if st.result.is_some() {
                    continue; // already returned on this path
                }
                let Outcome::Cont(out) = self.run_stmt(stmt, st)?;
                next.extend(out);
            }
            states = next;
            if states.is_empty() {
                break;
            }
        }
        Ok(Outcome::Cont(states))
    }

    fn run_stmt(&mut self, stmt: &Stmt, mut st: State) -> Result<Outcome, Unsupported> {
        self.budget()?;
        match &stmt.kind {
            StmtKind::While { .. } => Err(Unsupported::Loop),
            StmtKind::VarDecl { name, ty, init } => {
                let mut states = match init {
                    Some(e) => self.eval(e, st)?,
                    None => vec![(
                        match ty {
                            sling_lang::TyExpr::Ptr(_) => SV::Null,
                            _ => SV::Int,
                        },
                        st,
                    )],
                };
                for (v, s) in &mut states {
                    s.env.insert(*name, *v);
                }
                Ok(Outcome::Cont(states.into_iter().map(|(_, s)| s).collect()))
            }
            StmtKind::Assign { lhs, rhs } => {
                let vals = self.eval(rhs, st)?;
                let mut out = Vec::new();
                for (v, mut s) in vals {
                    match lhs {
                        LValue::Var(x) => {
                            s.env.insert(*x, v);
                            out.push(s);
                        }
                        LValue::Field(base, field) => {
                            for (bv, mut s2) in self.eval(base, s.clone())? {
                                let id = self.materialize(&mut s2, bv)?;
                                let idx = self.field_idx(&s2, id, *field)?;
                                s2.cells.get_mut(&id).expect("materialized").fields[idx] = v;
                                out.push(s2);
                            }
                        }
                    }
                }
                Ok(Outcome::Cont(out))
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let branches = self.eval_cond(cond, st)?;
                let mut out = Vec::new();
                for (truth, s) in branches {
                    let res = if truth {
                        self.run_block(then_blk, s)?
                    } else if let Some(e) = else_blk {
                        self.run_block(e, s)?
                    } else {
                        Outcome::Cont(vec![s])
                    };
                    let Outcome::Cont(states) = res;
                    out.extend(states);
                }
                Ok(Outcome::Cont(out))
            }
            StmtKind::Return(value) => {
                let idx = *self
                    .exit_index
                    .get(&(stmt as *const Stmt))
                    .expect("indexed");
                match value {
                    None => {
                        st.result = Some(SV::Null);
                        self.exits.entry(idx).or_default().push(st.clone());
                        Ok(Outcome::Cont(vec![st]))
                    }
                    Some(e) => {
                        let mut out = Vec::new();
                        for (v, mut s) in self.eval(e, st)? {
                            s.result = Some(v);
                            self.exits.entry(idx).or_default().push(s.clone());
                            out.push(s);
                        }
                        Ok(Outcome::Cont(out))
                    }
                }
            }
            StmtKind::Free(e) => {
                let mut out = Vec::new();
                for (v, mut s) in self.eval(e, st)? {
                    match v {
                        SV::Obj(id) if s.cells.contains_key(&id) => {
                            s.cells.remove(&id);
                            out.push(s);
                        }
                        // Freeing an unmaterialized chunk or null: out of
                        // fragment.
                        _ => return Err(Unsupported::UnknownPointer),
                    }
                }
                Ok(Outcome::Cont(out))
            }
            StmtKind::ExprStmt(e) => {
                let out = self.eval(e, st)?;
                Ok(Outcome::Cont(out.into_iter().map(|(_, s)| s).collect()))
            }
            StmtKind::Label(_) => Ok(Outcome::Cont(vec![st])),
        }
    }

    /// Evaluates an expression, forking as needed. Returns value/state
    /// pairs.
    fn eval(&mut self, e: &Expr, st: State) -> Result<Vec<(SV, State)>, Unsupported> {
        match &e.kind {
            ExprKind::Int(_) => Ok(vec![(SV::Int, st)]),
            ExprKind::Bool(_) => Ok(vec![(SV::Int, st)]),
            ExprKind::Null => Ok(vec![(SV::Null, st)]),
            ExprKind::Var(x) => {
                let v = *st.env.get(x).ok_or(Unsupported::UnknownPointer)?;
                Ok(vec![(v, st)])
            }
            ExprKind::Field(base, field) => {
                let mut out = Vec::new();
                for (bv, mut s) in self.eval(base, st)? {
                    let id = self.materialize(&mut s, bv)?;
                    let idx = self.field_idx(&s, id, *field)?;
                    let v = s.cells[&id].fields[idx];
                    out.push((v, s));
                }
                Ok(out)
            }
            ExprKind::New(ty, inits) => {
                let sdef = self
                    .program
                    .strukt(*ty)
                    .ok_or(Unsupported::UnknownPointer)?;
                let mut fields: Vec<SV> = sdef
                    .fields
                    .iter()
                    .map(|(_, t)| match t {
                        sling_lang::TyExpr::Ptr(_) => SV::Null,
                        _ => SV::Int,
                    })
                    .collect();
                let mut states = vec![(fields.clone(), st)];
                for (fname, fexpr) in inits {
                    let idx = sdef.fields.iter().position(|(n, _)| n == fname).unwrap();
                    let mut next = Vec::new();
                    for (f, s) in states {
                        for (v, s2) in self.eval(fexpr, s)? {
                            let mut f2 = f.clone();
                            f2[idx] = v;
                            next.push((f2, s2));
                        }
                    }
                    states = next;
                }
                let mut out = Vec::new();
                for (f, mut s) in states {
                    let id = s.fresh();
                    s.cells.insert(
                        id,
                        Cell {
                            ty: *ty,
                            fields: f.clone(),
                        },
                    );
                    out.push((SV::Obj(id), s));
                }
                fields.clear();
                Ok(out)
            }
            ExprKind::Unary(UnOp::Neg, _) => Ok(vec![(SV::Int, st)]),
            ExprKind::Unary(UnOp::Not, inner) => {
                // Boolean negation: evaluate for effect/forks only.
                let out = self.eval_cond(inner, st)?;
                Ok(out.into_iter().map(|(_, s)| (SV::Int, s)).collect())
            }
            ExprKind::Binary(op, a, b) => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                    let mut out = Vec::new();
                    for (_, s) in self.eval(a, st)? {
                        for (_, s2) in self.eval(b, s)? {
                            out.push((SV::Int, s2));
                        }
                    }
                    Ok(out)
                }
                _ => {
                    let branches = self.eval_cond(e, st)?;
                    Ok(branches.into_iter().map(|(_, s)| (SV::Int, s)).collect())
                }
            },
            ExprKind::Call(fname, args) => {
                if *fname != self.func.name {
                    return Err(Unsupported::ExternalCall(*fname));
                }
                // Inductive summary: arguments must be shape-typed (null,
                // chunk, or a cell that folds); result is a fresh chunk of
                // the return type.
                let mut states = vec![(Vec::<SV>::new(), st)];
                for a in args {
                    let mut next = Vec::new();
                    for (vals, s) in states {
                        for (v, s2) in self.eval(a, s)? {
                            let mut vs = vals.clone();
                            vs.push(v);
                            next.push((vs, s2));
                        }
                    }
                    states = next;
                }
                let mut out = Vec::new();
                for (vals, mut s) in states {
                    // Consume each pointer argument's footprint.
                    for (v, p) in vals.iter().zip(&self.func.params) {
                        if let sling_lang::TyExpr::Ptr(pty) = p.ty {
                            consume_shape(&mut s, *v, pty, &self.shapes)?;
                        }
                    }
                    let rv = match self.func.ret {
                        sling_lang::TyExpr::Ptr(rty) => {
                            let id = s.fresh();
                            s.chunks.insert(id, rty);
                            SV::Obj(id)
                        }
                        sling_lang::TyExpr::Void => SV::Null,
                        _ => SV::Int,
                    };
                    out.push((rv, s));
                }
                Ok(out)
            }
        }
    }

    /// Evaluates a condition, forking on pointer null tests.
    fn eval_cond(&mut self, e: &Expr, st: State) -> Result<Vec<(bool, State)>, Unsupported> {
        match &e.kind {
            ExprKind::Binary(BinOp::And, a, b) => {
                let mut out = Vec::new();
                for (ta, s) in self.eval_cond(a, st)? {
                    if ta {
                        out.extend(self.eval_cond(b, s)?);
                    } else {
                        out.push((false, s));
                    }
                }
                Ok(out)
            }
            ExprKind::Binary(BinOp::Or, a, b) => {
                let mut out = Vec::new();
                for (ta, s) in self.eval_cond(a, st)? {
                    if ta {
                        out.push((true, s));
                    } else {
                        out.extend(self.eval_cond(b, s)?);
                    }
                }
                Ok(out)
            }
            ExprKind::Unary(UnOp::Not, inner) => {
                let out = self.eval_cond(inner, st)?;
                Ok(out.into_iter().map(|(t, s)| (!t, s)).collect())
            }
            ExprKind::Binary(op @ (BinOp::Eq | BinOp::Ne), a, b) => {
                let mut out = Vec::new();
                for (va, s) in self.eval(a, st)? {
                    for (vb, s2) in self.eval(b, s.clone())? {
                        out.extend(self.decide_eq(va, vb, *op == BinOp::Eq, s2)?);
                    }
                }
                Ok(out)
            }
            // Integer comparisons: unconstrained, fork both ways.
            ExprKind::Binary(_, a, b) => {
                let mut out = Vec::new();
                for (_, s) in self.eval(a, st)? {
                    for (_, s2) in self.eval(b, s.clone())? {
                        out.push((true, s2.clone()));
                        out.push((false, s2));
                    }
                }
                Ok(out)
            }
            ExprKind::Bool(b) => Ok(vec![(*b, st)]),
            _ => {
                // Variable or call of bool type: fork.
                let vals = self.eval(e, st)?;
                let mut out = Vec::new();
                for (_, s) in vals {
                    out.push((true, s.clone()));
                    out.push((false, s));
                }
                Ok(out)
            }
        }
    }

    fn decide_eq(
        &mut self,
        a: SV,
        b: SV,
        is_eq: bool,
        st: State,
    ) -> Result<Vec<(bool, State)>, Unsupported> {
        let raw = match (a, b) {
            (SV::Null, SV::Null) => Some(true),
            (SV::Obj(x), SV::Obj(y)) if x == y => Some(true),
            (SV::Obj(x), SV::Obj(y)) => {
                // Distinct objects: cells are separate (≠); chunks might
                // both be empty, but shape analyses treat distinct
                // footprints as disequal — adopt that.
                let _ = (x, y);
                Some(false)
            }
            (SV::Int, _) | (_, SV::Int) => None, // unconstrained ints
            (SV::Null, SV::Obj(id)) | (SV::Obj(id), SV::Null) => {
                // The interesting fork: a chunk may be empty.
                if st.cells.contains_key(&id) {
                    Some(false) // materialized cell is non-null
                } else if st.chunks.contains_key(&id) {
                    let mut null_side = st.clone();
                    null_side.assume_null(id);
                    let nonnull_side = st;
                    return Ok(vec![(is_eq, null_side), (!is_eq, nonnull_side)]);
                } else {
                    // Dangling object id (freed): out of fragment.
                    return Err(Unsupported::UnknownPointer);
                }
            }
        };
        match raw {
            Some(t) => Ok(vec![(t == is_eq, st)]),
            None => Ok(vec![(true, st.clone()), (false, st)]),
        }
    }

    /// Ensures `v` is a materialized cell, unfolding a chunk if needed.
    fn materialize(&mut self, st: &mut State, v: SV) -> Result<u32, Unsupported> {
        match v {
            SV::Obj(id) if st.cells.contains_key(&id) => Ok(id),
            SV::Obj(id) => {
                let ty = *st.chunks.get(&id).ok_or(Unsupported::UnknownPointer)?;
                st.chunks.remove(&id);
                // Unfold: one cell whose recursive pointer fields are
                // fresh chunks of the same structure, other pointers null.
                let sdef = self.program.strukt(ty).ok_or(Unsupported::UnknownPointer)?;
                let mut fields = Vec::with_capacity(sdef.fields.len());
                for (_, fty) in &sdef.fields {
                    let fv = match fty {
                        sling_lang::TyExpr::Ptr(t) if *t == ty => {
                            let cid = st.fresh();
                            st.chunks.insert(cid, ty);
                            SV::Obj(cid)
                        }
                        sling_lang::TyExpr::Ptr(t) => {
                            // Nested foreign structure: supported only if
                            // it has its own shape predicate.
                            if self.shapes.contains_key(t) {
                                let cid = st.fresh();
                                st.chunks.insert(cid, *t);
                                SV::Obj(cid)
                            } else {
                                return Err(Unsupported::NoShapePredicate(*t));
                            }
                        }
                        _ => SV::Int,
                    };
                    fields.push(fv);
                }
                st.cells.insert(id, Cell { ty, fields });
                Ok(id)
            }
            SV::Null => Err(Unsupported::UnknownPointer),
            SV::Int => Err(Unsupported::UnknownPointer),
        }
    }

    fn field_idx(&self, st: &State, id: u32, field: Symbol) -> Result<usize, Unsupported> {
        let cell = st.cells.get(&id).ok_or(Unsupported::UnknownPointer)?;
        let sdef = self
            .program
            .strukt(cell.ty)
            .ok_or(Unsupported::UnknownPointer)?;
        sdef.fields
            .iter()
            .position(|(n, _)| *n == field)
            .ok_or(Unsupported::UnknownPointer)
    }
}

/// Consumes the footprint of `v` as one `shape(ty)` instance: null and
/// chunks are consumed directly; materialized cells fold recursively.
#[allow(clippy::only_used_in_recursion)]
fn consume_shape(
    st: &mut State,
    v: SV,
    ty: Symbol,
    shapes: &BTreeMap<Symbol, &PredDef>,
) -> Result<(), Unsupported> {
    match v {
        SV::Null => Ok(()),
        SV::Int => Err(Unsupported::UnknownPointer),
        SV::Obj(id) => {
            if let Some(cty) = st.chunks.get(&id).copied() {
                if cty != ty {
                    return Err(Unsupported::FoldFailure);
                }
                st.chunks.remove(&id);
                return Ok(());
            }
            let cell = st.cells.get(&id).cloned().ok_or(Unsupported::FoldFailure)?;
            if cell.ty != ty {
                return Err(Unsupported::FoldFailure);
            }
            st.cells.remove(&id);
            for f in cell.fields {
                match f {
                    SV::Int | SV::Null => {}
                    SV::Obj(_) => consume_shape(st, f, ty, shapes)?,
                }
            }
            Ok(())
        }
    }
}

/// Folds an exit state into a postcondition: the result and every
/// leftover parameter footprint must be shape instances, and no cell may
/// leak.
fn fold_state(state: &State, shapes: &BTreeMap<Symbol, &PredDef>) -> Result<SymHeap, Unsupported> {
    let mut st = state.clone();
    let mut atoms: Vec<SpatialAtom> = Vec::new();
    let mut fresh = FreshVars::new("v");

    // The result first.
    if let Some(rv) = st.result {
        if let SV::Obj(id) = rv {
            let ty = st
                .chunks
                .get(&id)
                .copied()
                .or_else(|| st.cells.get(&id).map(|c| c.ty))
                .ok_or(Unsupported::FoldFailure)?;
            let def = shapes.get(&ty).ok_or(Unsupported::NoShapePredicate(ty))?;
            consume_shape(&mut st, rv, ty, shapes)?;
            atoms.push(SpatialAtom::Pred {
                name: def.name,
                args: vec![sling_logic::Expr::Var(Symbol::intern("res"))],
            });
        }
    }

    // Remaining named footprints: parameters still pointing at objects.
    let param_names: Vec<Symbol> = st.env.keys().copied().collect();
    for name in param_names {
        let v = st.env[&name];
        if let SV::Obj(id) = v {
            let ty = st
                .chunks
                .get(&id)
                .copied()
                .or_else(|| st.cells.get(&id).map(|c| c.ty));
            if let Some(ty) = ty {
                let def = shapes.get(&ty).ok_or(Unsupported::NoShapePredicate(ty))?;
                consume_shape(&mut st, v, ty, shapes)?;
                atoms.push(SpatialAtom::Pred {
                    name: def.name,
                    args: vec![sling_logic::Expr::Var(name)],
                });
            }
        }
    }

    // Any unconsumed chunk or cell is a leak (or an unfoldable shape).
    if !st.cells.is_empty() || !st.chunks.is_empty() {
        return Err(Unsupported::FoldFailure);
    }
    let _ = fresh.take(0);
    Ok(SymHeap {
        exists: vec![],
        spatial: atoms,
        pure: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};
    use sling_logic::parse_predicates;

    fn preds() -> PredEnv {
        let mut env = PredEnv::new();
        for d in parse_predicates(
            "pred sll(x: SNode*) := emp & x == nil
               | exists u, d. x -> SNode{next: u, data: d} * sll(u);
             pred tree(t: TNode*) := emp & t == nil
               | exists l, r, d. t -> TNode{left: l, right: r, data: d} * tree(l) * tree(r);",
        )
        .unwrap()
        {
            env.define(d).unwrap();
        }
        env
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn infers_recursive_append() {
        let p = parse_program(
            "struct SNode { next: SNode*; data: int; }
             fn append(x: SNode*, y: SNode*) -> SNode* {
                 if (x == null) { return y; }
                 x->next = append(x->next, y);
                 return x;
             }",
        )
        .unwrap();
        check_program(&p).unwrap();
        let spec = infer_spec(&p, sym("append"), &preds()).expect("supported");
        assert_eq!(spec.pre.to_string(), "sll(x) * sll(y)");
        assert_eq!(spec.posts.len(), 2);
        for (_, post) in &spec.posts {
            assert!(post.to_string().contains("sll(res)"), "{post}");
        }
    }

    #[test]
    fn infers_tree_insert() {
        let p = parse_program(
            "struct TNode { left: TNode*; right: TNode*; data: int; }
             fn insert(t: TNode*, k: int) -> TNode* {
                 if (t == null) { return new TNode { data: k }; }
                 if (k < t->data) { t->left = insert(t->left, k); }
                 else { t->right = insert(t->right, k); }
                 return t;
             }",
        )
        .unwrap();
        check_program(&p).unwrap();
        let spec = infer_spec(&p, sym("insert"), &preds()).expect("supported");
        assert!(spec.pre.to_string().contains("tree(t)"));
    }

    #[test]
    fn rejects_loops() {
        let p = parse_program(
            "struct SNode { next: SNode*; data: int; }
             fn len(x: SNode*) -> int {
                 var n: int = 0;
                 while (x != null) { n = n + 1; x = x->next; }
                 return n;
             }",
        )
        .unwrap();
        check_program(&p).unwrap();
        assert!(matches!(
            infer_spec(&p, sym("len"), &preds()),
            Err(Unsupported::Loop)
        ));
    }

    #[test]
    fn rejects_dll_without_unary_pred() {
        let p = parse_program(
            "struct DNode { next: DNode*; prev: DNode*; }
             fn id(x: DNode*) -> DNode* { return x; }",
        )
        .unwrap();
        check_program(&p).unwrap();
        assert!(matches!(
            infer_spec(&p, sym("id"), &preds()),
            Err(Unsupported::NoShapePredicate(_))
        ));
    }

    #[test]
    fn infers_dispose() {
        let p = parse_program(
            "struct SNode { next: SNode*; data: int; }
             fn dispose(x: SNode*) {
                 if (x == null) { return; }
                 dispose(x->next);
                 free(x);
                 return;
             }",
        )
        .unwrap();
        check_program(&p).unwrap();
        let spec = infer_spec(&p, sym("dispose"), &preds()).expect("supported");
        assert_eq!(spec.pre.to_string(), "sll(x)");
        // Both exits leave the empty heap.
        for (_, post) in &spec.posts {
            assert_eq!(post.to_string(), "emp");
        }
    }
}
