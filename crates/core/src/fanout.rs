//! The work-stealing scaffold shared by both parallelism levels.
//!
//! [`Engine::analyze_all`](crate::Engine::analyze_all) (across
//! requests) and `run_target` (across the locations of one request) run
//! the same scheme: worker threads claim job indices from an atomic
//! cursor and park each result in its index slot, so assembly is in job
//! order — deterministic no matter which worker ran what.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `count` independent jobs over `workers` workers and returns the
/// results in job order. The calling thread is one of the workers
/// (`workers - 1` threads are spawned), so a `workers`-way fan-out
/// occupies exactly `workers` threads — nested fan-outs stay within the
/// budget their worker counts sum to. With `workers <= 1` (or a single
/// job) the jobs run inline — no spawn, identical results.
pub(crate) fn fan_out<T, F>(workers: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let work = || loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        if index >= count {
            break;
        }
        let result = job(index);
        *slots[index].lock().expect("result slot") = Some(result);
    };
    std::thread::scope(|scope| {
        for _ in 1..workers.min(count) {
            scope.spawn(work);
        }
        work();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every job index was claimed and ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 7] {
            let out = fan_out(workers, 20, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        assert!(fan_out::<usize, _>(4, 0, |i| i).is_empty());
    }
}
