//! Heap partitioning — the paper's `SplitHeap` (§4.1).
//!
//! Given the (residual) stack-heap models at a location and a root pointer
//! variable `v`, `SplitHeap` carves each heap into the *sub-heap* of `v`
//! (cells reachable from `v` stopping at cells other stack variables point
//! to) and the rest, and computes the *common boundary*: the variables —
//! plus `nil` — that delimit those sub-heaps across all models. The
//! boundary supplies the candidate arguments for `InferAtom`.

use std::collections::BTreeSet;

use sling_logic::{Expr, Symbol};
use sling_models::{traverse, Heap, Loc, StackHeapModel};

/// An element of a sub-heap boundary: the `nil` pointer or a stack
/// variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BoundaryItem {
    /// The null pointer (reachable from the root).
    Nil,
    /// A stack variable on the rim of (or aliasing into) the sub-heap.
    Var(Symbol),
}

impl BoundaryItem {
    /// The boundary item as a logic expression (predicate argument).
    pub fn to_expr(self) -> Expr {
        match self {
            BoundaryItem::Nil => Expr::Nil,
            BoundaryItem::Var(v) => Expr::Var(v),
        }
    }
}

impl std::fmt::Display for BoundaryItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundaryItem::Nil => f.write_str("nil"),
            BoundaryItem::Var(v) => write!(f, "{v}"),
        }
    }
}

/// Output of [`split_heap`]: per-model sub-heaps and rests, plus the
/// common boundary.
#[derive(Debug, Clone)]
pub struct Split {
    /// `SHv`: per model, the stack with the sub-heap of the root variable.
    pub sub_models: Vec<StackHeapModel>,
    /// `SHr`: per model, the remaining heap (`h \ h'`).
    pub rest: Vec<Heap>,
    /// The intersection of all models' boundaries.
    pub boundary: BTreeSet<BoundaryItem>,
}

/// Partitions each model's heap around the pointer variable `v`
/// (Algorithm 1, line 7: `SHv, SHr, B ← SplitHeap(SH, v)`).
///
/// For each model, a depth-first traversal from `s(v)` collects cells
/// until it reaches `nil` or a cell some *other, non-aliasing* stack
/// variable points to. The per-model boundary contains `v`, every
/// variable whose value lies in the sub-heap or on its rim, and `nil` if
/// it was reached; the common boundary is the intersection over models.
///
/// # Examples
///
/// See the paper's Figure 3: for the root `x` with stack
/// `{x: 0x01, tmp: 0x02, y: 0x04, res: 0x01}` and the 5-cell heap, the
/// sub-heap is `{0x01}` and the boundary `{x, res, nil, tmp}`.
pub fn split_heap(models: &[StackHeapModel], v: Symbol) -> Split {
    let mut sub_models = Vec::with_capacity(models.len());
    let mut rest = Vec::with_capacity(models.len());
    let mut common: Option<BTreeSet<BoundaryItem>> = None;

    for m in models {
        let root = m.stack.get(v).unwrap_or(sling_models::Val::Nil);
        // Stop at cells pointed to by other (non-aliasing) stack pointers.
        let stops: BTreeSet<Loc> = m
            .stack
            .iter()
            .filter(|(w, val)| *w != v && *val != root)
            .filter_map(|(_, val)| val.as_addr())
            .collect();
        let trav = traverse(&m.heap, root, &stops);
        let sub = m.heap.restrict(&trav.cells);
        let remaining = m.heap.difference(&sub);

        let mut boundary: BTreeSet<BoundaryItem> = BTreeSet::new();
        boundary.insert(BoundaryItem::Var(v));
        if trav.saw_nil {
            boundary.insert(BoundaryItem::Nil);
        }
        let rim: BTreeSet<Loc> = trav.cells.union(&trav.hit_stops).copied().collect();
        for (w, val) in m.stack.iter() {
            if let Some(loc) = val.as_addr() {
                if rim.contains(&loc) {
                    boundary.insert(BoundaryItem::Var(w));
                }
            }
        }

        common = Some(match common {
            None => boundary,
            Some(acc) => acc.intersection(&boundary).copied().collect(),
        });
        sub_models.push(StackHeapModel::new(m.stack.clone(), sub));
        rest.push(remaining);
    }

    Split {
        sub_models,
        rest,
        boundary: common.unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_models::{Heap, HeapCell, Loc, Stack, Val};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn l(n: u64) -> Loc {
        Loc::new(n)
    }

    fn dcell(next: Val, prev: Val) -> HeapCell {
        HeapCell::new(sym("Node"), vec![next, prev])
    }

    /// The Figure 2(b)/Figure 3 model at iteration `i`.
    fn fig3_model(i: u64) -> StackHeapModel {
        let mut heap = Heap::new();
        heap.insert(l(1), dcell(Val::Addr(l(2)), Val::Nil));
        heap.insert(l(2), dcell(Val::Addr(l(3)), Val::Addr(l(1))));
        heap.insert(l(3), dcell(Val::Addr(l(4)), Val::Addr(l(2))));
        heap.insert(l(4), dcell(Val::Addr(l(5)), Val::Addr(l(3))));
        heap.insert(l(5), dcell(Val::Nil, Val::Addr(l(4))));
        let mut stack = Stack::new();
        stack.bind(sym("x"), Val::Addr(l(i)));
        stack.bind(sym("tmp"), Val::Addr(l(i + 1)));
        stack.bind(sym("y"), Val::Addr(l(4)));
        stack.bind(sym("res"), Val::Addr(l(i)));
        StackHeapModel::new(stack, heap)
    }

    #[test]
    fn figure3_subheaps_and_boundary() {
        let models: Vec<StackHeapModel> = (1..=3).map(fig3_model).collect();
        let split = split_heap(&models, sym("x"));
        // h'1 = {0x01}, h'2 = {0x01, 0x02}, h'3 = {0x01, 0x02, 0x03}.
        assert_eq!(
            split.sub_models[0].heap.domain(),
            [l(1)].into_iter().collect()
        );
        assert_eq!(
            split.sub_models[1].heap.domain(),
            [l(1), l(2)].into_iter().collect()
        );
        assert_eq!(
            split.sub_models[2].heap.domain(),
            [l(1), l(2), l(3)].into_iter().collect()
        );
        // Common boundary = {x, res, nil, tmp} — y only appears in the
        // third model's boundary, so the intersection drops it.
        let expect: BTreeSet<BoundaryItem> = [
            BoundaryItem::Var(sym("x")),
            BoundaryItem::Var(sym("res")),
            BoundaryItem::Nil,
            BoundaryItem::Var(sym("tmp")),
        ]
        .into_iter()
        .collect();
        assert_eq!(split.boundary, expect);
        // Rest is the complement.
        assert_eq!(split.rest[0].len(), 4);
        assert_eq!(split.rest[2].len(), 2);
    }

    #[test]
    fn tmp_split_on_residue() {
        // After x's sub-heap is removed, splitting the residue on tmp
        // reaches y and stops; x is boundary via the dangling prev.
        let m = fig3_model(1);
        let split_x = split_heap(std::slice::from_ref(&m), sym("x"));
        let residue = StackHeapModel::new(m.stack.clone(), split_x.rest[0].clone());
        let split_tmp = split_heap(&[residue], sym("tmp"));
        assert_eq!(
            split_tmp.sub_models[0].heap.domain(),
            [l(2), l(3)].into_iter().collect()
        );
        let expect: BTreeSet<BoundaryItem> = [
            BoundaryItem::Var(sym("tmp")),
            BoundaryItem::Var(sym("x")),
            BoundaryItem::Var(sym("res")),
            BoundaryItem::Var(sym("y")),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            split_tmp.boundary, expect,
            "paper: boundary of tmp is {{tmp, x, res, y}}"
        );
    }

    #[test]
    fn nil_root_gives_empty_subheap() {
        let mut heap = Heap::new();
        heap.insert(l(1), dcell(Val::Nil, Val::Nil));
        let mut stack = Stack::new();
        stack.bind(sym("x"), Val::Nil);
        stack.bind(sym("y"), Val::Addr(l(1)));
        let m = StackHeapModel::new(stack, heap);
        let split = split_heap(&[m], sym("x"));
        assert!(split.sub_models[0].heap.is_empty());
        assert_eq!(split.rest[0].len(), 1);
        assert!(split.boundary.contains(&BoundaryItem::Nil));
        assert!(split.boundary.contains(&BoundaryItem::Var(sym("x"))));
        assert!(!split.boundary.contains(&BoundaryItem::Var(sym("y"))));
    }

    #[test]
    fn aliases_do_not_stop_traversal() {
        // z aliases x: traversal from x must pass straight through.
        let mut heap = Heap::new();
        heap.insert(l(1), dcell(Val::Addr(l(2)), Val::Nil));
        heap.insert(l(2), dcell(Val::Nil, Val::Addr(l(1))));
        let mut stack = Stack::new();
        stack.bind(sym("x"), Val::Addr(l(1)));
        stack.bind(sym("z"), Val::Addr(l(1)));
        let m = StackHeapModel::new(stack, heap);
        let split = split_heap(&[m], sym("x"));
        assert_eq!(split.sub_models[0].heap.len(), 2);
        assert!(split.boundary.contains(&BoundaryItem::Var(sym("z"))));
    }
}
