//! The versioned text wire codec for requests and reports.
//!
//! The analysis service (`sling-serve`) moves [`AnalysisRequest`]s and
//! [`Report`]s between processes as newline-delimited text frames. The
//! build environment is offline (no serde), so this module hand-rolls a
//! small, versioned, line-oriented codec: every frame is one line of
//! space-separated tokens, opened by the protocol tag [`WIRE_VERSION`]
//! and a frame kind, followed by the typed payload.
//!
//! # Grammar (version `sling7`)
//!
//! ```text
//! frame      := "sling7" SP kind SP payload          ; one line, LF-terminated on the wire
//! token      := atom | string | integer
//! atom       := [^ "\n]+                             ; bare word (tags, numbers)
//! string     := '"' escaped* '"'                     ; \\ \" \n \r \t escapes
//!
//! valuespec  := "nil" | "int" i64 | "intin" i64 i64
//!             | "list" listlayout len:u64 order circular:bool
//!             | "tree" treelayout size:u64 treekind
//!             | "exact" ncells:u64 exactcell*
//! listlayout := ty:string nfields:u64 next:u64 opt opt       ; prev, data
//! treelayout := ty:string nfields:u64 left:u64 right:u64 opt opt opt ; parent, data, color
//! exactcell  := ty:string nfields:u64 exactval*
//! exactval   := "nil" | "i" i64 | "c" idx:u64               ; c = intra-shape cell index
//! opt        := "-" | u64
//! order      := "rand" | "sorted" | "rev"
//! treekind   := "rand" | "bst" | "bal" | "rb"
//! bool       := "t" | "f"
//!
//! config     := node_budget:u64 fuel_slack:u64               ; checker limits
//!               results_per_var:u64 cands_per_pred:u64 nonvacuous:bool
//!               results_per_loc:u64 dedupe:bool models_per_loc:u64
//!               vm_steps:u64 vm_depth:u64 observe_freed:bool
//!               executor:("bytecode"|"treewalk") verify
//! verify     := "-" | "v" fuel:u64 depth:u64 models:u64 refs:u64 cegir:u64
//!
//! inputspec  := seed:u64 nargs:u64 valuespec*
//! override   := "-" | "cfg" config                   ; per-request SlingConfig
//! request    := target:string override ninputs:u64 inputspec*
//!
//! location   := "entry" | "exit" u64 | "label" string | "loop" string
//! val        := "nil" | "i" i64 | "a" u64
//! heap       := ncells:u64 (loc:u64 ty:string nfields:u64 val*)*
//! stats      := singletons:u64 preds:u64 pures:u64
//! grade      := "ungraded" | "verified" | "refuted" | "confirmed" | "unknown"
//! invariant  := location formula:string stats spurious:bool grade
//!               nresidues:u64 heap* nactivations:u64 u64*
//! locreport  := location models:u64 snaps:u64 tainted:bool ninv:u64 invariant*
//! metrics    := traces:u64 runs:u64 faulted:u64 workers:u64 seconds:f64bits
//!               verified:u64 refuted:u64 confirmed:u64 unknown:u64
//!               refuted0:u64 cegir:u64 vseconds:f64bits cseconds:f64bits
//!               bseconds:f64bits executor:("bytecode"|"treewalk") swarnings:u64
//!               rhits:u64 rmisses:u64 rdegraded:u64 rseconds:f64bits
//! cache      := hits:u64 warm:u64 misses:u64 entries:u64 evictions:u64 resident:u64
//!               rhits:u64 rmisses:u64 rdegraded:u64 rnanos:u64
//! severity   := "warn" | "deny"
//! diagnostic := code:string severity ("-" | "f" fn:string) lo:u64 hi:u64
//!               message:string nnotes:u64 note:string*
//! report     := target:string metrics cache ndecl:u64 location* nlocs:u64 locreport*
//!               nwarn:u64 diagnostic* nunreach:u64 location*
//! ```
//!
//! Formulas travel as their [`Display`](std::fmt::Display) text and are re-parsed with
//! [`sling_logic::parse_formula`] on decode — the printer guarantees the
//! round trip (up to binder names). `f64` values travel as their IEEE
//! bit pattern, so metrics round-trip exactly.
//!
//! Malformed input is rejected with a typed [`WireError`]; decoding
//! never panics. Frames from a different protocol version fail with
//! [`WireError::Version`] instead of being misparsed, so the tag can be
//! bumped safely.
//!
//! # Examples
//!
//! ```
//! use sling::{wire, AnalysisRequest, InputSpec, ValueSpec};
//!
//! let request = AnalysisRequest::new("reverse")
//!     .input(InputSpec::seeded(7).arg(ValueSpec::int_in(0, 9)));
//! let line = wire::encode_request(&request)?;
//! let back = wire::decode_request(&line)?;
//! assert_eq!(format!("{back:?}"), format!("{request:?}"));
//! # Ok::<(), sling::wire::WireError>(())
//! ```

use std::fmt;

use sling_analysis::{Diagnostic, Severity};
use sling_lang::{DataOrder, ListLayout, Location, TreeKind, TreeLayout};
use sling_logic::{parse_formula, Span, Symbol};
use sling_models::{Heap, HeapCell, Loc, Val};

use crate::collect::Executor;
use crate::pipeline::{SlingConfig, VerifySettings};
use crate::report::{
    Invariant, InvariantGrade, InvariantStats, LocationAnalysis, Report, RunMetrics,
};
use crate::request::{AnalysisRequest, InputSource};
use crate::spec::{ExactCell, ExactVal, InputSpec, ValueSpec};
use crate::CacheStats;

/// Protocol tag opening every frame; bump on any grammar change.
/// (`sling7` grew `cache` and `metrics` with the remote-tier counters
/// (hits, misses, degraded, round-trip time) — and, in the remote-cache
/// layer, the `get`/`put`/`sync` productions of the distributed
/// entailment-cache tier (see [`crate::remote`]);
/// `sling6` added the static-diagnostics payloads: the `diagnostic`
/// production, the warning count in `metrics`, the warning and
/// unreachable-location lists in `report` — and, in the serve layer,
/// the `rejected` frame the upload gate answers hostile programs with;
/// `sling5` added the per-request config-override slot to `request`
/// frames — and, in the serve layer, program-upload slots on `analyze`
/// frames plus pool statistics on `hello`/`done`; `sling4` extended
/// `metrics` with the collection/compile timings and the executor tag;
/// `sling3` added the `exact` value spec, the per-invariant
/// verification grade, and the verification counters in `metrics`;
/// `sling2` extended `cachestats` with eviction and residency
/// counters. Older peers are rejected with [`WireError::Version`]
/// rather than misparsed.)
pub const WIRE_VERSION: &str = "sling7";

/// Why a wire frame could not be encoded or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The token stream is malformed (truncated, bad tag, bad number,
    /// unterminated string, trailing garbage, ...).
    Syntax(String),
    /// The frame opens with a protocol tag other than [`WIRE_VERSION`].
    Version(String),
    /// The value cannot travel over the wire at all (custom input
    /// closures).
    Unsupported(String),
    /// A formula payload failed to re-parse on decode.
    Formula(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Syntax(why) => write!(f, "malformed wire frame: {why}"),
            WireError::Version(found) => write!(
                f,
                "unsupported wire protocol `{found}` (this build speaks `{WIRE_VERSION}`)"
            ),
            WireError::Unsupported(what) => write!(f, "not expressible on the wire: {what}"),
            WireError::Formula(why) => write!(f, "formula failed to re-parse: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

fn syntax(why: impl Into<String>) -> WireError {
    WireError::Syntax(why.into())
}

// ---------------------------------------------------------------------
// Token layer
// ---------------------------------------------------------------------

/// Appends space-separated tokens to one frame line.
///
/// Strings are quoted and escaped; everything else is a bare atom. The
/// finished line contains no newline — the transport adds the `\n` frame
/// delimiter.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: String,
}

impl WireWriter {
    /// An empty line.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Opens a frame: protocol tag plus frame kind.
    pub fn frame(kind: &str) -> WireWriter {
        let mut w = WireWriter::new();
        w.atom(WIRE_VERSION);
        w.atom(kind);
        w
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
    }

    /// Appends a bare token (must contain no spaces, quotes, or
    /// newlines — tags and numbers only).
    pub fn atom(&mut self, token: &str) {
        debug_assert!(
            !token.is_empty() && !token.contains([' ', '"', '\n', '\r']),
            "atoms must be bare words: {token:?}"
        );
        self.sep();
        self.buf.push_str(token);
    }

    /// Appends a quoted, escaped string token (arbitrary content).
    pub fn text(&mut self, s: &str) {
        self.sep();
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '\\' => self.buf.push_str("\\\\"),
                '"' => self.buf.push_str("\\\""),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Appends an unsigned integer.
    pub fn u64(&mut self, n: u64) {
        use std::fmt::Write as _;
        self.sep();
        let _ = write!(self.buf, "{n}");
    }

    /// Appends a signed integer.
    pub fn i64(&mut self, n: i64) {
        use std::fmt::Write as _;
        self.sep();
        let _ = write!(self.buf, "{n}");
    }

    /// Appends a boolean (`t` / `f`).
    pub fn bool(&mut self, b: bool) {
        self.atom(if b { "t" } else { "f" });
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// Appends an optional index (`-` when absent).
    pub fn opt(&mut self, n: Option<usize>) {
        match n {
            None => self.atom("-"),
            Some(n) => self.u64(n as u64),
        }
    }

    /// The finished frame line (no trailing newline).
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Consumes the tokens of one frame line.
#[derive(Debug)]
pub struct WireReader<'a> {
    rest: &'a str,
}

impl<'a> WireReader<'a> {
    /// A reader over one frame line.
    pub fn new(line: &'a str) -> WireReader<'a> {
        WireReader {
            rest: line.trim_end_matches(['\n', '\r']),
        }
    }

    /// Opens a frame: checks the protocol tag, returns the frame kind
    /// and a reader positioned at the payload.
    pub fn frame(line: &'a str) -> Result<(&'a str, WireReader<'a>), WireError> {
        let mut r = WireReader::new(line);
        let tag = r.atom()?;
        if tag != WIRE_VERSION {
            return Err(WireError::Version(tag.to_string()));
        }
        let kind = r.atom()?;
        Ok((kind, r))
    }

    fn skip_spaces(&mut self) {
        self.rest = self.rest.trim_start_matches(' ');
    }

    /// Reads one bare token.
    pub fn atom(&mut self) -> Result<&'a str, WireError> {
        self.skip_spaces();
        if self.rest.is_empty() {
            return Err(syntax("unexpected end of frame"));
        }
        if self.rest.starts_with('"') {
            return Err(syntax("expected atom, found string"));
        }
        let end = self.rest.find(' ').unwrap_or(self.rest.len());
        let (token, rest) = self.rest.split_at(end);
        self.rest = rest;
        Ok(token)
    }

    /// Reads one bare token and checks it equals `expected`.
    pub fn expect(&mut self, expected: &str) -> Result<(), WireError> {
        let found = self.atom()?;
        if found == expected {
            Ok(())
        } else {
            Err(syntax(format!("expected `{expected}`, found `{found}`")))
        }
    }

    /// Reads one quoted string token, undoing the escapes.
    pub fn text(&mut self) -> Result<String, WireError> {
        self.skip_spaces();
        let mut chars = self.rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            Some(_) => return Err(syntax("expected string, found atom")),
            None => return Err(syntax("unexpected end of frame")),
        }
        let mut out = String::new();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, c)) => return Err(syntax(format!("bad escape `\\{c}`"))),
                    None => return Err(syntax("unterminated escape")),
                },
                c => out.push(c),
            }
        }
        Err(syntax("unterminated string"))
    }

    /// Reads an unsigned integer.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let token = self.atom()?;
        token
            .parse::<u64>()
            .map_err(|_| syntax(format!("bad integer `{token}`")))
    }

    /// Reads an unsigned integer as `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| syntax("integer out of range"))
    }

    /// Reads a signed integer.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        let token = self.atom()?;
        token
            .parse::<i64>()
            .map_err(|_| syntax(format!("bad integer `{token}`")))
    }

    /// Reads a boolean (`t` / `f`).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.atom()? {
            "t" => Ok(true),
            "f" => Ok(false),
            other => Err(syntax(format!("bad bool `{other}`"))),
        }
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an optional index (`-` for absent).
    pub fn opt(&mut self) -> Result<Option<usize>, WireError> {
        self.skip_spaces();
        if self.rest.starts_with('-') {
            self.atom()?;
            return Ok(None);
        }
        Ok(Some(self.usize()?))
    }

    /// Asserts every token was consumed.
    pub fn finish(&mut self) -> Result<(), WireError> {
        self.skip_spaces();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(syntax(format!("trailing tokens: `{}`", self.rest)))
        }
    }
}

// ---------------------------------------------------------------------
// Specs and requests
// ---------------------------------------------------------------------

fn write_list_layout(w: &mut WireWriter, l: &ListLayout) {
    w.text(&l.ty.to_string());
    w.u64(l.nfields as u64);
    w.u64(l.next as u64);
    w.opt(l.prev);
    w.opt(l.data);
}

fn read_list_layout(r: &mut WireReader<'_>) -> Result<ListLayout, WireError> {
    Ok(ListLayout {
        ty: Symbol::intern(&r.text()?),
        nfields: r.usize()?,
        next: r.usize()?,
        prev: r.opt()?,
        data: r.opt()?,
    })
}

fn write_tree_layout(w: &mut WireWriter, l: &TreeLayout) {
    w.text(&l.ty.to_string());
    w.u64(l.nfields as u64);
    w.u64(l.left as u64);
    w.u64(l.right as u64);
    w.opt(l.parent);
    w.opt(l.data);
    w.opt(l.color);
}

fn read_tree_layout(r: &mut WireReader<'_>) -> Result<TreeLayout, WireError> {
    Ok(TreeLayout {
        ty: Symbol::intern(&r.text()?),
        nfields: r.usize()?,
        left: r.usize()?,
        right: r.usize()?,
        parent: r.opt()?,
        data: r.opt()?,
        color: r.opt()?,
    })
}

/// Writes one [`ValueSpec`] into an open frame.
pub fn write_value_spec(w: &mut WireWriter, spec: &ValueSpec) {
    match spec {
        ValueSpec::Nil => w.atom("nil"),
        ValueSpec::Int(k) => {
            w.atom("int");
            w.i64(*k);
        }
        ValueSpec::IntIn(lo, hi) => {
            w.atom("intin");
            w.i64(*lo);
            w.i64(*hi);
        }
        ValueSpec::List {
            layout,
            len,
            order,
            circular,
        } => {
            w.atom("list");
            write_list_layout(w, layout);
            w.u64(*len as u64);
            w.atom(match order {
                DataOrder::Random => "rand",
                DataOrder::Sorted => "sorted",
                DataOrder::Reversed => "rev",
            });
            w.bool(*circular);
        }
        ValueSpec::Tree { layout, size, kind } => {
            w.atom("tree");
            write_tree_layout(w, layout);
            w.u64(*size as u64);
            w.atom(match kind {
                TreeKind::Random => "rand",
                TreeKind::Bst => "bst",
                TreeKind::Balanced => "bal",
                TreeKind::RedBlack => "rb",
            });
        }
        ValueSpec::Exact { cells } => {
            w.atom("exact");
            w.u64(cells.len() as u64);
            for cell in cells {
                w.text(&cell.ty.to_string());
                w.u64(cell.fields.len() as u64);
                for field in &cell.fields {
                    match field {
                        ExactVal::Nil => w.atom("nil"),
                        ExactVal::Int(k) => {
                            w.atom("i");
                            w.i64(*k);
                        }
                        ExactVal::Cell(idx) => {
                            w.atom("c");
                            w.u64(*idx as u64);
                        }
                    }
                }
            }
        }
    }
}

/// Reads one [`ValueSpec`] from an open frame.
pub fn read_value_spec(r: &mut WireReader<'_>) -> Result<ValueSpec, WireError> {
    match r.atom()? {
        "nil" => Ok(ValueSpec::Nil),
        "int" => Ok(ValueSpec::Int(r.i64()?)),
        "intin" => Ok(ValueSpec::IntIn(r.i64()?, r.i64()?)),
        "list" => Ok(ValueSpec::List {
            layout: read_list_layout(r)?,
            len: r.usize()?,
            order: match r.atom()? {
                "rand" => DataOrder::Random,
                "sorted" => DataOrder::Sorted,
                "rev" => DataOrder::Reversed,
                other => return Err(syntax(format!("bad data order `{other}`"))),
            },
            circular: r.bool()?,
        }),
        "tree" => Ok(ValueSpec::Tree {
            layout: read_tree_layout(r)?,
            size: r.usize()?,
            kind: match r.atom()? {
                "rand" => TreeKind::Random,
                "bst" => TreeKind::Bst,
                "bal" => TreeKind::Balanced,
                "rb" => TreeKind::RedBlack,
                other => return Err(syntax(format!("bad tree kind `{other}`"))),
            },
        }),
        "exact" => {
            let ncells = r.usize()?;
            let mut cells = Vec::with_capacity(ncells.min(1 << 16));
            for _ in 0..ncells {
                let ty = Symbol::intern(&r.text()?);
                let nfields = r.usize()?;
                let mut fields = Vec::with_capacity(nfields.min(1 << 16));
                for _ in 0..nfields {
                    fields.push(match r.atom()? {
                        "nil" => ExactVal::Nil,
                        "i" => ExactVal::Int(r.i64()?),
                        "c" => {
                            let idx = r.usize()?;
                            if idx >= ncells {
                                return Err(syntax(format!(
                                    "exact cell index {idx} out of range (shape has {ncells} cells)"
                                )));
                            }
                            ExactVal::Cell(idx)
                        }
                        other => return Err(syntax(format!("bad exact value tag `{other}`"))),
                    });
                }
                cells.push(ExactCell { ty, fields });
            }
            Ok(ValueSpec::Exact { cells })
        }
        other => Err(syntax(format!("bad value spec tag `{other}`"))),
    }
}

/// Writes one [`InputSpec`] into an open frame.
pub fn write_input_spec(w: &mut WireWriter, spec: &InputSpec) {
    w.u64(spec.prng_seed());
    w.u64(spec.arg_specs().len() as u64);
    for arg in spec.arg_specs() {
        write_value_spec(w, arg);
    }
}

/// Reads one [`InputSpec`] from an open frame.
pub fn read_input_spec(r: &mut WireReader<'_>) -> Result<InputSpec, WireError> {
    let seed = r.u64()?;
    let count = r.usize()?;
    let mut spec = InputSpec::seeded(seed);
    for _ in 0..count {
        spec = spec.arg(read_value_spec(r)?);
    }
    Ok(spec)
}

/// Writes a full [`SlingConfig`] into an open frame (the `config`
/// production): every numeric budget, the executor tag, and the
/// optional verification settings.
pub fn write_config(w: &mut WireWriter, config: &SlingConfig) {
    w.u64(config.check.node_budget);
    w.u64(u64::from(config.check.fuel_slack));
    w.u64(config.infer.max_results_per_var as u64);
    w.u64(config.infer.max_candidates_per_pred as u64);
    w.bool(config.infer.require_nonvacuous);
    w.u64(config.max_results_per_location as u64);
    w.bool(config.dedupe_models);
    w.u64(config.max_models_per_location as u64);
    w.u64(config.vm.max_steps);
    w.u64(config.vm.max_depth as u64);
    w.bool(config.trace.observe_freed);
    w.atom(&config.executor.to_string());
    match &config.verify {
        None => w.atom("-"),
        Some(v) => {
            w.atom("v");
            w.u64(u64::from(v.prover.fuel));
            w.u64(u64::from(v.prover.max_depth));
            w.u64(v.prover.max_models as u64);
            w.u64(v.prover.max_references as u64);
            w.u64(v.cegir_rounds as u64);
        }
    }
}

fn read_u32(r: &mut WireReader<'_>) -> Result<u32, WireError> {
    let n = r.u64()?;
    u32::try_from(n).map_err(|_| syntax(format!("{n} does not fit in u32")))
}

/// Reads a full [`SlingConfig`] from an open frame.
pub fn read_config(r: &mut WireReader<'_>) -> Result<SlingConfig, WireError> {
    let mut config = SlingConfig::default();
    config.check.node_budget = r.u64()?;
    config.check.fuel_slack = read_u32(r)?;
    config.infer.max_results_per_var = r.usize()?;
    config.infer.max_candidates_per_pred = r.usize()?;
    config.infer.require_nonvacuous = r.bool()?;
    config.max_results_per_location = r.usize()?;
    config.dedupe_models = r.bool()?;
    config.max_models_per_location = r.usize()?;
    config.vm.max_steps = r.u64()?;
    config.vm.max_depth = r.usize()?;
    config.trace.observe_freed = r.bool()?;
    config.executor = {
        let name = r.atom()?;
        Executor::parse(name)
            .ok_or_else(|| WireError::Syntax(format!("unknown executor {name:?}")))?
    };
    config.verify = match r.atom()? {
        "-" => None,
        "v" => {
            let mut v = VerifySettings::default();
            v.prover.fuel = read_u32(r)?;
            v.prover.max_depth = read_u32(r)?;
            v.prover.max_models = r.usize()?;
            v.prover.max_references = r.usize()?;
            v.cegir_rounds = r.usize()?;
            Some(v)
        }
        other => return Err(syntax(format!("bad verify tag `{other}`"))),
    };
    Ok(config)
}

/// Writes one [`AnalysisRequest`] into an open frame, including its
/// per-request config override when present.
///
/// # Errors
///
/// [`WireError::Unsupported`] when the request carries anything only
/// meaningful in-process: a custom input closure.
pub fn write_request(w: &mut WireWriter, request: &AnalysisRequest) -> Result<(), WireError> {
    w.text(&request.target.to_string());
    match &request.config {
        None => w.atom("-"),
        Some(config) => {
            w.atom("cfg");
            write_config(w, config);
        }
    }
    w.u64(request.inputs.len() as u64);
    for input in &request.inputs {
        match input {
            InputSource::Spec(spec) => write_input_spec(w, spec),
            InputSource::Custom(_) => {
                return Err(WireError::Unsupported(
                    "custom input closures (use declarative InputSpecs)".into(),
                ));
            }
        }
    }
    Ok(())
}

/// Reads one [`AnalysisRequest`] from an open frame.
pub fn read_request(r: &mut WireReader<'_>) -> Result<AnalysisRequest, WireError> {
    let target = r.text()?;
    let config = match r.atom()? {
        "-" => None,
        "cfg" => Some(read_config(r)?),
        other => return Err(syntax(format!("bad config-override tag `{other}`"))),
    };
    let count = r.usize()?;
    let mut request = AnalysisRequest::new(target.as_str());
    if let Some(config) = config {
        request = request.config(config);
    }
    for _ in 0..count {
        request = request.input(read_input_spec(r)?);
    }
    Ok(request)
}

/// Encodes one request as a standalone `request` frame line.
pub fn encode_request(request: &AnalysisRequest) -> Result<String, WireError> {
    let mut w = WireWriter::frame("request");
    write_request(&mut w, request)?;
    Ok(w.finish())
}

/// Decodes a standalone `request` frame line.
pub fn decode_request(line: &str) -> Result<AnalysisRequest, WireError> {
    let (kind, mut r) = WireReader::frame(line)?;
    if kind != "request" {
        return Err(syntax(format!("expected a request frame, got `{kind}`")));
    }
    let request = read_request(&mut r)?;
    r.finish()?;
    Ok(request)
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

fn write_location(w: &mut WireWriter, loc: Location) {
    match loc {
        Location::Entry => w.atom("entry"),
        Location::Exit(i) => {
            w.atom("exit");
            w.u64(i as u64);
        }
        Location::Label(s) => {
            w.atom("label");
            w.text(&s.to_string());
        }
        Location::LoopHead(s) => {
            w.atom("loop");
            w.text(&s.to_string());
        }
    }
}

fn read_location(r: &mut WireReader<'_>) -> Result<Location, WireError> {
    match r.atom()? {
        "entry" => Ok(Location::Entry),
        "exit" => Ok(Location::Exit(r.usize()?)),
        "label" => Ok(Location::Label(Symbol::intern(&r.text()?))),
        "loop" => Ok(Location::LoopHead(Symbol::intern(&r.text()?))),
        other => Err(syntax(format!("bad location tag `{other}`"))),
    }
}

fn write_val(w: &mut WireWriter, val: Val) {
    match val {
        Val::Nil => w.atom("nil"),
        Val::Int(k) => {
            w.atom("i");
            w.i64(k);
        }
        Val::Addr(loc) => {
            w.atom("a");
            w.u64(loc.raw());
        }
    }
}

fn read_val(r: &mut WireReader<'_>) -> Result<Val, WireError> {
    match r.atom()? {
        "nil" => Ok(Val::Nil),
        "i" => Ok(Val::Int(r.i64()?)),
        "a" => {
            let raw = r.u64()?;
            if raw == 0 {
                return Err(syntax("address 0 is reserved for nil"));
            }
            Ok(Val::Addr(Loc::new(raw)))
        }
        other => Err(syntax(format!("bad value tag `{other}`"))),
    }
}

fn write_heap(w: &mut WireWriter, heap: &Heap) {
    w.u64(heap.len() as u64);
    for loc in heap.domain() {
        let cell = heap.get(loc).expect("enumerated from the domain");
        w.u64(loc.raw());
        w.text(&cell.ty.to_string());
        w.u64(cell.fields.len() as u64);
        for val in &cell.fields {
            write_val(w, *val);
        }
    }
}

fn read_heap(r: &mut WireReader<'_>) -> Result<Heap, WireError> {
    let cells = r.usize()?;
    let mut heap = Heap::new();
    for _ in 0..cells {
        let raw = r.u64()?;
        if raw == 0 {
            return Err(syntax("address 0 is reserved for nil"));
        }
        let ty = Symbol::intern(&r.text()?);
        let nfields = r.usize()?;
        let mut fields = Vec::with_capacity(nfields.min(1 << 16));
        for _ in 0..nfields {
            fields.push(read_val(r)?);
        }
        heap.insert(Loc::new(raw), HeapCell::new(ty, fields));
    }
    Ok(heap)
}

fn write_grade(w: &mut WireWriter, grade: InvariantGrade) {
    w.atom(match grade {
        InvariantGrade::Ungraded => "ungraded",
        InvariantGrade::Verified => "verified",
        InvariantGrade::Refuted => "refuted",
        InvariantGrade::Confirmed => "confirmed",
        InvariantGrade::Unknown => "unknown",
    });
}

fn read_grade(r: &mut WireReader<'_>) -> Result<InvariantGrade, WireError> {
    match r.atom()? {
        "ungraded" => Ok(InvariantGrade::Ungraded),
        "verified" => Ok(InvariantGrade::Verified),
        "refuted" => Ok(InvariantGrade::Refuted),
        "confirmed" => Ok(InvariantGrade::Confirmed),
        "unknown" => Ok(InvariantGrade::Unknown),
        other => Err(syntax(format!("bad invariant grade `{other}`"))),
    }
}

fn write_invariant(w: &mut WireWriter, inv: &Invariant) {
    write_location(w, inv.location);
    w.text(&inv.formula.to_string());
    w.u64(inv.stats.singletons as u64);
    w.u64(inv.stats.preds as u64);
    w.u64(inv.stats.pures as u64);
    w.bool(inv.spurious);
    write_grade(w, inv.grade);
    w.u64(inv.residues.len() as u64);
    for heap in &inv.residues {
        write_heap(w, heap);
    }
    w.u64(inv.activations.len() as u64);
    for a in &inv.activations {
        w.u64(*a);
    }
}

fn read_invariant(r: &mut WireReader<'_>) -> Result<Invariant, WireError> {
    let location = read_location(r)?;
    let text = r.text()?;
    let formula = parse_formula(&text).map_err(|e| WireError::Formula(e.to_string()))?;
    let stats = InvariantStats {
        singletons: r.usize()?,
        preds: r.usize()?,
        pures: r.usize()?,
    };
    let spurious = r.bool()?;
    let grade = read_grade(r)?;
    let nresidues = r.usize()?;
    let mut residues = Vec::with_capacity(nresidues.min(1 << 16));
    for _ in 0..nresidues {
        residues.push(read_heap(r)?);
    }
    let nactivations = r.usize()?;
    let mut activations = Vec::with_capacity(nactivations.min(1 << 16));
    for _ in 0..nactivations {
        activations.push(r.u64()?);
    }
    Ok(Invariant {
        location,
        formula,
        residues,
        activations,
        stats,
        spurious,
        grade,
    })
}

fn write_location_analysis(w: &mut WireWriter, loc: &LocationAnalysis) {
    write_location(w, loc.location);
    w.u64(loc.models_used as u64);
    w.u64(loc.snapshots_seen as u64);
    w.bool(loc.tainted);
    w.u64(loc.invariants.len() as u64);
    for inv in &loc.invariants {
        write_invariant(w, inv);
    }
}

fn read_location_analysis(r: &mut WireReader<'_>) -> Result<LocationAnalysis, WireError> {
    let location = read_location(r)?;
    let models_used = r.usize()?;
    let snapshots_seen = r.usize()?;
    let tainted = r.bool()?;
    let count = r.usize()?;
    let mut invariants = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        invariants.push(read_invariant(r)?);
    }
    Ok(LocationAnalysis {
        location,
        invariants,
        models_used,
        snapshots_seen,
        tainted,
    })
}

/// Writes one static [`Diagnostic`] into an open frame (the
/// `diagnostic` production). Also used by the serve layer's `rejected`
/// frames.
pub fn write_diagnostic(w: &mut WireWriter, d: &Diagnostic) {
    w.text(&d.code);
    w.atom(match d.severity {
        Severity::Warning => "warn",
        Severity::Deny => "deny",
    });
    match d.function {
        None => w.atom("-"),
        Some(func) => {
            w.atom("f");
            w.text(&func.to_string());
        }
    }
    w.u64(u64::from(d.span.lo));
    w.u64(u64::from(d.span.hi));
    w.text(&d.message);
    w.u64(d.notes.len() as u64);
    for note in &d.notes {
        w.text(note);
    }
}

/// Reads one static [`Diagnostic`] from an open frame.
pub fn read_diagnostic(r: &mut WireReader<'_>) -> Result<Diagnostic, WireError> {
    let code = r.text()?;
    let severity = match r.atom()? {
        "warn" => Severity::Warning,
        "deny" => Severity::Deny,
        other => return Err(syntax(format!("bad severity `{other}`"))),
    };
    let function = match r.atom()? {
        "-" => None,
        "f" => Some(Symbol::intern(&r.text()?)),
        other => return Err(syntax(format!("bad diagnostic function tag `{other}`"))),
    };
    let lo = read_u32(r)?;
    let hi = read_u32(r)?;
    let message = r.text()?;
    let nnotes = r.usize()?;
    let mut notes = Vec::with_capacity(nnotes.min(1 << 16));
    for _ in 0..nnotes {
        notes.push(r.text()?);
    }
    Ok(Diagnostic {
        code,
        severity,
        function,
        span: Span::new(lo, hi),
        message,
        notes,
    })
}

/// Writes [`RunMetrics`] into an open frame.
pub fn write_metrics(w: &mut WireWriter, m: &RunMetrics) {
    w.u64(m.traces as u64);
    w.u64(m.runs as u64);
    w.u64(m.faulted_runs as u64);
    w.u64(m.workers as u64);
    w.f64(m.seconds);
    w.u64(m.verified as u64);
    w.u64(m.refuted as u64);
    w.u64(m.confirmed as u64);
    w.u64(m.unknown as u64);
    w.u64(m.refuted_initial as u64);
    w.u64(m.cegir_rounds as u64);
    w.f64(m.verify_seconds);
    w.f64(m.collect_seconds);
    w.f64(m.compile_seconds);
    w.atom(&m.executor.to_string());
    w.u64(m.static_warnings as u64);
    w.u64(m.remote_hits);
    w.u64(m.remote_misses);
    w.u64(m.remote_degraded);
    w.f64(m.remote_seconds);
}

/// Reads [`RunMetrics`] from an open frame.
pub fn read_metrics(r: &mut WireReader<'_>) -> Result<RunMetrics, WireError> {
    Ok(RunMetrics {
        traces: r.usize()?,
        runs: r.usize()?,
        faulted_runs: r.usize()?,
        workers: r.usize()?,
        seconds: r.f64()?,
        verified: r.usize()?,
        refuted: r.usize()?,
        confirmed: r.usize()?,
        unknown: r.usize()?,
        refuted_initial: r.usize()?,
        cegir_rounds: r.usize()?,
        verify_seconds: r.f64()?,
        collect_seconds: r.f64()?,
        compile_seconds: r.f64()?,
        executor: {
            let name = r.atom()?;
            Executor::parse(name)
                .ok_or_else(|| WireError::Syntax(format!("unknown executor {name:?}")))?
        },
        static_warnings: r.usize()?,
        remote_hits: r.u64()?,
        remote_misses: r.u64()?,
        remote_degraded: r.u64()?,
        remote_seconds: r.f64()?,
    })
}

/// Writes [`CacheStats`] into an open frame.
pub fn write_cache_stats(w: &mut WireWriter, s: &CacheStats) {
    w.u64(s.hits);
    w.u64(s.warm_hits);
    w.u64(s.misses);
    w.u64(s.entries);
    w.u64(s.evictions);
    w.u64(s.resident_bytes);
    w.u64(s.remote_hits);
    w.u64(s.remote_misses);
    w.u64(s.remote_degraded);
    w.u64(s.remote_nanos);
}

/// Reads [`CacheStats`] from an open frame.
pub fn read_cache_stats(r: &mut WireReader<'_>) -> Result<CacheStats, WireError> {
    Ok(CacheStats {
        hits: r.u64()?,
        warm_hits: r.u64()?,
        misses: r.u64()?,
        entries: r.u64()?,
        evictions: r.u64()?,
        resident_bytes: r.u64()?,
        remote_hits: r.u64()?,
        remote_misses: r.u64()?,
        remote_degraded: r.u64()?,
        remote_nanos: r.u64()?,
    })
}

/// Writes one [`Report`] into an open frame.
pub fn write_report(w: &mut WireWriter, report: &Report) {
    w.text(&report.target.to_string());
    write_metrics(w, &report.metrics);
    write_cache_stats(w, &report.cache);
    w.u64(report.declared_locations.len() as u64);
    for loc in &report.declared_locations {
        write_location(w, *loc);
    }
    w.u64(report.locations.len() as u64);
    for loc in &report.locations {
        write_location_analysis(w, loc);
    }
    w.u64(report.static_warnings.len() as u64);
    for d in &report.static_warnings {
        write_diagnostic(w, d);
    }
    w.u64(report.unreachable_locations.len() as u64);
    for loc in &report.unreachable_locations {
        write_location(w, *loc);
    }
}

/// Reads one [`Report`] from an open frame.
pub fn read_report(r: &mut WireReader<'_>) -> Result<Report, WireError> {
    let target = Symbol::intern(&r.text()?);
    let metrics = read_metrics(r)?;
    let cache = read_cache_stats(r)?;
    let ndecl = r.usize()?;
    let mut declared_locations = Vec::with_capacity(ndecl.min(1 << 16));
    for _ in 0..ndecl {
        declared_locations.push(read_location(r)?);
    }
    let nlocs = r.usize()?;
    let mut locations = Vec::with_capacity(nlocs.min(1 << 16));
    for _ in 0..nlocs {
        locations.push(read_location_analysis(r)?);
    }
    let nwarn = r.usize()?;
    let mut static_warnings = Vec::with_capacity(nwarn.min(1 << 16));
    for _ in 0..nwarn {
        static_warnings.push(read_diagnostic(r)?);
    }
    let nunreach = r.usize()?;
    let mut unreachable_locations = Vec::with_capacity(nunreach.min(1 << 16));
    for _ in 0..nunreach {
        unreachable_locations.push(read_location(r)?);
    }
    Ok(Report {
        target,
        locations,
        declared_locations,
        metrics,
        cache,
        static_warnings,
        unreachable_locations,
    })
}

/// Encodes one report as a standalone `report` frame line.
pub fn encode_report(report: &Report) -> String {
    let mut w = WireWriter::frame("report");
    write_report(&mut w, report);
    w.finish()
}

/// Decodes a standalone `report` frame line.
pub fn decode_report(line: &str) -> Result<Report, WireError> {
    let (kind, mut r) = WireReader::frame(line)?;
    if kind != "report" {
        return Err(syntax(format!("expected a report frame, got `{kind}`")));
    }
    let report = read_report(&mut r)?;
    r.finish()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlingConfig;

    fn list_layout(ty: &str) -> ListLayout {
        ListLayout {
            ty: Symbol::intern(ty),
            nfields: 3,
            next: 0,
            prev: Some(1),
            data: Some(2),
        }
    }

    fn tree_layout(ty: &str) -> TreeLayout {
        TreeLayout {
            ty: Symbol::intern(ty),
            nfields: 5,
            left: 0,
            right: 1,
            parent: Some(2),
            data: Some(3),
            color: Some(4),
        }
    }

    /// Every constructor, plus extremes: the codec must round-trip all
    /// of them Debug-identically.
    fn value_spec_zoo() -> Vec<ValueSpec> {
        vec![
            ValueSpec::nil(),
            ValueSpec::int(0),
            ValueSpec::int(i64::MIN),
            ValueSpec::int(i64::MAX),
            ValueSpec::int_in(i64::MIN, i64::MAX),
            ValueSpec::int_in(-5, 5),
            ValueSpec::sll(
                ListLayout {
                    ty: Symbol::intern("WNode"),
                    nfields: 1,
                    next: 0,
                    prev: None,
                    data: None,
                },
                0,
            ),
            ValueSpec::sll(list_layout("WNode"), u32::MAX as usize),
            ValueSpec::dll(list_layout("WNode"), 7),
            ValueSpec::cyclic(list_layout("WNode"), 3).with_order(DataOrder::Sorted),
            ValueSpec::sll(list_layout("WNode"), 4).with_order(DataOrder::Reversed),
            ValueSpec::tree(tree_layout("WTree"), 9, TreeKind::Random),
            ValueSpec::tree(tree_layout("WTree"), 0, TreeKind::Bst),
            ValueSpec::tree(tree_layout("WTree"), 31, TreeKind::Balanced),
            ValueSpec::tree(tree_layout("WTree"), 15, TreeKind::RedBlack),
            ValueSpec::exact(vec![]),
            ValueSpec::exact(vec![
                ExactCell {
                    ty: Symbol::intern("WNode"),
                    fields: vec![ExactVal::Cell(1), ExactVal::Int(i64::MIN)],
                },
                ExactCell {
                    ty: Symbol::intern("WNode"),
                    fields: vec![ExactVal::Nil, ExactVal::Int(7)],
                },
            ]),
        ]
    }

    fn round_trip_value(spec: &ValueSpec) -> ValueSpec {
        let mut w = WireWriter::new();
        write_value_spec(&mut w, spec);
        let line = w.finish();
        let mut r = WireReader::new(&line);
        let back = read_value_spec(&mut r).expect("round trip parses");
        r.finish().expect("no trailing tokens");
        back
    }

    #[test]
    fn every_value_spec_round_trips() {
        for spec in value_spec_zoo() {
            let back = round_trip_value(&spec);
            assert_eq!(format!("{back:?}"), format!("{spec:?}"));
        }
    }

    #[test]
    fn input_specs_round_trip_with_extreme_seeds() {
        for seed in [0, 1, u64::MAX, u64::MAX - 1, 0x8000_0000_0000_0000] {
            let spec = InputSpec::seeded(seed).args(value_spec_zoo());
            let mut w = WireWriter::new();
            write_input_spec(&mut w, &spec);
            let line = w.finish();
            let mut r = WireReader::new(&line);
            let back = read_input_spec(&mut r).expect("round trip parses");
            r.finish().expect("no trailing tokens");
            assert_eq!(format!("{back:?}"), format!("{spec:?}"));
        }
    }

    #[test]
    fn requests_round_trip_and_materialize_identically() {
        let request = AnalysisRequest::new("reverse")
            .input(InputSpec::seeded(3).arg(ValueSpec::sll(list_layout("WNode"), 5)))
            .input(InputSpec::seeded(9).args([ValueSpec::int_in(-10, 10), ValueSpec::nil()]));
        let line = encode_request(&request).unwrap();
        let back = decode_request(&line).unwrap();
        assert_eq!(format!("{back:?}"), format!("{request:?}"));

        // Decoded specs build bit-identical inputs.
        for (a, b) in request.inputs.iter().zip(&back.inputs) {
            let mut ha = sling_lang::RtHeap::new();
            let mut hb = sling_lang::RtHeap::new();
            assert_eq!(a.build(&mut ha), b.build(&mut hb));
            assert_eq!(format!("{}", ha.live()), format!("{}", hb.live()));
        }
    }

    #[test]
    fn quoted_targets_survive_hostile_names() {
        // Interned symbols accept arbitrary strings; the codec must not
        // let quotes, spaces, or newlines break the frame.
        let hostile = "evil \"name\"\nwith\ttokens \\ and spaces";
        let request = AnalysisRequest::new(hostile);
        let back = decode_request(&encode_request(&request).unwrap()).unwrap();
        assert_eq!(back.target, Symbol::intern(hostile));
    }

    #[test]
    fn custom_closures_are_rejected_typed() {
        let custom = AnalysisRequest::new("f").custom(|_| vec![Val::Nil]);
        assert!(matches!(
            encode_request(&custom),
            Err(WireError::Unsupported(_))
        ));
    }

    #[test]
    fn config_overrides_round_trip() {
        let mut config = SlingConfig::default();
        config.check.node_budget = 12_345;
        config.check.fuel_slack = 9;
        config.infer.max_results_per_var = 3;
        config.infer.max_candidates_per_pred = 77;
        config.infer.require_nonvacuous = false;
        config.max_results_per_location = 2;
        config.dedupe_models = false;
        config.max_models_per_location = 101;
        config.vm.max_steps = u64::MAX;
        config.vm.max_depth = 17;
        config.trace.observe_freed = false;
        config.executor = Executor::Treewalk;
        let mut verify = crate::VerifySettings::default();
        verify.prover.fuel = u32::MAX;
        verify.prover.max_depth = 5;
        verify.prover.max_models = 33;
        verify.prover.max_references = 1;
        verify.cegir_rounds = 0;
        for verify in [None, Some(verify)] {
            config.verify = verify;
            let request = AnalysisRequest::new("f")
                .config(config)
                .input(InputSpec::seeded(1).arg(ValueSpec::nil()));
            let back = decode_request(&encode_request(&request).unwrap()).unwrap();
            assert_eq!(format!("{back:?}"), format!("{request:?}"));
        }
        // The no-override case stays `None` on the far side.
        let bare = AnalysisRequest::new("f");
        let back = decode_request(&encode_request(&bare).unwrap()).unwrap();
        assert!(back.config.is_none());
    }

    #[test]
    fn config_override_bad_tags_are_rejected() {
        let good = encode_request(&AnalysisRequest::new("f")).unwrap();
        // `-` → some unknown override tag.
        let bad = good.replacen(" - ", " cfgx ", 1);
        assert!(matches!(decode_request(&bad), Err(WireError::Syntax(_))));
        // Truncated config payload.
        let bad = good.replacen(" - ", " cfg 1 2 ", 1);
        assert!(matches!(decode_request(&bad), Err(WireError::Syntax(_))));
    }

    fn sample_report() -> Report {
        let engine = crate::Engine::builder()
            .program_source(
                "struct WireNode { next: WireNode*; data: int; }
                 fn walk(x: WireNode*) -> WireNode* {
                     var c: WireNode* = x;
                     while @w (c != null) { c = c->next; }
                     return x;
                 }",
            )
            .unwrap()
            .predicates_source(
                "pred wlist(x: WireNode*) := emp & x == nil
                   | exists u, d. x -> WireNode{next: u, data: d} * wlist(u);",
            )
            .unwrap()
            .build()
            .unwrap();
        let layout = ListLayout {
            ty: Symbol::intern("WireNode"),
            nfields: 2,
            next: 0,
            prev: None,
            data: Some(1),
        };
        let request = AnalysisRequest::new("walk")
            .input(InputSpec::seeded(1).arg(ValueSpec::sll(layout, 0)))
            .input(InputSpec::seeded(2).arg(ValueSpec::sll(layout, 4)));
        engine.analyze(&request).unwrap()
    }

    #[test]
    fn real_reports_round_trip_debug_identically() {
        let report = sample_report();
        assert!(report.invariant_count() > 0, "sample must infer something");
        let line = encode_report(&report);
        let back = decode_report(&line).unwrap();
        // Formula Display round-trips up to binder names; the sample's
        // formulas use the default fresh-variable names, so the full
        // Debug forms must match exactly.
        assert_eq!(format!("{back:?}"), format!("{report:?}"));
    }

    #[test]
    fn metrics_round_trip_exact_seconds() {
        let metrics = RunMetrics {
            traces: 12,
            runs: 3,
            faulted_runs: 1,
            workers: 4,
            seconds: 0.1 + 0.2, // not representable in decimal text
            verified: 5,
            refuted: 1,
            confirmed: 2,
            unknown: 3,
            refuted_initial: 4,
            cegir_rounds: 2,
            verify_seconds: 0.1 + 0.7,
            collect_seconds: 0.1 + 0.4,
            compile_seconds: 1e-7 + 3e-8,
            executor: Executor::Treewalk,
            static_warnings: 6,
            remote_hits: 7,
            remote_misses: 8,
            remote_degraded: 9,
            remote_seconds: 0.2 + 0.4,
        };
        let mut w = WireWriter::new();
        write_metrics(&mut w, &metrics);
        let line = w.finish();
        let mut r = WireReader::new(&line);
        let back = read_metrics(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, metrics);
        assert_eq!(back.seconds.to_bits(), metrics.seconds.to_bits());
    }

    #[test]
    fn malformed_frames_are_rejected_with_typed_errors() {
        let good = encode_report(&sample_report());

        // Wrong protocol tag.
        assert!(matches!(
            decode_report(&good.replacen(WIRE_VERSION, "sling9", 1)),
            Err(WireError::Version(v)) if v == "sling9"
        ));
        // Wrong frame kind for the decoder.
        assert!(matches!(decode_request(&good), Err(WireError::Syntax(_))));
        // Truncations anywhere must error, never panic.
        for cut in [0, 1, 7, 10, good.len() / 3, good.len() / 2, good.len() - 1] {
            let mut prefix = good[..cut].to_string();
            while !prefix.is_char_boundary(prefix.len()) {
                prefix.pop();
            }
            assert!(
                decode_report(&prefix).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // Trailing garbage is rejected.
        assert!(matches!(
            decode_report(&format!("{good} 17")),
            Err(WireError::Syntax(_))
        ));
        // Corrupt numeric token.
        assert!(decode_report(&good.replacen(" 0 ", " zero ", 1)).is_err());
        // An exact-shape cell index past the shape is rejected.
        let mut w = WireWriter::new();
        write_value_spec(
            &mut w,
            &ValueSpec::exact(vec![ExactCell {
                ty: Symbol::intern("WNode"),
                fields: vec![ExactVal::Cell(1)],
            }]),
        );
        let dangling = w.finish();
        assert!(matches!(
            read_value_spec(&mut WireReader::new(&dangling)),
            Err(WireError::Syntax(_))
        ));
        // An unknown executor atom in metrics is rejected, not defaulted.
        let mut w = WireWriter::new();
        write_metrics(&mut w, &RunMetrics::default());
        let jit = w.finish().replace("bytecode", "jit");
        assert!(matches!(
            read_metrics(&mut WireReader::new(&jit)),
            Err(WireError::Syntax(e)) if e.contains("jit")
        ));
        // A formula that does not re-parse is a typed Formula error.
        let mut w = WireWriter::frame("report");
        w.text("walk");
        write_metrics(&mut w, &RunMetrics::default());
        write_cache_stats(&mut w, &CacheStats::default());
        w.u64(0); // declared locations
        w.u64(1); // one location report
        w.atom("entry");
        w.u64(0);
        w.u64(0);
        w.bool(false);
        w.u64(1); // one invariant
        w.atom("entry");
        w.text("this is ( not a formula");
        assert!(matches!(
            decode_report(&w.finish()),
            Err(WireError::Formula(_))
        ));
    }

    #[test]
    fn diagnostics_round_trip_with_hostile_payloads() {
        use sling_analysis::codes;
        let zoo = [
            Diagnostic::new(codes::DEAD_STORE, Severity::Warning, "plain warning"),
            Diagnostic::new(
                codes::UNPRODUCTIVE_PRED,
                Severity::Deny,
                "message with \"quotes\"\nand newlines",
            )
            .in_function(Symbol::intern("evil \"fn\" name"))
            .with_note("first note")
            .with_note("cycle: a -> b -> a"),
            Diagnostic::new(codes::NULL_DEREF, Severity::Deny, "")
                .with_span(Span::new(7, u32::MAX)),
        ];
        for d in &zoo {
            let mut w = WireWriter::new();
            write_diagnostic(&mut w, d);
            let line = w.finish();
            let mut r = WireReader::new(&line);
            let back = read_diagnostic(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(&back, d);
        }
        // Bad severity and function tags are typed syntax errors.
        let mut w = WireWriter::new();
        write_diagnostic(&mut w, &zoo[0]);
        let bad = w.finish().replacen(" warn ", " fatal ", 1);
        assert!(matches!(
            read_diagnostic(&mut WireReader::new(&bad)),
            Err(WireError::Syntax(e)) if e.contains("fatal")
        ));
    }

    #[test]
    fn reports_with_static_findings_round_trip() {
        let mut report = sample_report();
        report.static_warnings = vec![Diagnostic::new(
            sling_analysis::codes::DEAD_STORE,
            Severity::Warning,
            "initializer of `c` is never used",
        )
        .in_function(Symbol::intern("walk"))
        .with_span(Span::new(100, 120))
        .with_note("no later statement or snapshot location observes this value")];
        report.metrics.static_warnings = 1;
        report.unreachable_locations =
            vec![Location::Label(Symbol::intern("dead")), Location::Exit(1)];
        let back = decode_report(&encode_report(&report)).unwrap();
        assert_eq!(format!("{back:?}"), format!("{report:?}"));
        assert_eq!(
            back.missing_locations()
                .iter()
                .filter(|(_, unreachable)| *unreachable)
                .count(),
            0,
            "sample's declared locations are all reachable"
        );
    }

    #[test]
    fn reader_rejects_atom_string_confusion() {
        let mut w = WireWriter::new();
        w.text("hello");
        w.atom("world");
        let line = w.finish();
        let mut r = WireReader::new(&line);
        assert!(matches!(r.atom(), Err(WireError::Syntax(_))));
        assert_eq!(r.text().unwrap(), "hello");
        assert!(matches!(r.text(), Err(WireError::Syntax(_))));
        assert_eq!(r.atom().unwrap(), "world");
        assert!(r.finish().is_ok());
    }
}
