//! The structured result hierarchy produced by an [`crate::Engine`].
//!
//! One [`Report`] per analyzed target function, containing one
//! [`LocationAnalysis`] per reached breakpoint, each holding
//! [`Invariant`]s; batch runs aggregate into a [`BatchReport`]. Run
//! accounting lives in [`RunMetrics`] and checker-cache effectiveness in
//! the re-exported [`CacheStats`].

use crate::collect::Executor;
use sling_analysis::Diagnostic;
use sling_checker::CacheStats;
use sling_lang::Location;
use sling_logic::{SymHeap, Symbol};
use sling_models::Heap;

/// Size statistics of an invariant (the paper's Single/Pred/Pure
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvariantStats {
    /// Points-to atoms.
    pub singletons: usize,
    /// Inductive predicate atoms.
    pub preds: usize,
    /// Pure equalities.
    pub pures: usize,
}

/// The static-verification grade attached to every reported invariant by
/// the post-pass (see `sling_checker::verify`). With verification off,
/// every invariant is [`InvariantGrade::Ungraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvariantGrade {
    /// Verification did not run.
    #[default]
    Ungraded,
    /// Consistent with every bounded countermodel the prover derived from
    /// the sibling invariants at the same location.
    Verified,
    /// The prover found a countermodel and the CEGIR refinement loop ran
    /// out of rounds before resolving it.
    Refuted,
    /// The prover found a countermodel, but the refinement loop turned it
    /// into a concrete input and the invariant survived re-inference: it
    /// holds on the very state the prover proposed as a counterexample
    /// (the §5.4 "genuinely true of the bug" situation).
    Confirmed,
    /// The prover could not reach a verdict within budget.
    Unknown,
}

impl std::fmt::Display for InvariantGrade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InvariantGrade::Ungraded => "ungraded",
            InvariantGrade::Verified => "verified",
            InvariantGrade::Refuted => "refuted",
            InvariantGrade::Confirmed => "confirmed",
            InvariantGrade::Unknown => "unknown",
        })
    }
}

/// An inferred invariant at a location.
#[derive(Debug, Clone)]
pub struct Invariant {
    /// Where it holds.
    pub location: Location,
    /// The formula.
    pub formula: SymHeap,
    /// Per used model: the heap cells the formula does not cover.
    pub residues: Vec<Heap>,
    /// Per used model: which activation it came from.
    pub activations: Vec<u64>,
    /// Atom counts.
    pub stats: InvariantStats,
    /// True if the invariant rests on invalid traces (freed cells) or
    /// failed frame validation.
    pub spurious: bool,
    /// Static-verification verdict for this invariant.
    pub grade: InvariantGrade,
}

/// Everything inferred at one location of one target.
#[derive(Debug, Clone)]
pub struct LocationAnalysis {
    /// The location.
    pub location: Location,
    /// Invariants, strongest first.
    pub invariants: Vec<Invariant>,
    /// Number of models used for inference (after dedupe/caps).
    pub models_used: usize,
    /// Number of snapshots observed at the location.
    pub snapshots_seen: usize,
    /// True if any snapshot at this location was tainted by freed cells.
    pub tainted: bool,
}

/// Run accounting for one analyzed target.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunMetrics {
    /// Total snapshots collected (the paper's Traces column).
    pub traces: usize,
    /// Number of test runs.
    pub runs: usize,
    /// Runs that ended in a runtime fault.
    pub faulted_runs: usize,
    /// Worker threads used for the intra-request per-location inference
    /// fan-out (`1` = strictly sequential; capped by the number of
    /// reached locations).
    pub workers: usize,
    /// Wall-clock seconds for collection + inference + validation.
    pub seconds: f64,
    /// Invariants graded [`InvariantGrade::Verified`].
    pub verified: usize,
    /// Invariants graded [`InvariantGrade::Refuted`] after the final
    /// refinement round.
    pub refuted: usize,
    /// Invariants graded [`InvariantGrade::Confirmed`].
    pub confirmed: usize,
    /// Invariants graded [`InvariantGrade::Unknown`].
    pub unknown: usize,
    /// Invariants the prover refuted *before* any refinement ran (the
    /// CEGIR loop's starting debt; `refuted` is what is left of it).
    pub refuted_initial: usize,
    /// Refinement rounds executed (re-collection + re-inference cycles).
    pub cegir_rounds: usize,
    /// Wall-clock seconds spent in verification + refinement (included in
    /// `seconds`).
    pub verify_seconds: f64,
    /// Wall-clock seconds spent collecting traces (included in
    /// `seconds`), accumulated across every CEGIR re-collection round.
    pub collect_seconds: f64,
    /// Wall-clock seconds the engine spent compiling the program to
    /// bytecode at build time — amortized once per engine, *not*
    /// included in `seconds`. Zero for reports produced outside an
    /// engine.
    pub compile_seconds: f64,
    /// The execution tier that collected this report's traces.
    pub executor: Executor,
    /// Warning-level static-diagnostics findings for the target function
    /// (the count of [`Report::static_warnings`]). Zero unless the engine
    /// was built with [`crate::EngineBuilder::static_analysis`].
    pub static_warnings: usize,
    /// Entailment queries answered by the remote cache tier during this
    /// run (mirrors [`CacheStats::remote_hits`]; zero unless the engine
    /// was built with [`crate::EngineBuilder::remote_cache`]). Like the
    /// per-report cache delta, zeroed under parallel batches — the
    /// batch-level [`BatchReport::cache`] is authoritative there.
    pub remote_hits: u64,
    /// Remote lookups the cache server answered with a miss.
    pub remote_misses: u64,
    /// Remote lookups skipped or abandoned because the tier was
    /// degraded (server dead, slow, or in reconnect backoff).
    pub remote_degraded: u64,
    /// Wall-clock seconds spent on remote cache round trips (included
    /// in `seconds`).
    pub remote_seconds: f64,
}

/// The full analysis result for one target function.
#[derive(Debug, Clone)]
pub struct Report {
    /// The analyzed function.
    pub target: Symbol,
    /// Per reached location, in location order.
    pub locations: Vec<LocationAnalysis>,
    /// All breakpoint locations the program declares for the target
    /// (reached or not — the paper's iLocs).
    pub declared_locations: Vec<Location>,
    /// Run accounting.
    pub metrics: RunMetrics,
    /// Checker-cache movement attributable to this request (hit/miss
    /// deltas; `entries` is the cache's absolute size afterwards).
    /// Exact for [`crate::Engine::analyze`] and for sequential batches
    /// (`parallelism(1)`); under parallel [`crate::Engine::analyze_all`]
    /// concurrent requests interleave on the shared cache, so this is
    /// left zeroed and [`BatchReport::cache`] is the authoritative
    /// accounting.
    pub cache: CacheStats,
    /// Warning-level findings the static-diagnostics pass attributed to
    /// the target function. Empty unless the engine was built with
    /// [`crate::EngineBuilder::static_analysis`] (deny-level findings
    /// never reach a report: they fail the build).
    pub static_warnings: Vec<Diagnostic>,
    /// Declared snapshot locations the static pass proved unreachable:
    /// the explanation for an empty inference site. A location listed
    /// here appears in `declared_locations` but never in `locations`.
    pub unreachable_locations: Vec<Location>,
}

impl Report {
    /// The analysis at `loc`, if any model reached it.
    pub fn at(&self, loc: Location) -> Option<&LocationAnalysis> {
        self.locations.iter().find(|r| r.location == loc)
    }

    /// Declared locations with no analysis entry, each paired with
    /// `true` when the static pass proved the location unreachable
    /// (the site is *necessarily* empty) or `false` when no model
    /// happened to reach it on these inputs.
    pub fn missing_locations(&self) -> Vec<(Location, bool)> {
        self.declared_locations
            .iter()
            .filter(|loc| self.at(**loc).is_none())
            .map(|loc| (*loc, self.unreachable_locations.contains(loc)))
            .collect()
    }

    /// Total invariants across locations.
    pub fn invariant_count(&self) -> usize {
        self.locations.iter().map(|r| r.invariants.len()).sum()
    }

    /// Total invariants carrying `grade`.
    pub fn graded_count(&self, grade: InvariantGrade) -> usize {
        self.locations
            .iter()
            .flat_map(|r| &r.invariants)
            .filter(|i| i.grade == grade)
            .count()
    }

    /// Total spurious invariants.
    pub fn spurious_count(&self) -> usize {
        self.locations
            .iter()
            .flat_map(|r| &r.invariants)
            .filter(|i| i.spurious)
            .count()
    }
}

/// Results of a batch analysis ([`crate::Engine::analyze_all`]) over one
/// shared program + predicate environment.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One report per request, in request order.
    pub reports: Vec<Report>,
    /// Checker-cache movement across the whole batch.
    pub cache: CacheStats,
}

impl BatchReport {
    /// The first report for `target`, if one was requested.
    pub fn by_target(&self, target: Symbol) -> Option<&Report> {
        self.reports.iter().find(|r| r.target == target)
    }

    /// Total invariants across all targets.
    pub fn invariant_count(&self) -> usize {
        self.reports.iter().map(|r| r.invariant_count()).sum()
    }

    /// Total wall-clock seconds across all targets.
    pub fn seconds(&self) -> f64 {
        self.reports.iter().map(|r| r.metrics.seconds).sum()
    }
}
