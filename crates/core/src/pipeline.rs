//! The SLING main loop (Algorithm 1) and the per-target driver.
//!
//! For each location: split the heap per pointer variable (ordered by the
//! §2.3 reachability heuristic), infer atomic formulae for each sub-heap,
//! conjoin them with `∗` while propagating residues and instantiations,
//! then run pure inference and scope quantification. The driver
//! ([`run_target`]) runs trace collection first and frame-rule validation
//! (§4.4) last.
//!
//! The public entry point is [`crate::Engine`].

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::time::Instant;

use sling_checker::{
    CheckConfig, CheckCtx, Instantiation, Obligation, Prover, UnfoldProver, Verdict, VerifyConfig,
};
use sling_lang::{Location, Program, Snapshot, TraceConfig, VmConfig};
use sling_logic::{FreshVars, SymHeap, Symbol};
use sling_models::{Heap, StackHeapModel};

use crate::collect::{collect_models, Executor};
use crate::infer::{infer_atom, var_types, InferConfig, VarTy};
use crate::pure::infer_pure;
use crate::report::{
    Invariant, InvariantGrade, InvariantStats, LocationAnalysis, Report, RunMetrics,
};
use crate::request::InputSource;
use crate::spec::InputSpec;
use crate::split::split_heap;
use crate::validate::validate_frame;

/// Configuration for a whole analysis.
#[derive(Debug, Clone, Copy)]
pub struct SlingConfig {
    /// Model-checker limits.
    pub check: CheckConfig,
    /// InferAtom limits.
    pub infer: InferConfig,
    /// Cap on the result set `R` carried across variables (strongest
    /// kept).
    pub max_results_per_location: usize,
    /// Drop duplicate stack-heap models before inference (identical
    /// models carry no extra information but multiply checking cost).
    pub dedupe_models: bool,
    /// Hard cap on models per location (0 = unlimited); mirrors the
    /// paper's observation that trace-heavy loop locations overwhelm the
    /// checker.
    pub max_models_per_location: usize,
    /// Interpreter limits for trace collection.
    pub vm: VmConfig,
    /// Tracer behaviour (freed-cell visibility).
    pub trace: TraceConfig,
    /// Which execution tier collects traces (bytecode by default; the
    /// tree-walk oracle via `SLING_EXECUTOR=treewalk` or a per-request
    /// override).
    pub executor: Executor,
    /// Static verification + CEGIR refinement; `None` leaves every
    /// invariant [`InvariantGrade::Ungraded`]. The `SLING_VERIFY=off`
    /// environment override disables a configured pass at run time.
    pub verify: Option<VerifySettings>,
}

impl Default for SlingConfig {
    fn default() -> SlingConfig {
        SlingConfig {
            check: CheckConfig::default(),
            infer: InferConfig::default(),
            max_results_per_location: 8,
            dedupe_models: true,
            max_models_per_location: 48,
            vm: VmConfig::default(),
            trace: TraceConfig::default(),
            executor: Executor::default(),
            verify: None,
        }
    }
}

/// Settings for the verification post-pass and its counterexample-guided
/// refinement loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifySettings {
    /// Budgets of the bounded-unfolding prover.
    pub prover: VerifyConfig,
    /// Maximum refinement rounds: each round turns refutation witnesses
    /// into new inputs and re-runs collection + inference. `0` grades
    /// once and never refines.
    pub cegir_rounds: usize,
}

impl Default for VerifySettings {
    fn default() -> VerifySettings {
        VerifySettings {
            prover: VerifyConfig::default(),
            cegir_rounds: 3,
        }
    }
}

/// True when the `SLING_VERIFY` environment variable turns the configured
/// verification pass off (`off` / `0` / `false`; unset or `on` leaves it
/// enabled). Unrecognized values warn once and are ignored.
pub(crate) fn verify_disabled_by_env() -> bool {
    match std::env::var("SLING_VERIFY") {
        Ok(v) if v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false") => {
            true
        }
        Ok(v) if v.is_empty() || v.eq_ignore_ascii_case("on") || v == "1" => false,
        Ok(v) => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("sling: ignoring unrecognized SLING_VERIFY value `{v}` (want on|off)");
            });
            false
        }
        Err(_) => false,
    }
}

/// One in-flight element of the result set `R` (Algorithm 1).
#[derive(Debug, Clone)]
struct Partial {
    formula: SymHeap,
    residues: Vec<Heap>,
    insts: Vec<Instantiation>,
}

/// Runs SLING end to end on one target function against the given
/// checker context: collect models on the inputs, infer invariants at
/// every reached location, validate entry/exit pairs with the frame
/// rule. The cache delta of the report is left zeroed; [`crate::Engine`]
/// fills it in.
///
/// Per-location inference is independent (each location has its own
/// models, fresh-variable counter, and result set), so with `workers >
/// 1` the locations fan out over a scoped thread pool sharing the
/// engine's sharded entailment cache; reports are always assembled in
/// *location order*, formula-for-formula identical to a sequential run.
///
/// # Panics
///
/// Panics if `target` is not a function of `program` (the engine
/// validates targets before calling).
pub(crate) fn run_target(
    ctx: &CheckCtx<'_>,
    program: &Program,
    compiled: &sling_vm::CompiledProgram,
    target: Symbol,
    inputs: &[InputSource],
    config: &SlingConfig,
    workers: usize,
) -> Report {
    let settings = match config.verify {
        Some(s) if !verify_disabled_by_env() => s,
        _ => return run_target_once(ctx, program, compiled, target, inputs, config, workers),
    };
    let start = Instant::now();
    let prover = UnfoldProver::new(settings.prover);
    let func = program.func(target).expect("target exists");
    let params = func.params.clone();

    let mut inputs: Vec<InputSource> = inputs.to_vec();
    let mut report = run_target_once(
        ctx,
        program,
        compiled,
        target,
        inputs.as_slice(),
        config,
        workers,
    );
    // Collection time accumulates across refinement rounds so the
    // client-visible number covers every re-run, not just the last.
    let mut collect_total = report.metrics.collect_seconds;
    let verify_start = Instant::now();
    let mut rounds = 0usize;
    let mut refuted_initial = 0usize;
    loop {
        let witnesses: Vec<StackHeapModel> = report
            .locations
            .iter_mut()
            .flat_map(|analysis| grade_location(ctx, &prover, analysis))
            .collect();
        if rounds == 0 {
            refuted_initial = report.graded_count(InvariantGrade::Refuted);
        }
        if witnesses.is_empty() || rounds >= settings.cegir_rounds {
            break;
        }
        // Counterexample-guided refinement: each witness becomes a
        // targeted input. Witnesses whose input is already in the set
        // bring no new evidence — if *none* is new, the refuted
        // invariants survived runs on the very states the prover
        // proposed, so they are re-graded Confirmed instead of looping.
        let mut fresh: Vec<InputSpec> = Vec::new();
        for witness in &witnesses {
            let spec = InputSpec::from_witness(witness, &params);
            let dup = fresh.contains(&spec)
                || inputs
                    .iter()
                    .any(|i| matches!(i, InputSource::Spec(s) if *s == spec));
            if !dup {
                fresh.push(spec);
            }
        }
        if fresh.is_empty() {
            for analysis in &mut report.locations {
                for inv in &mut analysis.invariants {
                    if inv.grade == InvariantGrade::Refuted {
                        inv.grade = InvariantGrade::Confirmed;
                    }
                }
            }
            break;
        }
        inputs.extend(fresh.into_iter().map(InputSource::from));
        report = run_target_once(ctx, program, compiled, target, &inputs, config, workers);
        collect_total += report.metrics.collect_seconds;
        rounds += 1;
    }

    report.metrics.collect_seconds = collect_total;
    report.metrics.verified = report.graded_count(InvariantGrade::Verified);
    report.metrics.refuted = report.graded_count(InvariantGrade::Refuted);
    report.metrics.confirmed = report.graded_count(InvariantGrade::Confirmed);
    report.metrics.unknown = report.graded_count(InvariantGrade::Unknown);
    report.metrics.refuted_initial = refuted_initial;
    report.metrics.cegir_rounds = rounds;
    report.metrics.verify_seconds = verify_start.elapsed().as_secs_f64();
    report.metrics.seconds = start.elapsed().as_secs_f64();
    report
}

/// Grades every invariant at one location against its siblings; returns
/// the refutation witnesses of non-spurious invariants (spurious ones are
/// graded but neither feed the refinement loop nor serve as references).
fn grade_location(
    ctx: &CheckCtx<'_>,
    prover: &UnfoldProver,
    analysis: &mut LocationAnalysis,
) -> Vec<StackHeapModel> {
    let references: Vec<SymHeap> = analysis
        .invariants
        .iter()
        .filter(|i| !i.spurious)
        .map(|i| i.formula.clone())
        .collect();
    let mut witnesses = Vec::new();
    for inv in &mut analysis.invariants {
        let verdict = prover.prove(
            ctx,
            &Obligation {
                candidate: &inv.formula,
                references: &references,
            },
        );
        inv.grade = match verdict {
            Verdict::Verified => InvariantGrade::Verified,
            Verdict::Refuted { witness } => {
                if !inv.spurious {
                    witnesses.push(witness);
                }
                InvariantGrade::Refuted
            }
            Verdict::Unknown { .. } => InvariantGrade::Unknown,
        };
    }
    witnesses
}

/// The dynamic-only pipeline: collection, inference, frame validation.
fn run_target_once(
    ctx: &CheckCtx<'_>,
    program: &Program,
    compiled: &sling_vm::CompiledProgram,
    target: Symbol,
    inputs: &[InputSource],
    config: &SlingConfig,
    workers: usize,
) -> Report {
    let start = Instant::now();
    let collected = collect_models(
        program,
        compiled,
        target,
        inputs,
        config.vm,
        config.trace,
        config.executor,
    );
    let collect_seconds = start.elapsed().as_secs_f64();
    let func = program.func(target).expect("target exists");
    let param_order: Vec<Symbol> = func.params.iter().map(|p| p.name).collect();

    // Intra-request fan-out: locations are independent (each has its
    // own models, fresh-variable counter, and result set), so they run
    // over the shared work-stealing scaffold with location-order slot
    // assembly — the same scheme as the engine's request-level pool.
    let by_loc: Vec<(Location, Vec<&Snapshot>)> = collected.by_location().into_iter().collect();
    let workers = workers.max(1).min(by_loc.len().max(1));
    let mut locations: Vec<LocationAnalysis> = crate::fanout::fan_out(workers, by_loc.len(), |i| {
        let (loc, snaps) = &by_loc[i];
        infer_location(ctx, *loc, snaps, &param_order, config)
    });

    // Frame-rule validation: every exit invariant must preserve some
    // entry invariant's frame (per activation).
    let entry_report = locations.iter().position(|r| r.location == Location::Entry);
    if let Some(entry_idx) = entry_report {
        let entry = locations[entry_idx].clone();
        for report in &mut locations {
            let Location::Exit(_) = report.location else {
                continue;
            };
            for inv in &mut report.invariants {
                let ok = entry.invariants.iter().any(|pre| validate_frame(pre, inv));
                if !ok {
                    inv.spurious = true;
                }
            }
        }
    }

    Report {
        target,
        locations,
        declared_locations: program.locations_of(target),
        metrics: RunMetrics {
            traces: collected.total_snapshots(),
            runs: collected.runs.len(),
            faulted_runs: collected.faulted_runs(),
            workers,
            seconds: start.elapsed().as_secs_f64(),
            collect_seconds,
            executor: config.executor,
            ..Default::default()
        },
        cache: Default::default(),
        // Filled in by the engine when it carries a build-time static
        // analysis; the raw pipeline has none.
        static_warnings: Vec::new(),
        unreachable_locations: Vec::new(),
    }
}

/// Infers invariants at a single location (Algorithm 1, lines 2–11, plus
/// pure inference and scope quantification).
pub(crate) fn infer_location(
    ctx: &CheckCtx<'_>,
    location: Location,
    snaps: &[&Snapshot],
    param_order: &[Symbol],
    config: &SlingConfig,
) -> LocationAnalysis {
    let snapshots_seen = snaps.len();
    let tainted = snaps.iter().any(|s| s.tainted);

    // Select models: dedupe identical ones (by hash + structural
    // equality, no string rendering on this per-location hot path),
    // apply the cap.
    let mut models: Vec<StackHeapModel> = Vec::new();
    let mut activations: Vec<u64> = Vec::new();
    let mut seen: HashSet<&StackHeapModel> = HashSet::new();
    for s in snaps {
        if config.dedupe_models && !seen.insert(&s.model) {
            continue;
        }
        models.push(s.model.clone());
        activations.push(s.activation);
        if config.max_models_per_location > 0 && models.len() >= config.max_models_per_location {
            break;
        }
    }
    if models.is_empty() {
        return LocationAnalysis {
            location,
            invariants: Vec::new(),
            models_used: 0,
            snapshots_seen,
            tainted,
        };
    }

    let vt = var_types(&models);
    let order = variable_order(&models, &vt, param_order);
    let mut fresh = FreshVars::new("u");
    for m in &models {
        fresh.avoid_all(m.stack.vars());
    }

    // Algorithm 1 main loop.
    let mut set: Vec<Partial> = vec![Partial {
        formula: SymHeap::emp(),
        residues: models.iter().map(|m| m.heap.clone()).collect(),
        insts: vec![Instantiation::new(); models.len()],
    }];
    // Worklist over the variable order. A variable whose sub-heap could
    // only be modeled by `emp` in every branch is *deferred* once to the
    // end: by then other variables may have consumed the cells that
    // blocked it (e.g. a queue header whose `last` pointer reaches into
    // the list — once the list variable owns those cells, the header's
    // sub-heap is the lone header cell and a singleton matches).
    let mut worklist: std::collections::VecDeque<Symbol> = order.iter().copied().collect();
    let mut deferred: BTreeSet<Symbol> = BTreeSet::new();
    while let Some(v) = worklist.pop_front() {
        let v = &v;
        // (parent index, child partial): the parent lineage keeps branch
        // diversity through truncation.
        let mut next: Vec<(usize, Partial)> = Vec::new();
        let mut all_emp = true;
        for (parent, partial) in set.iter().enumerate() {
            let res_models: Vec<StackHeapModel> = models
                .iter()
                .zip(&partial.residues)
                .map(|(m, h)| StackHeapModel::new(m.stack.clone(), h.clone()))
                .collect();
            let split = split_heap(&res_models, *v);
            let atoms = infer_atom(
                ctx,
                *v,
                &split.sub_models,
                &split.boundary,
                &vt,
                &mut fresh,
                &config.infer,
            );
            all_emp &= atoms.iter().all(|a| a.formula.is_emp())
                && split.sub_models.iter().any(|m| !m.heap.is_empty());
            for atom in atoms {
                let mut residues = Vec::with_capacity(models.len());
                for (rest, sub_res) in split.rest.iter().zip(&atom.residues) {
                    residues.push(rest.union(sub_res).expect("disjoint by construction"));
                }
                let mut insts = partial.insts.clone();
                for (acc, add) in insts.iter_mut().zip(&atom.insts) {
                    acc.merge(add);
                }
                next.push((
                    parent,
                    Partial {
                        formula: partial.formula.clone().star(atom.formula),
                        residues,
                        insts,
                    },
                ));
            }
        }
        if all_emp && deferred.insert(*v) {
            // Nothing modeled this variable's (non-empty) sub-heap yet;
            // retry after the remaining variables.
            worklist.push_back(*v);
            continue;
        }
        // Stable sort: ties keep insertion order, which is the
        // strongest-first order of the per-variable atom results.
        next.sort_by_key(|(_, p)| p.residues.iter().map(|h| h.len()).sum::<usize>());
        // Truncate, but keep every lineage alive: first the best child of
        // each parent (in sorted order), then the remaining slots by
        // strength. This is what lets both the maximal-coverage and the
        // paper's head-rooted results survive to the end.
        let cap = config.max_results_per_location.max(1);
        let mut kept: Vec<Partial> = Vec::with_capacity(cap);
        let mut parents_done: BTreeSet<usize> = BTreeSet::new();
        for (parent, p) in &next {
            if kept.len() >= cap {
                break;
            }
            if parents_done.insert(*parent) {
                kept.push(p.clone());
            }
        }
        for (_, p) in next {
            if kept.len() >= cap {
                break;
            }
            if !kept.iter().any(|q| q.formula == p.formula) {
                kept.push(p);
            }
        }
        set = kept;
    }

    // Pure inference, scope quantification, stats.
    let scope_free = scope_free_vars(location, param_order, &models);
    let mut invariants: Vec<Invariant> = Vec::new();
    let mut dedup: BTreeSet<String> = BTreeSet::new();
    for partial in set {
        let mut formula = infer_pure(&partial.formula, &models, &partial.insts, &scope_free);
        finalize_formula(&mut formula, &scope_free);
        let key = formula.to_string();
        if !dedup.insert(key) {
            continue;
        }
        let stats = InvariantStats {
            singletons: formula.singleton_count(),
            preds: formula.pred_count(),
            pures: formula.pure_count(),
        };
        invariants.push(Invariant {
            location,
            formula,
            residues: partial.residues,
            activations: activations.clone(),
            stats,
            spurious: tainted,
            grade: InvariantGrade::Ungraded,
        });
    }

    LocationAnalysis {
        location,
        invariants,
        models_used: models.len(),
        snapshots_seen,
        tainted,
    }
}

/// The §2.3 variable-order heuristic: pointer variables, parameters
/// first, then variables directly reachable from the boundaries of
/// already-analyzed variables, `res` last.
fn variable_order(
    models: &[StackHeapModel],
    vt: &BTreeMap<Symbol, VarTy>,
    param_order: &[Symbol],
) -> Vec<Symbol> {
    let res = Symbol::intern("res");
    let all_vars: Vec<Symbol> = models[0].stack.vars().collect();
    let pointer = |v: &Symbol| !matches!(vt.get(v), Some(VarTy::Int));

    let mut queue: Vec<Symbol> = Vec::new();
    for p in param_order {
        if all_vars.contains(p) && pointer(p) {
            queue.push(*p);
        }
    }
    for v in &all_vars {
        if *v != res && pointer(v) && !queue.contains(v) {
            queue.push(*v);
        }
    }
    if all_vars.contains(&res) && pointer(&res) {
        queue.push(res);
    }

    // Dynamic selection: prefer the first queued variable that showed up
    // in the boundary of an already-analyzed one.
    let mut order: Vec<Symbol> = Vec::new();
    let mut boundary_seen: BTreeSet<Symbol> = BTreeSet::new();
    let mut remaining = queue;
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|v| boundary_seen.contains(v))
            .unwrap_or(0);
        let v = remaining.remove(pick);
        // Record the boundary this variable produces on the *full* models
        // (a cheap approximation: splitting residues mid-loop would give
        // the precise set, but the reachability structure is the same).
        let split = split_heap(models, v);
        for item in &split.boundary {
            if let crate::split::BoundaryItem::Var(w) = item {
                boundary_seen.insert(*w);
            }
        }
        order.push(v);
    }
    order
}

/// Free variables allowed at a location: parameters and `res` for entry
/// and exits (function pre/postconditions, §2.3: "SLING only uses the
/// function's parameters and the ghost variable res as free variables");
/// all in-scope stack variables for labels and loop heads.
fn scope_free_vars(
    location: Location,
    param_order: &[Symbol],
    models: &[StackHeapModel],
) -> BTreeSet<Symbol> {
    match location {
        Location::Entry | Location::Exit(_) => {
            let mut free: BTreeSet<Symbol> = param_order.iter().copied().collect();
            free.insert(Symbol::intern("res"));
            free
        }
        Location::Label(_) | Location::LoopHead(_) => models[0].stack.vars().collect(),
    }
}

/// Normalizes an invariant's binders: every variable outside the allowed
/// free set becomes existential (e.g. the local `tmp` in the paper's
/// `F_L3`), unused binders are dropped, and the survivors are renamed to
/// `u1, u2, ...` in first-occurrence order — the paper's presentation.
fn finalize_formula(formula: &mut SymHeap, free: &BTreeSet<Symbol>) {
    // Quantify locals and any stray frees.
    for v in formula.free_vars() {
        if !free.contains(&v) {
            formula.exists.push(v);
        }
    }
    // Drop binders that no longer occur; dedupe.
    let mut used = BTreeSet::new();
    for s in &formula.spatial {
        s.free_vars_into(&mut used);
    }
    for p in &formula.pure {
        p.free_vars_into(&mut used);
    }
    let mut seen = BTreeSet::new();
    formula
        .exists
        .retain(|u| used.contains(u) && seen.insert(*u));

    // Rename to u1..uk in first-occurrence order (stable, readable).
    let binders: BTreeSet<Symbol> = formula.exists.iter().copied().collect();
    let mut order: Vec<Symbol> = Vec::new();
    let note = |e: &sling_logic::Expr, order: &mut Vec<Symbol>| {
        for v in e.free_vars() {
            if binders.contains(&v) && !order.contains(&v) {
                order.push(v);
            }
        }
    };
    for s in &formula.spatial {
        match s {
            sling_logic::SpatialAtom::PointsTo { root, fields, .. } => {
                note(root, &mut order);
                for f in fields {
                    note(&f.value, &mut order);
                }
            }
            sling_logic::SpatialAtom::Pred { args, .. } => {
                for a in args {
                    note(a, &mut order);
                }
            }
        }
    }
    for p in &formula.pure {
        let (a, b) = p.operands();
        note(a, &mut order);
        note(b, &mut order);
    }
    let mut fresh = FreshVars::new("u");
    fresh.avoid_all(free.iter().copied());
    let map: sling_logic::Subst = order
        .iter()
        .map(|&old| (old, sling_logic::Expr::Var(fresh.next())))
        .collect();
    *formula = sling_logic::subst_symheap_bound(formula, &map);
    // Binder list in occurrence order.
    formula.exists = order
        .iter()
        .map(|old| match map.get(old) {
            Some(sling_logic::Expr::Var(n)) => *n,
            _ => *old,
        })
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::request::{AnalysisRequest, InputSource};
    use crate::spec::{InputSpec, ValueSpec};
    use sling_lang::{check_program, parse_program, ListLayout};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    const CONCAT: &str = "
        struct Node { next: Node*; prev: Node*; }
        fn concat(x: Node*, y: Node*) -> Node* {
            @L1;
            if (x == null) { @L2; return y; }
            else {
                var tmp: Node* = concat(x->next, y);
                x->next = tmp;
                if (tmp != null) { tmp->prev = x; }
                @L3;
                return x;
            }
        }";

    const DLL_PRED: &str = "
        pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
            emp & hd == nx & pr == tl
          | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx);";

    fn node_layout() -> ListLayout {
        ListLayout {
            ty: sym("Node"),
            nfields: 2,
            next: 0,
            prev: Some(1),
            data: None,
        }
    }

    /// `(x, y)`: two disjoint doubly linked lists, declaratively.
    fn dll_builder(n: usize, m: usize) -> InputSource {
        InputSpec::seeded((n * 31 + m) as u64)
            .arg(ValueSpec::dll(node_layout(), n))
            .arg(ValueSpec::dll(node_layout(), m))
            .into()
    }

    fn run_concat() -> Report {
        let engine = Engine::builder()
            .program_source(CONCAT)
            .unwrap()
            .predicates_source(DLL_PRED)
            .unwrap()
            .build()
            .unwrap();
        let request = AnalysisRequest::new("concat").inputs(vec![
            dll_builder(0, 0),
            dll_builder(0, 2),
            dll_builder(3, 0),
            dll_builder(3, 2),
        ]);
        engine.analyze(&request).unwrap()
    }

    #[test]
    fn concat_end_to_end() {
        let report = run_concat();
        assert_eq!(report.metrics.runs, 4);
        assert_eq!(report.metrics.faulted_runs, 0);
        assert!(report.metrics.traces > 10);
        assert_eq!(report.declared_locations.len(), 6);

        // Precondition at L1: two disjoint dlls (or the empty cases).
        let l1 = report.at(Location::Label(sym("L1"))).expect("L1 reached");
        assert!(!l1.invariants.is_empty());
        let strongest = &l1.invariants[0];
        let s = strongest.formula.to_string();
        assert!(s.contains("dll(x") || s.contains("x == nil"), "L1: {s}");

        // Postcondition at the non-nil exit (the paper's F'_L3 — res is
        // the ghost bound at the return) mentions res == x.
        let exit1 = report.at(Location::Exit(1)).expect("exit#1 reached");
        let found = exit1.invariants.iter().any(|i| {
            let t = i.formula.to_string();
            t.contains("res == x") || t.contains("x == res")
        });
        assert!(
            found,
            "exit#1 should know res == x: {:?}",
            exit1
                .invariants
                .iter()
                .map(|i| i.formula.to_string())
                .collect::<Vec<_>>()
        );

        // The paper's three-segment shape:
        // dll(x,...,tmp) * dll(tmp, x, ..., y) * dll(y, ..., nil)
        // (tmp is out of scope at the exit, so it shows as an existential
        // — the shape is three dll atoms with x and y rooted).
        let shape = exit1.invariants.iter().any(|i| {
            let t = i.formula.to_string();
            t.contains("dll(x") && t.contains("dll(y") && t.matches("dll(").count() >= 3
        });
        assert!(
            shape,
            "exit#1 three-segment shape missing: {:?}",
            exit1
                .invariants
                .iter()
                .map(|i| i.formula.to_string())
                .collect::<Vec<_>>()
        );

        // Exit invariants validated by the frame rule (not spurious).
        assert!(exit1.invariants.iter().any(|i| !i.spurious));

        // exit#0 (x == nil branch): x == nil and res == y.
        let exit0 = report.at(Location::Exit(0)).expect("exit#0 reached");
        let e0ok = exit0.invariants.iter().any(|i| {
            let t = i.formula.to_string();
            t.contains("x == nil") && (t.contains("res == y") || t.contains("y == res"))
        });
        assert!(
            e0ok,
            "exit#0: {:?}",
            exit0
                .invariants
                .iter()
                .map(|i| i.formula.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_input_engine_run() {
        // Migrated from the removed positional-shim test: one input, one
        // run, an entry report — through the engine API.
        let engine = Engine::builder()
            .program_source(CONCAT)
            .unwrap()
            .predicates_source(DLL_PRED)
            .unwrap()
            .build()
            .unwrap();
        let report = engine
            .analyze(&AnalysisRequest::new("concat").input(dll_builder(2, 1)))
            .unwrap();
        assert_eq!(report.metrics.runs, 1);
        assert!(report.at(Location::Entry).is_some());
    }

    #[test]
    fn variable_order_matches_paper() {
        // At the non-nil return (the paper's L3 with the ghost `res`)
        // the order must be x, tmp, y, res (§2.3).
        let program = parse_program(CONCAT).unwrap();
        check_program(&program).unwrap();
        let compiled = sling_vm::Compiler::compile(&program);
        let inputs = vec![dll_builder(3, 2)];
        let collected = collect_models(
            &program,
            &compiled,
            sym("concat"),
            &inputs,
            VmConfig::default(),
            TraceConfig::default(),
            Executor::default(),
        );
        let by_loc = collected.by_location();
        let snaps = &by_loc[&Location::Exit(1)];
        let models: Vec<StackHeapModel> = snaps.iter().map(|s| s.model.clone()).collect();
        let vt = var_types(&models);
        let order = variable_order(&models, &vt, &[sym("x"), sym("y")]);
        assert_eq!(order, vec![sym("x"), sym("tmp"), sym("y"), sym("res")]);
    }
}
