//! Analysis requests: what to analyze and on which inputs.

use sling_logic::Symbol;

use crate::collect::InputBuilder;
use crate::pipeline::SlingConfig;

/// One unit of work for an [`crate::Engine`]: a target function of the
/// engine's program, the test inputs to trace it on, and an optional
/// per-request configuration override.
///
/// Built fluently:
///
/// ```ignore
/// let request = AnalysisRequest::new("concat")
///     .input(Box::new(|heap| { /* allocate arguments */ vec![] }))
///     .config(SlingConfig { max_models_per_location: 16, ..engine.config().clone() });
/// ```
pub struct AnalysisRequest {
    /// The function to analyze.
    pub target: Symbol,
    /// Input builders; each produces the argument vector for one traced
    /// run, allocating directly in the VM heap.
    pub inputs: Vec<InputBuilder>,
    /// Overrides the engine's configuration for this request only.
    pub config: Option<SlingConfig>,
}

impl AnalysisRequest {
    /// A request for `target` with no inputs yet.
    pub fn new(target: impl Into<Symbol>) -> AnalysisRequest {
        AnalysisRequest {
            target: target.into(),
            inputs: Vec::new(),
            config: None,
        }
    }

    /// Adds one input builder.
    pub fn input(mut self, builder: InputBuilder) -> AnalysisRequest {
        self.inputs.push(builder);
        self
    }

    /// Adds a batch of input builders.
    pub fn inputs<I: IntoIterator<Item = InputBuilder>>(mut self, builders: I) -> AnalysisRequest {
        self.inputs.extend(builders);
        self
    }

    /// Overrides the engine configuration for this request.
    pub fn config(mut self, config: SlingConfig) -> AnalysisRequest {
        self.config = Some(config);
        self
    }
}

impl std::fmt::Debug for AnalysisRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisRequest")
            .field("target", &self.target)
            .field("inputs", &self.inputs.len())
            .field("config", &self.config)
            .finish()
    }
}
