//! Analysis requests: what to analyze and on which inputs.
//!
//! A request pairs a target function with its test inputs, each an
//! [`InputSource`] — either a declarative [`InputSpec`] (the normal
//! case: plain data, loggable and replayable) or a [`custom
//! closure`](InputSource::custom) for inputs a spec cannot express.
//! Requests are `Send + Sync + Clone + Debug`, so one batch can be
//! cloned, logged, and fanned out across the worker threads of
//! [`Engine::analyze_all`](crate::Engine::analyze_all).

use std::sync::Arc;

use sling_lang::RtHeap;
use sling_logic::Symbol;
use sling_models::Val;

use crate::pipeline::SlingConfig;
use crate::spec::InputSpec;

/// Builds the argument vector for one run, allocating input structures
/// directly in the VM heap. This is the type behind
/// [`InputSource::Custom`] — shared, thread-safe, and cheap to clone.
pub type InputBuilder = Arc<dyn Fn(&mut RtHeap) -> Vec<Val> + Send + Sync>;

/// One test input: how to materialize the argument vector for one traced
/// run of the target.
#[derive(Clone)]
pub enum InputSource {
    /// A declarative, seeded [`InputSpec`] (preferred: describable and
    /// replayable).
    Spec(InputSpec),
    /// An arbitrary builder closure — the escape hatch for inputs a spec
    /// cannot express (nested structures, aliased arguments,
    /// deliberately corrupted shapes).
    Custom(InputBuilder),
}

impl InputSource {
    /// Wraps a builder closure as a custom input source.
    pub fn custom<F>(f: F) -> InputSource
    where
        F: Fn(&mut RtHeap) -> Vec<Val> + Send + Sync + 'static,
    {
        InputSource::Custom(Arc::new(f))
    }

    /// Materializes the argument vector in `heap`.
    pub fn build(&self, heap: &mut RtHeap) -> Vec<Val> {
        match self {
            InputSource::Spec(spec) => spec.build(heap),
            InputSource::Custom(f) => f(heap),
        }
    }
}

impl std::fmt::Debug for InputSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputSource::Spec(spec) => f.debug_tuple("Spec").field(spec).finish(),
            InputSource::Custom(_) => f.write_str("Custom(<closure>)"),
        }
    }
}

impl From<InputSpec> for InputSource {
    fn from(spec: InputSpec) -> InputSource {
        InputSource::Spec(spec)
    }
}

impl From<InputBuilder> for InputSource {
    fn from(builder: InputBuilder) -> InputSource {
        InputSource::Custom(builder)
    }
}

/// One unit of work for an [`crate::Engine`]: a target function of the
/// engine's program, the test inputs to trace it on, and an optional
/// per-request configuration override.
///
/// Built fluently:
///
/// ```
/// use sling::{AnalysisRequest, InputSpec, ListLayout, SlingConfig, ValueSpec};
/// use sling_logic::Symbol;
///
/// let layout = ListLayout {
///     ty: Symbol::intern("RNode"), nfields: 2, next: 0, prev: Some(1), data: None,
/// };
/// let request = AnalysisRequest::new("concat")
///     .input(InputSpec::seeded(7).arg(ValueSpec::dll(layout, 3)))
///     .config(SlingConfig { max_models_per_location: 16, ..SlingConfig::default() });
/// assert_eq!(request.inputs.len(), 1);
/// assert_eq!(request.config.unwrap().max_models_per_location, 16);
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisRequest {
    /// The function to analyze.
    pub target: Symbol,
    /// Input sources; each produces the argument vector for one traced
    /// run.
    pub inputs: Vec<InputSource>,
    /// Overrides the engine's configuration for this request only.
    pub config: Option<SlingConfig>,
}

impl AnalysisRequest {
    /// A request for `target` with no inputs yet.
    pub fn new(target: impl Into<Symbol>) -> AnalysisRequest {
        AnalysisRequest {
            target: target.into(),
            inputs: Vec::new(),
            config: None,
        }
    }

    /// Adds one input (an [`InputSpec`] or a pre-built [`InputSource`]).
    pub fn input(mut self, source: impl Into<InputSource>) -> AnalysisRequest {
        self.inputs.push(source.into());
        self
    }

    /// Adds one custom builder closure — the escape hatch for inputs an
    /// [`InputSpec`] cannot express.
    pub fn custom<F>(self, f: F) -> AnalysisRequest
    where
        F: Fn(&mut RtHeap) -> Vec<Val> + Send + Sync + 'static,
    {
        self.input(InputSource::custom(f))
    }

    /// Adds a batch of inputs.
    pub fn inputs<I>(mut self, sources: I) -> AnalysisRequest
    where
        I: IntoIterator,
        I::Item: Into<InputSource>,
    {
        self.inputs.extend(sources.into_iter().map(Into::into));
        self
    }

    /// Overrides the engine configuration for this request.
    pub fn config(mut self, config: SlingConfig) -> AnalysisRequest {
        self.config = Some(config);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ValueSpec;

    #[test]
    fn requests_are_send_sync_clone_debug() {
        fn assert_traits<T: Send + Sync + Clone + std::fmt::Debug>() {}
        assert_traits::<AnalysisRequest>();
        assert_traits::<InputSource>();
        assert_traits::<InputSpec>();
    }

    #[test]
    fn spec_and_custom_inputs_mix() {
        let request = AnalysisRequest::new("f")
            .input(InputSpec::seeded(1).arg(ValueSpec::int(3)))
            .custom(|_heap| vec![Val::Nil])
            .inputs([InputSpec::new(), InputSpec::seeded(2)]);
        assert_eq!(request.inputs.len(), 4);
        let text = format!("{request:?}");
        assert!(text.contains("Custom(<closure>)"), "{text}");
        assert!(text.contains("Spec"), "{text}");

        // Cloning shares custom closures instead of losing them.
        let copy = request.clone();
        let mut heap = sling_lang::RtHeap::new();
        assert_eq!(copy.inputs[1].build(&mut heap), vec![Val::Nil]);
        assert_eq!(copy.inputs[0].build(&mut heap), vec![Val::Int(3)]);
    }
}
