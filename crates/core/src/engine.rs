//! The long-lived analysis engine and its builder.
//!
//! An [`Engine`] owns everything that is expensive to set up and cheap
//! to reuse: the parsed, type-checked [`Program`], its [`TypeEnv`], the
//! [`PredEnv`] of inductive predicate definitions, the base
//! [`SlingConfig`], and a shared [`CheckCache`] that memoizes checker
//! reductions across every request served. Construction goes through
//! [`EngineBuilder`] (`Engine::builder()`); work is described by
//! [`AnalysisRequest`]s and answered with [`Report`]s.
//!
//! Batch analysis ([`Engine::analyze_all`]) runs many target functions
//! against the one predicate environment; because the checker cache is
//! keyed on canonical sub-heap shapes, entailments established while
//! analyzing one function are reused by the next — the second request
//! for a list-shaped argument typically starts warm.
//!
//! # Two levels of parallelism
//!
//! The worker budget ([`EngineBuilder::parallelism`], defaulting to the
//! available cores, overridable with the `SLING_PARALLELISM` environment
//! variable) is spent at whichever level has the work:
//!
//! * **Across requests** — requests are `Send + Sync` (built from
//!   declarative [`InputSpec`](crate::InputSpec)s or `Send + Sync`
//!   closures), so [`Engine::analyze_all`] fans a batch out over a
//!   scoped thread pool. Reports are always assembled in *request
//!   order*, formula-for-formula identical to a sequential run; callers
//!   that want results as they complete pass a streaming [`ReportSink`]
//!   to [`Engine::analyze_all_with`].
//! * **Across locations** — a single [`Engine::analyze`] (or a
//!   one-request batch) fans its per-location inference out over the
//!   same pool instead, so single-target workloads that cannot batch
//!   still scale. [`RunMetrics::workers`](crate::RunMetrics) reports
//!   the count actually used.
//!
//! The budget divides, never multiplies: with `r` requests in flight
//! each request fans its locations out over its share of the budget —
//! `parallelism / r`, with the remainder distributed one extra worker
//! each to the first `parallelism % r` requests, so the whole budget is
//! spent (a saturated batch runs locations sequentially, a one-request
//! batch gets the whole budget inside the request) and total thread
//! count stays bounded by the budget. The engine's entailment cache is
//! sharded, so worker threads memoize concurrently without serializing
//! on one lock.
//!
//! # Cache lifecycle
//!
//! With [`EngineBuilder::cache_path`] the entailment cache outlives the
//! process: `build()` warm-starts from the snapshot at that path when
//! one exists (rejecting corrupt files, and — because snapshots carry
//! one fingerprint *per predicate* — dropping only the entries that
//! touch changed predicates when the library changed partially; see
//! [`sling_checker::persist`]), and [`Engine::save_cache`] writes the
//! cache back. [`CacheStats::warm_hits`] reports how many queries the
//! restored entries answered.
//!
//! [`EngineBuilder::cache_capacity`] bounds the cache: past the bound,
//! the least-recently-used entry of the landing shard is evicted
//! ([`CacheStats::evictions`], [`CacheStats::resident_bytes`]).
//! [`Engine::absorb_snapshot`] folds sibling processes' snapshots into
//! the live cache, newest-generation-wins on collisions — the scale-out
//! story for fleets sharing a snapshot directory.
//!
//! # Examples
//!
//! ```
//! use sling::{AnalysisRequest, Engine, InputSpec, ListLayout, ValueSpec};
//! use sling_logic::Symbol;
//!
//! fn build(path: &std::path::Path) -> Result<Engine, sling::BuildError> {
//!     Engine::builder()
//!         .program_source(
//!             "struct ENode { next: ENode*; }
//!              fn walk(x: ENode*) -> ENode* {
//!                  var c: ENode* = x;
//!                  while @w (c != null) { c = c->next; }
//!                  return x;
//!              }",
//!         )?
//!         .predicates_source(
//!             "pred elist(x: ENode*) := emp & x == nil
//!                | exists u. x -> ENode{next: u} * elist(u);",
//!         )?
//!         .cache_path(path) // persistent entailment cache
//!         .build()
//! }
//!
//! let path = std::env::temp_dir().join(format!("sling-engine-doc-{}.bin", std::process::id()));
//! let layout = ListLayout {
//!     ty: Symbol::intern("ENode"), nfields: 1, next: 0, prev: None, data: None,
//! };
//! let request = AnalysisRequest::new("walk")
//!     .input(InputSpec::seeded(3).arg(ValueSpec::sll(layout, 4)));
//!
//! let cold = build(&path)?;
//! assert_eq!(cold.warm_entries(), 0);
//! let report = cold.analyze(&request)?;
//! assert!(report.invariant_count() > 0);
//! cold.save_cache()?; // snapshot for the next process
//!
//! let warm = build(&path)?;
//! assert!(warm.warm_entries() > 0);
//! let rerun = warm.analyze(&request)?;
//! assert!(rerun.cache.warm_hits > 0, "restored entries answered queries");
//! std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sling_analysis::{analyze_program, AnalysisSettings, Diagnostic, Diagnostics, ProgramAnalysis};
use sling_checker::{persist, CacheStats, CheckCache, CheckCtx, EnvProfile, PersistError};
use sling_lang::{check_program, parse_program, Location, Program, Snapshot};
use sling_logic::{check_pred_env, parse_predicates, PredDef, PredEnv, Symbol, TypeEnv};

use crate::collect::Executor;
use crate::pipeline::{infer_location, run_target, SlingConfig, VerifySettings};
use crate::remote::RemoteCacheClient;
use crate::report::{BatchReport, LocationAnalysis, Report};
use crate::request::AnalysisRequest;

/// Why an [`EngineBuilder`] could not produce an [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No program was supplied.
    MissingProgram,
    /// MiniC source failed to parse.
    Parse(String),
    /// The program failed type checking.
    Type(String),
    /// Predicate source failed to parse.
    PredicateParse(String),
    /// A predicate definition was rejected (duplicate name, ill-formed
    /// body, non-decreasing recursion, ...).
    Predicate(String),
    /// The static-diagnostics pass found deny-level problems: the full
    /// findings (warnings included, for context) ride along. Produced by
    /// the lint gate enabled via [`EngineBuilder::static_analysis`] and
    /// by the always-on predicate-productivity check (`SL001`).
    Rejected(Diagnostics),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingProgram => {
                write!(
                    f,
                    "no program supplied: call `program(..)` or `program_source(..)`"
                )
            }
            BuildError::Parse(e) => write!(f, "program parse error: {e}"),
            BuildError::Type(e) => write!(f, "program type error: {e}"),
            BuildError::PredicateParse(e) => write!(f, "predicate parse error: {e}"),
            BuildError::Predicate(e) => write!(f, "predicate definition error: {e}"),
            BuildError::Rejected(diags) => {
                write!(
                    f,
                    "program rejected by static diagnostics ({} error{}):\n{diags}",
                    diags.deny_count(),
                    if diags.deny_count() == 1 { "" } else { "s" },
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Why a request could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The request's target is not a function of the engine's program.
    UnknownTarget(Symbol),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::UnknownTarget(t) => {
                write!(f, "target `{t}` is not a function of the engine's program")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Typed builder for [`Engine`]; obtained from [`Engine::builder`].
#[derive(Debug, Default)]
pub struct EngineBuilder {
    program: Option<Program>,
    preds: PredEnv,
    config: SlingConfig,
    cache: Option<Arc<CheckCache>>,
    cache_path: Option<PathBuf>,
    cache_capacity: Option<usize>,
    parallelism: Option<usize>,
    executor: Option<Executor>,
    analysis: Option<AnalysisSettings>,
    remote_cache: Option<String>,
    remote_sync_interval: Option<std::time::Duration>,
}

impl EngineBuilder {
    /// Supplies an already-parsed program (type-checked at `build`).
    pub fn program(mut self, program: Program) -> EngineBuilder {
        self.program = Some(program);
        self
    }

    /// Parses MiniC source and supplies it as the program.
    pub fn program_source(self, source: &str) -> Result<EngineBuilder, BuildError> {
        let program = parse_program(source).map_err(|e| BuildError::Parse(e.to_string()))?;
        Ok(self.program(program))
    }

    /// Adds predicate definitions to the engine's environment.
    pub fn predicates<I>(mut self, defs: I) -> Result<EngineBuilder, BuildError>
    where
        I: IntoIterator<Item = PredDef>,
    {
        for def in defs {
            self.preds
                .define(def)
                .map_err(|e| BuildError::Predicate(e.to_string()))?;
        }
        Ok(self)
    }

    /// Parses predicate source and adds every definition.
    pub fn predicates_source(self, source: &str) -> Result<EngineBuilder, BuildError> {
        let defs =
            parse_predicates(source).map_err(|e| BuildError::PredicateParse(e.to_string()))?;
        self.predicates(defs)
    }

    /// Replaces the predicate environment wholesale (e.g. with a
    /// pre-built library).
    pub fn pred_env(mut self, preds: PredEnv) -> EngineBuilder {
        self.preds = preds;
        self
    }

    /// Sets the base configuration (requests may override per call).
    pub fn config(mut self, config: SlingConfig) -> EngineBuilder {
        self.config = config;
        self
    }

    /// Enables the static-verification post-pass: every reported
    /// invariant is graded against its siblings by bounded unfolding
    /// (see [`sling_checker::verify`]), and refutation witnesses drive
    /// up to [`VerifySettings::cegir_rounds`] counterexample-guided
    /// re-collection rounds. Off by default; setting the `SLING_VERIFY`
    /// environment variable to `off`/`0`/`false` force-disables the
    /// pass at run time without rebuilding the engine.
    pub fn verification(mut self, settings: VerifySettings) -> EngineBuilder {
        self.config.verify = Some(settings);
        self
    }

    /// Shares an existing checker cache with this engine, so entailments
    /// memoized by sibling engines (e.g. a corpus run over one predicate
    /// library) carry over. By default each engine gets a private cache.
    pub fn shared_cache(mut self, cache: Arc<CheckCache>) -> EngineBuilder {
        self.cache = Some(cache);
        self
    }

    /// Makes the entailment cache persistent: at `build()` the engine
    /// warm-starts from the snapshot at `path` (if one exists and was
    /// written under the same program types and predicate library), and
    /// [`Engine::save_cache`] writes the cache back to the same path.
    ///
    /// A missing file, a corrupted file, or a snapshot from a different
    /// environment never fails the build — the cache is an optimization,
    /// so the engine simply starts cold. [`Engine::warm_entries`]
    /// reports how many entries were actually restored; callers that
    /// need the typed rejection reason use
    /// [`sling_checker::persist::load`] directly.
    pub fn cache_path(mut self, path: impl Into<PathBuf>) -> EngineBuilder {
        self.cache_path = Some(path.into());
        self
    }

    /// Bounds the entailment cache to roughly `capacity` entries: past
    /// the bound the least-recently-used entry of the landing shard is
    /// evicted to make room ([`CacheStats::evictions`] counts them, and
    /// [`CacheStats::resident_bytes`] reports what is held). The bound
    /// is enforced per shard, so the retained total can overshoot a
    /// capacity that is not a multiple of the shard count by at most
    /// `SHARD_COUNT - 1` entries.
    ///
    /// Ignored when [`EngineBuilder::shared_cache`] supplies the cache —
    /// the shared cache's own capacity governs.
    pub fn cache_capacity(mut self, capacity: usize) -> EngineBuilder {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Sets the number of worker threads the engine may use — across
    /// requests in [`Engine::analyze_all`], and across locations inside
    /// a single [`Engine::analyze`] (clamped to at least 1; `1` means
    /// strictly sequential). Defaults to the `SLING_PARALLELISM`
    /// environment variable when set, else the available CPU cores.
    pub fn parallelism(mut self, workers: usize) -> EngineBuilder {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Selects the execution tier trace collection runs on: the compiled
    /// bytecode VM (default, the hot path) or the tree-walk interpreter
    /// (the differential-testing oracle — both produce identical traces,
    /// so this is a performance knob, not a semantics one). An explicit
    /// call wins over the `SLING_EXECUTOR` environment variable, which
    /// in turn wins over the [`SlingConfig::executor`] field; requests
    /// may still override per call via their own config.
    pub fn executor(mut self, executor: Executor) -> EngineBuilder {
        self.executor = Some(executor);
        self
    }

    /// Joins the distributed entailment-cache tier at `addr` (a
    /// `host:port` served by `sling-serve --cache-server`): every local
    /// cache miss consults the server before searching, fresh verdicts
    /// are uploaded write-behind, and a periodic anti-entropy round
    /// pulls entries computed by sibling engines. Fetched entries are
    /// validated against this engine's per-predicate fingerprints
    /// (exactly the snapshot-loading rule), so engines with divergent
    /// predicate libraries share only what their closures agree on.
    ///
    /// The tier is an accelerator, never a dependency: a dead, slow,
    /// or mid-run-killed server degrades the engine to local-only
    /// operation ([`CacheStats::remote_degraded`] counts it) with
    /// reconnect backoff — it never fails or stalls an analysis.
    pub fn remote_cache(mut self, addr: impl Into<String>) -> EngineBuilder {
        self.remote_cache = Some(addr.into());
        self
    }

    /// Overrides the anti-entropy period of the remote cache tier
    /// ([`crate::remote::DEFAULT_SYNC_INTERVAL`] by default). No effect
    /// without [`EngineBuilder::remote_cache`].
    pub fn remote_sync_interval(mut self, interval: std::time::Duration) -> EngineBuilder {
        self.remote_sync_interval = Some(interval);
        self
    }

    /// Enables the static-diagnostics pass (`sling-analysis`) at
    /// `build()`: the program's control flow is analyzed before any
    /// trace runs, deny-level findings (definite use-before-init,
    /// unreachable snapshot locations, definite-null dereferences, ...)
    /// fail the build with [`BuildError::Rejected`], and warnings ride
    /// along in every report's
    /// [`Report::static_warnings`](crate::Report) for the report's
    /// target. The pass also feeds the inference pre-filter: statically
    /// unreachable snapshot locations are attached to reports so an
    /// empty inference site is explained rather than silent. Off by
    /// default.
    pub fn static_analysis(mut self, settings: AnalysisSettings) -> EngineBuilder {
        self.analysis = Some(settings);
        self
    }

    /// Type-checks the program, lints the predicate environment, and
    /// finalizes the engine.
    pub fn build(self) -> Result<Engine, BuildError> {
        let program = self.program.ok_or(BuildError::MissingProgram)?;
        check_program(&program).map_err(|e| BuildError::Type(e.to_string()))?;
        let types = program.type_env();
        // Per-definition checks ran at `define`; the env-level pass
        // additionally rejects unguarded call *cycles* across
        // definitions (mutual recursion that never consumes a cell),
        // which bounded unfolding — both the checker's and the
        // verifier's — could not terminate on. Its findings flow through
        // the shared diagnostics vocabulary (`SL001`).
        if let Err(e) = check_pred_env(&self.preds) {
            let mut diags = Diagnostics::new();
            diags.push(Diagnostic::from_wf_error(&e));
            return Err(BuildError::Rejected(diags));
        }
        // The opt-in lint gate: deny-level findings fail the build with
        // the *full* report (warnings included, for context); with only
        // warnings the analysis is kept on the engine, to be surfaced in
        // every report for its target.
        let analysis = self
            .analysis
            .map(|settings| analyze_program(&program, &settings));
        if let Some(analysis) = &analysis {
            if analysis.diagnostics.has_deny() {
                return Err(BuildError::Rejected(analysis.diagnostics.clone()));
            }
        }
        let profile = EnvProfile::new(&types, &self.preds);
        let mut config = self.config;
        if let Some(executor) = self.executor.or_else(executor_from_env) {
            config.executor = executor;
        }
        // Compile to bytecode once per engine, whatever the executor:
        // compilation is a single cheap pass, and pre-compiling keeps
        // per-request `executor` overrides zero-cost either way.
        let compile_start = std::time::Instant::now();
        let compiled = sling_vm::Compiler::compile(&program);
        let compile_seconds = compile_start.elapsed().as_secs_f64();
        let cache = match (self.cache, self.cache_capacity) {
            (Some(shared), _) => shared,
            (None, Some(capacity)) => Arc::new(CheckCache::with_capacity(capacity)),
            (None, None) => Arc::default(),
        };
        // A partially stale snapshot still warms the engine with its
        // surviving entries; only the stale subset re-runs cold.
        let warm_entries = match &self.cache_path {
            Some(path) if path.exists() => match persist::load(&cache, &profile, path) {
                Ok(n) => n,
                Err(PersistError::PartialStale { kept, .. }) => {
                    // Re-save the surviving subset under the current
                    // profile right away: the next boot then loads
                    // clean instead of re-dropping the same stale
                    // entries. Best-effort — the snapshot is an
                    // optimization, so an unwritable path never fails
                    // the build.
                    let _ = persist::save(&cache, &profile, path);
                    kept
                }
                Err(_) => 0,
            },
            _ => 0,
        };
        // Joining the cache tier never touches the network at build
        // time: connections are lazy, so a dead server costs nothing
        // until the first fetch (which degrades instantly).
        let remote = self.remote_cache.map(|addr| {
            RemoteCacheClient::new(
                addr,
                profile.clone(),
                Arc::clone(&cache),
                self.remote_sync_interval
                    .unwrap_or(crate::remote::DEFAULT_SYNC_INTERVAL),
            )
        });
        Ok(Engine {
            program,
            compiled,
            compile_seconds,
            types,
            preds: self.preds,
            config,
            cache,
            cache_path: self.cache_path,
            warm_entries: AtomicU64::new(warm_entries),
            profile,
            parallelism: self.parallelism.unwrap_or_else(default_parallelism),
            analysis,
            remote,
        })
    }
}

/// Copies a report's remote-cache counters from its (exact) cache
/// delta into the run metrics, converting the round-trip nanoseconds
/// to seconds. Only called where the per-report delta is authoritative
/// — [`Engine::analyze`] and sequential batches; parallel batches
/// leave the per-report fields zeroed, like the cache delta itself.
fn stamp_remote_metrics(report: &mut Report) {
    report.metrics.remote_hits = report.cache.remote_hits;
    report.metrics.remote_misses = report.cache.remote_misses;
    report.metrics.remote_degraded = report.cache.remote_degraded;
    report.metrics.remote_seconds = report.cache.remote_nanos as f64 / 1e9;
}

/// The default worker count: `SLING_PARALLELISM` when set to a positive
/// integer, else the available CPU cores. An unparsable value falls back
/// to the core count, but loudly: silently ignoring `SLING_PARALLELISM=abc`
/// hides misconfiguration, so the first rejection per process warns on
/// stderr naming the bad value.
pub fn default_parallelism() -> usize {
    if let Ok(var) = std::env::var("SLING_PARALLELISM") {
        match parse_parallelism(&var) {
            Some(n) => return n,
            None => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "sling: ignoring unparsable SLING_PARALLELISM={var:?} \
                         (want a positive integer); using the available CPU cores"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a `SLING_PARALLELISM` value: a non-negative integer (with
/// surrounding whitespace tolerated), clamped to at least 1. `None` for
/// anything else — negative numbers, non-numeric text, empty strings.
fn parse_parallelism(var: &str) -> Option<usize> {
    var.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// The environment override for the execution tier: `SLING_EXECUTOR`
/// set to `bytecode` or `treewalk` (whitespace tolerated). Unset or
/// empty means no override. An unrecognized value is ignored, but
/// loudly — same first-rejection-per-process warning policy as
/// `SLING_PARALLELISM`.
fn executor_from_env() -> Option<Executor> {
    let var = std::env::var("SLING_EXECUTOR").ok()?;
    let trimmed = var.trim();
    if trimmed.is_empty() {
        return None;
    }
    match Executor::parse(trimmed) {
        Some(executor) => Some(executor),
        None => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "sling: ignoring unparsable SLING_EXECUTOR={var:?} \
                     (want \"bytecode\" or \"treewalk\"); using the configured executor"
                );
            });
            None
        }
    }
}

/// Observer for streaming batch analysis ([`Engine::analyze_all_with`]):
/// receives each [`Report`] as it completes, before the batch finishes.
///
/// `index` is the report's position in the request list. Under parallel
/// execution reports arrive in *completion* order (not request order)
/// and from worker threads, hence `Sync`. Any `Fn(usize, &Report) + Sync`
/// closure is a sink.
pub trait ReportSink: Sync {
    /// Called exactly once per request, as its report completes.
    fn report(&self, index: usize, report: &Report);
}

impl<F: Fn(usize, &Report) + Sync> ReportSink for F {
    fn report(&self, index: usize, report: &Report) {
        self(index, report)
    }
}

/// The no-op sink behind [`Engine::analyze_all`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardReports;

impl ReportSink for DiscardReports {
    fn report(&self, _index: usize, _report: &Report) {}
}

/// A reusable SLING analysis session over one program and predicate
/// environment.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug)]
pub struct Engine {
    program: Program,
    /// The program's bytecode form, compiled once at build so every
    /// request (and every CEGIR re-collection round) reuses the same
    /// chunks.
    compiled: sling_vm::CompiledProgram,
    /// How long that compilation took, stamped into every report's
    /// [`RunMetrics::compile_seconds`](crate::RunMetrics).
    compile_seconds: f64,
    types: TypeEnv,
    preds: PredEnv,
    config: SlingConfig,
    cache: Arc<CheckCache>,
    /// Where [`Engine::save_cache`] persists the cache (and where the
    /// build warm-started from), if configured.
    cache_path: Option<PathBuf>,
    /// Entries restored from `cache_path` at build time plus any
    /// absorbed later ([`Engine::absorb_snapshot`] adds to it, hence
    /// atomic).
    warm_entries: AtomicU64,
    /// Environment fingerprints (overall tag, per-predicate table),
    /// computed once at build so per-request checker contexts don't
    /// re-hash the environments and persistence can invalidate per
    /// predicate.
    profile: EnvProfile,
    parallelism: usize,
    /// The static-diagnostics result computed at build time, when the
    /// builder opted in via [`EngineBuilder::static_analysis`]. By
    /// construction it carries no deny-level findings — those fail
    /// `build()` — only warnings and the unreachable-location map.
    analysis: Option<ProgramAnalysis>,
    /// The distributed-cache-tier client, when the builder joined one
    /// via [`EngineBuilder::remote_cache`]. Dropping the engine joins
    /// its flusher and anti-entropy threads.
    remote: Option<RemoteCacheClient>,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The engine's program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The type environment derived from the program.
    pub fn types(&self) -> &TypeEnv {
        &self.types
    }

    /// The predicate environment shared by every request.
    pub fn preds(&self) -> &PredEnv {
        &self.preds
    }

    /// The base configuration.
    pub fn config(&self) -> &SlingConfig {
        &self.config
    }

    /// The number of worker threads [`Engine::analyze_all`] may use.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The static-diagnostics result computed at build time, when the
    /// engine was built with [`EngineBuilder::static_analysis`]. Never
    /// contains deny-level findings (those fail the build).
    pub fn diagnostics(&self) -> Option<&ProgramAnalysis> {
        self.analysis.as_ref()
    }

    /// The program's compiled bytecode form (one chunk per function),
    /// produced once at build time. Useful for inspecting listings via
    /// [`sling_vm::CompiledProgram::disassemble`].
    pub fn compiled(&self) -> &sling_vm::CompiledProgram {
        &self.compiled
    }

    /// Cumulative checker-cache counters for this engine's cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Entries restored from the [`EngineBuilder::cache_path`] snapshot
    /// when this engine was built, plus entries folded in later by
    /// [`Engine::absorb_snapshot`] (`0` for a cold start).
    pub fn warm_entries(&self) -> u64 {
        self.warm_entries.load(Ordering::Relaxed)
    }

    /// The persistent-cache snapshot path configured via
    /// [`EngineBuilder::cache_path`], if any. Long-lived services use
    /// this to decide whether periodic [`Engine::save_cache`] calls can
    /// succeed at all.
    pub fn cache_path(&self) -> Option<&std::path::Path> {
        self.cache_path.as_deref()
    }

    /// Snapshots the entailment cache to the configured
    /// [`EngineBuilder::cache_path`], so the next process over the same
    /// program and predicate library starts warm. Returns the number of
    /// entries written. Fails with [`std::io::ErrorKind::InvalidInput`]
    /// when no cache path was configured.
    pub fn save_cache(&self) -> std::io::Result<u64> {
        let Some(path) = &self.cache_path else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "no cache path configured: call EngineBuilder::cache_path(..)",
            ));
        };
        persist::save(&self.cache, &self.profile, path)
    }

    /// [`Engine::save_cache`] to an explicit path (the configured
    /// [`EngineBuilder::cache_path`], if any, is ignored).
    pub fn save_cache_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<u64> {
        persist::save(&self.cache, &self.profile, path.as_ref())
    }

    /// Folds a sibling process's snapshot into this engine's *live*
    /// cache ([`sling_checker::persist::merge`]): key collisions
    /// resolve newest-generation-wins (entries this engine computed
    /// itself always win), capacity is respected without evicting live
    /// entries, and entries touching predicates whose definitions
    /// changed since the sibling saved are dropped. Merged entries are
    /// warm — hits on them count in [`CacheStats::warm_hits`] — and
    /// [`Engine::warm_entries`] grows by the merged count.
    ///
    /// Long-lived services use this at boot to fold every snapshot in a
    /// cache directory instead of loading exactly one; see
    /// `sling-serve`'s directory mode.
    pub fn absorb_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<persist::MergeStats, PersistError> {
        let stats = persist::merge(&self.cache, &self.profile, path.as_ref())?;
        self.warm_entries.fetch_add(stats.merged, Ordering::Relaxed);
        Ok(stats)
    }

    /// Drops every memoized entailment (counters are kept). Long-lived
    /// services call this to bound memory between unrelated workloads;
    /// benchmarks call it to measure the cold path.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The checker context every request of this engine runs under.
    fn check_ctx<'e>(&'e self, config: &SlingConfig) -> CheckCtx<'e> {
        CheckCtx {
            types: &self.types,
            preds: &self.preds,
            config: config.check,
            cache: Some(&self.cache),
            env_tag: self.profile.env_tag(),
            remote: self
                .remote
                .as_ref()
                .map(|client| client as &dyn sling_checker::RemoteCache),
        }
    }

    /// The distributed-cache-tier client, when this engine was built
    /// with [`EngineBuilder::remote_cache`]. Tests and services use it
    /// to force an anti-entropy round ([`RemoteCacheClient::sync_now`]),
    /// drain the write-behind queue ([`RemoteCacheClient::flush`]), or
    /// inspect degradation ([`RemoteCacheClient::degraded`]).
    pub fn remote_cache(&self) -> Option<&RemoteCacheClient> {
        self.remote.as_ref()
    }

    /// Runs one (pre-validated) request with `workers` threads available
    /// for its per-location inference fan-out; the report's cache delta
    /// is left zeroed for the caller to fill in.
    fn run_request(&self, request: &AnalysisRequest, workers: usize) -> Report {
        let config = request.config.as_ref().unwrap_or(&self.config);
        let ctx = self.check_ctx(config);
        let mut report = run_target(
            &ctx,
            &self.program,
            &self.compiled,
            request.target,
            &request.inputs,
            config,
            workers,
        );
        report.metrics.compile_seconds = self.compile_seconds;
        if let Some(analysis) = &self.analysis {
            // Surface the build-time static findings scoped to this
            // report's target: warnings ride along, and statically
            // unreachable snapshot locations explain empty inference
            // sites (`Report::missing_locations`).
            report.static_warnings = analysis
                .diagnostics
                .warnings()
                .filter(|d| d.function == Some(request.target))
                .cloned()
                .collect();
            report.metrics.static_warnings = report.static_warnings.len();
            report.unreachable_locations = analysis.unreachable_in(request.target).to_vec();
        }
        report
    }

    /// Serves one request: collect traces for the target on the
    /// request's inputs, infer invariants at every reached location,
    /// validate entry/exit pairs with the frame rule.
    ///
    /// With [`Engine::parallelism`] `> 1` the per-location inference
    /// loop fans out over a scoped thread pool (the whole worker budget
    /// goes to this one request), so a single-target workload with many
    /// locations scales like a batch does; output is identical to a
    /// sequential run, and [`RunMetrics::workers`](crate::RunMetrics)
    /// reports the worker count actually used.
    pub fn analyze(&self, request: &AnalysisRequest) -> Result<Report, AnalyzeError> {
        if self.program.func(request.target).is_none() {
            return Err(AnalyzeError::UnknownTarget(request.target));
        }
        let before = self.cache.stats();
        let mut report = self.run_request(request, self.parallelism);
        report.cache = self.cache.stats().since(&before);
        stamp_remote_metrics(&mut report);
        Ok(report)
    }

    /// Serves a batch of requests against the shared predicate
    /// environment and checker cache, fanning out over up to
    /// [`Engine::parallelism`] worker threads. Targets are validated up
    /// front, so either every request runs or none does.
    ///
    /// Reports come back in *request order* and are formula-for-formula
    /// identical to a sequential run regardless of the worker count
    /// (inference is deterministic per request, and cache hits return
    /// the same reductions a cold search would). Per-report cache deltas
    /// are exact when run sequentially (`parallelism(1)`); under
    /// parallel execution concurrent requests interleave on the shared
    /// cache, so per-report deltas are left zeroed and the batch-level
    /// [`BatchReport::cache`] delta is the authoritative accounting.
    pub fn analyze_all<'r, I>(&self, requests: I) -> Result<BatchReport, AnalyzeError>
    where
        I: IntoIterator<Item = &'r AnalysisRequest>,
    {
        self.analyze_all_with(requests, &DiscardReports)
    }

    /// [`Engine::analyze_all`] with a streaming observer: `sink`
    /// receives each report as it completes (in completion order), so
    /// long batches can surface progressive results instead of blocking
    /// on the slowest request.
    pub fn analyze_all_with<'r, I, S>(
        &self,
        requests: I,
        sink: &S,
    ) -> Result<BatchReport, AnalyzeError>
    where
        I: IntoIterator<Item = &'r AnalysisRequest>,
        S: ReportSink + ?Sized,
    {
        let requests: Vec<&AnalysisRequest> = requests.into_iter().collect();
        for request in &requests {
            if self.program.func(request.target).is_none() {
                return Err(AnalyzeError::UnknownTarget(request.target));
            }
        }
        let before = self.cache.stats();
        let workers = self.parallelism.min(requests.len());
        // Divide the worker budget between the two levels: `workers`
        // requests in flight, each fanning its locations out over a
        // share of what remains. A one-request "batch" on an 8-way
        // engine gets all 8 workers inside the request; a 2-request
        // batch gets 4 each. The division is exact, not truncating:
        // the first `parallelism % workers` requests get one extra
        // inner worker, so an 8-way engine spends all 8 threads on a
        // 3-request batch (3 + 3 + 2) instead of stranding two. At most
        // `workers` requests run concurrently and fewer than `workers`
        // of them carry the +1, so concurrent thread count never
        // exceeds the budget.
        let base = self.parallelism / workers.max(1);
        let extra = self.parallelism % workers.max(1);
        let inner = |index: usize| if index < extra { base + 1 } else { base };
        let reports = if workers <= 1 {
            let mut reports = Vec::with_capacity(requests.len());
            for (index, request) in requests.iter().enumerate() {
                let at_start = self.cache.stats();
                let mut report = self.run_request(request, inner(index));
                report.cache = self.cache.stats().since(&at_start);
                stamp_remote_metrics(&mut report);
                sink.report(index, &report);
                reports.push(report);
            }
            reports
        } else {
            // The shared work-stealing scaffold: each finished report
            // lands in its request-index slot, so assembly is
            // deterministic no matter which worker ran what.
            crate::fanout::fan_out(workers, requests.len(), |index| {
                let report = self.run_request(requests[index], inner(index));
                sink.report(index, &report);
                report
            })
        };
        Ok(BatchReport {
            reports,
            cache: self.cache.stats().since(&before),
        })
    }

    /// Location-level entry point: infers invariants for `target` from
    /// externally collected snapshots, sharing the engine's predicate
    /// environment and cache. This is what benchmarking and replay
    /// tooling use to drive inference without the tracer.
    pub fn infer_at(
        &self,
        target: Symbol,
        location: Location,
        snaps: &[&Snapshot],
    ) -> Result<LocationAnalysis, AnalyzeError> {
        let Some(func) = self.program.func(target) else {
            return Err(AnalyzeError::UnknownTarget(target));
        };
        let param_order: Vec<Symbol> = func.params.iter().map(|p| p.name).collect();
        let ctx = self.check_ctx(&self.config);
        Ok(infer_location(
            &ctx,
            location,
            snaps,
            &param_order,
            &self.config,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    const SRC: &str = "
        struct TNode { next: TNode*; data: int; }
        fn id(x: TNode*) -> TNode* { return x; }";

    const PREDS: &str = "
        pred tlist(x: TNode*) := emp & x == nil
           | exists u, d. x -> TNode{next: u, data: d} * tlist(u);";

    #[test]
    fn builder_requires_a_program() {
        let err = Engine::builder().build().unwrap_err();
        assert_eq!(err, BuildError::MissingProgram);
    }

    #[test]
    fn builder_surfaces_parse_errors() {
        let err = Engine::builder().program_source("fn {").unwrap_err();
        assert!(matches!(err, BuildError::Parse(_)), "{err}");
    }

    #[test]
    fn builder_surfaces_type_errors() {
        let err = Engine::builder()
            .program_source("fn f(x: Missing*) { return; }")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Type(_)), "{err}");
    }

    #[test]
    fn build_rejects_unguarded_predicate_cycles() {
        // Each definition passes the per-def check (neither calls
        // itself), so only the env-level cycle pass at build catches
        // the divergence.
        let err = Engine::builder()
            .program_source(SRC)
            .unwrap()
            .predicates_source(
                "pred eping(x: TNode*) := epong(x);
                 pred epong(x: TNode*) := eping(x);",
            )
            .unwrap()
            .build()
            .unwrap_err();
        let BuildError::Rejected(ref diags) = err else {
            panic!("expected Rejected, got {err}");
        };
        assert_eq!(diags.len(), 1);
        let diag = &diags.items[0];
        assert_eq!(diag.code, sling_analysis::codes::UNPRODUCTIVE_PRED);
        assert!(diag.message.contains("not productive"), "{diag}");
        assert!(
            diag.notes.iter().any(|n| n.contains("->")),
            "cycle path note expected, got {diag}"
        );
        // The rendered error keeps the historical substring.
        assert!(err.to_string().contains("not productive"), "{err}");
    }

    #[test]
    fn static_analysis_gate_rejects_deny_findings_at_build() {
        // One fixture per deny lint: definite use-before-init,
        // unreachable snapshot location, definite-null dereference.
        let fixtures = [
            (
                "fn f() -> int { var y: int; return y; }",
                sling_analysis::codes::USE_BEFORE_INIT,
            ),
            (
                "fn f() -> int { return 1; @dead; }",
                sling_analysis::codes::UNREACHABLE_LOCATION,
            ),
            (
                "struct N { next: N*; }
                 fn f() -> N* { var x: N* = null; return x->next; }",
                sling_analysis::codes::NULL_DEREF,
            ),
        ];
        for (src, code) in fixtures {
            let err = Engine::builder()
                .program_source(src)
                .unwrap()
                .static_analysis(AnalysisSettings::default())
                .build()
                .unwrap_err();
            let BuildError::Rejected(ref diags) = err else {
                panic!("expected Rejected for {code}, got {err}");
            };
            assert!(
                diags.denies().any(|d| d.code == code),
                "expected {code} in {diags}"
            );
            // Without the opt-in the same program builds fine: the gate
            // never changes default behavior.
            assert!(Engine::builder()
                .program_source(src)
                .unwrap()
                .build()
                .is_ok());
        }
    }

    #[test]
    fn static_warnings_and_unreachable_sites_ride_in_reports() {
        // A warning-only program: `t`'s initializer is a dead store
        // (overwritten with no snapshot in between), which warns but
        // does not fail the build.
        let engine = Engine::builder()
            .program_source(
                "struct TNode { next: TNode*; data: int; }
                 fn touch(x: TNode*) -> TNode* {
                     var t: int = 0;
                     t = 1;
                     return x;
                 }",
            )
            .unwrap()
            .static_analysis(AnalysisSettings::default())
            .build()
            .unwrap();
        let analysis = engine.diagnostics().expect("analysis was computed");
        assert!(!analysis.diagnostics.is_empty());
        assert!(!analysis.diagnostics.has_deny());
        let report = engine
            .analyze(
                &AnalysisRequest::new("touch").input(crate::InputSpec::seeded(1).arg(
                    crate::ValueSpec::sll(
                        sling_lang::ListLayout {
                            ty: Symbol::intern("TNode"),
                            nfields: 2,
                            next: 0,
                            prev: None,
                            data: Some(1),
                        },
                        2,
                    ),
                )),
            )
            .unwrap();
        assert!(!report.static_warnings.is_empty());
        assert_eq!(report.metrics.static_warnings, report.static_warnings.len());
        assert!(report
            .static_warnings
            .iter()
            .all(|d| d.function == Some(Symbol::intern("touch"))));
        assert!(report.unreachable_locations.is_empty());
    }

    #[test]
    fn partially_stale_snapshot_is_resaved_clean_at_build() {
        use sling_logic::parse_formula;
        use sling_models::{Heap, HeapCell, Loc, Stack, StackHeapModel, Val};

        let src = "struct PSNode { next: PSNode*; }
                   fn psid(x: PSNode*) -> PSNode* { return x; }";
        let preds = |base: &str| {
            format!(
                "pred pslist(x: PSNode*) := {base}
                   | exists u. x -> PSNode{{next: u}} * pslist(u);
                 pred pscell(x: PSNode*) := exists u. x -> PSNode{{next: u}};"
            )
        };
        let list_model = |n: u64, lo: u64| {
            let mut heap = Heap::new();
            for i in 0..n {
                let next = if i + 1 < n {
                    Val::Addr(Loc::new(lo + i + 1))
                } else {
                    Val::Nil
                };
                heap.insert(
                    Loc::new(lo + i),
                    HeapCell::new(Symbol::intern("PSNode"), vec![next]),
                );
            }
            let mut stack = Stack::new();
            stack.bind(Symbol::intern("x"), Val::Addr(Loc::new(lo)));
            StackHeapModel::new(stack, heap)
        };
        let path =
            std::env::temp_dir().join(format!("sling-engine-partial-{}.bin", std::process::id()));
        std::fs::remove_file(&path).ok();

        // v1: seed the cache with one entry per predicate, snapshot it.
        let cache = Arc::new(CheckCache::new());
        let v1 = Engine::builder()
            .program_source(src)
            .unwrap()
            .predicates_source(&preds("emp & x == nil"))
            .unwrap()
            .shared_cache(Arc::clone(&cache))
            .cache_path(&path)
            .build()
            .unwrap();
        let ctx = CheckCtx::with_cache(v1.types(), v1.preds(), Default::default(), &cache);
        assert!(ctx
            .check(&list_model(2, 1), &parse_formula("pslist(x)").unwrap())
            .is_some());
        assert!(ctx
            .check(&list_model(1, 9), &parse_formula("pscell(x)").unwrap())
            .is_some());
        assert_eq!(v1.save_cache().unwrap(), 2);

        // v2: pslist's base case changed, pscell untouched. The load is
        // partially stale: the pscell entry survives, and the build must
        // immediately re-save the survivor under the v2 profile.
        let v2 = Engine::builder()
            .program_source(src)
            .unwrap()
            .predicates_source(&preds("emp & x == x"))
            .unwrap()
            .cache_path(&path)
            .build()
            .unwrap();
        assert_eq!(v2.warm_entries(), 1, "the pscell entry survives the load");

        // A third boot over the v2 environment now loads clean — the
        // stale entry is gone from the snapshot, not just from memory.
        let fresh = CheckCache::new();
        let profile = EnvProfile::new(v2.types(), v2.preds());
        assert!(
            matches!(persist::load(&fresh, &profile, &path), Ok(1)),
            "re-saved snapshot must load without PartialStale"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn builder_surfaces_duplicate_predicates() {
        let err = Engine::builder()
            .predicates_source(PREDS)
            .unwrap()
            .predicates_source(PREDS)
            .unwrap_err();
        assert!(matches!(err, BuildError::Predicate(_)), "{err}");
    }

    #[test]
    fn unknown_target_is_an_error_not_a_panic() {
        let engine = Engine::builder()
            .program_source(SRC)
            .unwrap()
            .predicates_source(PREDS)
            .unwrap()
            .build()
            .unwrap();
        let request = AnalysisRequest::new("missing");
        let err = engine.analyze(&request).unwrap_err();
        assert_eq!(err, AnalyzeError::UnknownTarget(Symbol::intern("missing")));
        assert!(engine.analyze_all([&request]).is_err());
    }

    #[test]
    fn engines_can_share_a_cache() {
        let shared = Arc::new(CheckCache::new());
        let mk = || {
            Engine::builder()
                .program_source(SRC)
                .unwrap()
                .predicates_source(PREDS)
                .unwrap()
                .shared_cache(Arc::clone(&shared))
                .build()
                .unwrap()
        };
        let a = mk();
        let b = mk();
        let request = || {
            AnalysisRequest::new("id").custom(|heap: &mut sling_lang::RtHeap| {
                let n = heap.alloc(
                    Symbol::intern("TNode"),
                    vec![sling_models::Val::Nil, sling_models::Val::Int(1)],
                );
                vec![sling_models::Val::Addr(n)]
            })
        };
        let first = a.analyze(&request()).unwrap();
        let second = b.analyze(&request()).unwrap();
        assert!(first.invariant_count() > 0);
        assert!(
            second.cache.hits > 0,
            "second engine must reuse the shared cache: {:?}",
            second.cache
        );
    }

    #[test]
    fn engines_are_shareable_across_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Engine>();
    }

    #[test]
    fn parallelism_env_parse_paths() {
        // Valid values: plain, whitespace-padded, clamped zero.
        assert_eq!(parse_parallelism("8"), Some(8));
        assert_eq!(parse_parallelism(" 3\t"), Some(3));
        assert_eq!(parse_parallelism("1"), Some(1));
        assert_eq!(parse_parallelism("0"), Some(1), "zero clamps to one");
        // Invalid values fall back (and warn once at the env layer).
        assert_eq!(parse_parallelism("abc"), None);
        assert_eq!(parse_parallelism("-2"), None);
        assert_eq!(parse_parallelism(""), None);
        assert_eq!(parse_parallelism("3.5"), None);
        assert_eq!(parse_parallelism("8 cores"), None);
    }

    #[test]
    fn parallelism_knob_clamps_to_one() {
        let engine = Engine::builder()
            .program_source(SRC)
            .unwrap()
            .parallelism(0)
            .build()
            .unwrap();
        assert_eq!(engine.parallelism(), 1);
    }

    #[test]
    fn executor_defaults_to_bytecode_and_builder_overrides() {
        // The suite itself may run under `SLING_EXECUTOR` (CI's
        // tree-walk oracle pass does exactly that), so the expected
        // builder-less resolution is env-then-config, not a constant.
        let expected = executor_from_env().unwrap_or_default();
        assert_eq!(Executor::default(), Executor::Bytecode);
        let engine = Engine::builder()
            .program_source(SRC)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(engine.config().executor, expected);
        // The engine compiles regardless of the executor, so listings
        // are always inspectable.
        assert!(engine.compiled().disassemble().contains("fn id"));

        // An explicit builder call wins over the environment.
        for wanted in [Executor::Treewalk, Executor::Bytecode] {
            let engine = Engine::builder()
                .program_source(SRC)
                .unwrap()
                .executor(wanted)
                .build()
                .unwrap();
            assert_eq!(engine.config().executor, wanted);
        }
    }

    #[test]
    fn executor_env_parse_paths() {
        // `executor_from_env` reads the process environment, which is
        // unsafe to mutate under the parallel test harness; the parse
        // layer it defers to is covered directly.
        assert_eq!(Executor::parse("bytecode"), Some(Executor::Bytecode));
        assert_eq!(Executor::parse("treewalk"), Some(Executor::Treewalk));
        assert_eq!(Executor::parse("Bytecode"), None, "names are exact");
        assert_eq!(Executor::parse("interp"), None);
    }

    #[test]
    fn reports_carry_collection_and_compile_timings() {
        // Pin the executor so the test is deterministic even when the
        // suite runs under `SLING_EXECUTOR` (CI's tree-walk pass does).
        let engine = Engine::builder()
            .program_source(SRC)
            .unwrap()
            .predicates_source(PREDS)
            .unwrap()
            .executor(Executor::Bytecode)
            .build()
            .unwrap();
        let request = AnalysisRequest::new("id").input(crate::InputSpec::seeded(1).arg(
            crate::ValueSpec::sll(
                sling_lang::ListLayout {
                    ty: Symbol::intern("TNode"),
                    nfields: 2,
                    next: 0,
                    prev: None,
                    data: Some(1),
                },
                3,
            ),
        ));
        let report = engine.analyze(&request).unwrap();
        assert_eq!(report.metrics.executor, Executor::Bytecode);
        assert!(report.metrics.collect_seconds >= 0.0);
        assert!(report.metrics.compile_seconds > 0.0, "compile was timed");
        assert!(report.metrics.collect_seconds <= report.metrics.seconds);
    }

    #[test]
    fn streaming_sink_sees_every_report() {
        let engine = Engine::builder()
            .program_source(SRC)
            .unwrap()
            .predicates_source(PREDS)
            .unwrap()
            .parallelism(2)
            .build()
            .unwrap();
        let requests: Vec<AnalysisRequest> = (0..4)
            .map(|n| {
                AnalysisRequest::new("id").input(crate::InputSpec::seeded(n).arg(
                    crate::ValueSpec::sll(
                        sling_lang::ListLayout {
                            ty: Symbol::intern("TNode"),
                            nfields: 2,
                            next: 0,
                            prev: None,
                            data: Some(1),
                        },
                        n as usize,
                    ),
                ))
            })
            .collect();
        let seen = Mutex::new(Vec::new());
        let sink = |index: usize, report: &Report| {
            seen.lock().unwrap().push((index, report.target));
        };
        let batch = engine.analyze_all_with(&requests, &sink).unwrap();
        assert_eq!(batch.reports.len(), 4);
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        assert_eq!(
            seen.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "sink must see each report exactly once"
        );
    }
}
