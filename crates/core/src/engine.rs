//! The long-lived analysis engine and its builder.
//!
//! An [`Engine`] owns everything that is expensive to set up and cheap
//! to reuse: the parsed, type-checked [`Program`], its [`TypeEnv`], the
//! [`PredEnv`] of inductive predicate definitions, the base
//! [`SlingConfig`], and a shared [`CheckCache`] that memoizes checker
//! reductions across every request served. Construction goes through
//! [`EngineBuilder`] (`Engine::builder()`); work is described by
//! [`AnalysisRequest`]s and answered with [`Report`]s.
//!
//! Batch analysis ([`Engine::analyze_all`]) runs many target functions
//! against the one predicate environment; because the checker cache is
//! keyed on canonical sub-heap shapes, entailments established while
//! analyzing one function are reused by the next — the second request
//! for a list-shaped argument typically starts warm.

use std::fmt;
use std::sync::Arc;

use sling_checker::{CacheStats, CheckCache, CheckCtx};
use sling_lang::{check_program, parse_program, Location, Program, Snapshot};
use sling_logic::{parse_predicates, PredDef, PredEnv, Symbol, TypeEnv};

use crate::pipeline::{infer_location, run_target, SlingConfig};
use crate::report::{BatchReport, LocationAnalysis, Report};
use crate::request::AnalysisRequest;

/// Why an [`EngineBuilder`] could not produce an [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No program was supplied.
    MissingProgram,
    /// MiniC source failed to parse.
    Parse(String),
    /// The program failed type checking.
    Type(String),
    /// Predicate source failed to parse.
    PredicateParse(String),
    /// A predicate definition was rejected (duplicate name, ill-formed
    /// body, non-decreasing recursion, ...).
    Predicate(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingProgram => {
                write!(
                    f,
                    "no program supplied: call `program(..)` or `program_source(..)`"
                )
            }
            BuildError::Parse(e) => write!(f, "program parse error: {e}"),
            BuildError::Type(e) => write!(f, "program type error: {e}"),
            BuildError::PredicateParse(e) => write!(f, "predicate parse error: {e}"),
            BuildError::Predicate(e) => write!(f, "predicate definition error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Why a request could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The request's target is not a function of the engine's program.
    UnknownTarget(Symbol),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::UnknownTarget(t) => {
                write!(f, "target `{t}` is not a function of the engine's program")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Typed builder for [`Engine`]; obtained from [`Engine::builder`].
#[derive(Debug, Default)]
pub struct EngineBuilder {
    program: Option<Program>,
    preds: PredEnv,
    config: SlingConfig,
    cache: Option<Arc<CheckCache>>,
}

impl EngineBuilder {
    /// Supplies an already-parsed program (type-checked at `build`).
    pub fn program(mut self, program: Program) -> EngineBuilder {
        self.program = Some(program);
        self
    }

    /// Parses MiniC source and supplies it as the program.
    pub fn program_source(self, source: &str) -> Result<EngineBuilder, BuildError> {
        let program = parse_program(source).map_err(|e| BuildError::Parse(e.to_string()))?;
        Ok(self.program(program))
    }

    /// Adds predicate definitions to the engine's environment.
    pub fn predicates<I>(mut self, defs: I) -> Result<EngineBuilder, BuildError>
    where
        I: IntoIterator<Item = PredDef>,
    {
        for def in defs {
            self.preds
                .define(def)
                .map_err(|e| BuildError::Predicate(e.to_string()))?;
        }
        Ok(self)
    }

    /// Parses predicate source and adds every definition.
    pub fn predicates_source(self, source: &str) -> Result<EngineBuilder, BuildError> {
        let defs =
            parse_predicates(source).map_err(|e| BuildError::PredicateParse(e.to_string()))?;
        self.predicates(defs)
    }

    /// Replaces the predicate environment wholesale (e.g. with a
    /// pre-built library).
    pub fn pred_env(mut self, preds: PredEnv) -> EngineBuilder {
        self.preds = preds;
        self
    }

    /// Sets the base configuration (requests may override per call).
    pub fn config(mut self, config: SlingConfig) -> EngineBuilder {
        self.config = config;
        self
    }

    /// Shares an existing checker cache with this engine, so entailments
    /// memoized by sibling engines (e.g. a corpus run over one predicate
    /// library) carry over. By default each engine gets a private cache.
    pub fn shared_cache(mut self, cache: Arc<CheckCache>) -> EngineBuilder {
        self.cache = Some(cache);
        self
    }

    /// Type-checks the program and finalizes the engine.
    pub fn build(self) -> Result<Engine, BuildError> {
        let program = self.program.ok_or(BuildError::MissingProgram)?;
        check_program(&program).map_err(|e| BuildError::Type(e.to_string()))?;
        let types = program.type_env();
        Ok(Engine {
            program,
            types,
            preds: self.preds,
            config: self.config,
            cache: self.cache.unwrap_or_default(),
        })
    }
}

/// A reusable SLING analysis session over one program and predicate
/// environment.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug)]
pub struct Engine {
    program: Program,
    types: TypeEnv,
    preds: PredEnv,
    config: SlingConfig,
    cache: Arc<CheckCache>,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The engine's program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The type environment derived from the program.
    pub fn types(&self) -> &TypeEnv {
        &self.types
    }

    /// The predicate environment shared by every request.
    pub fn preds(&self) -> &PredEnv {
        &self.preds
    }

    /// The base configuration.
    pub fn config(&self) -> &SlingConfig {
        &self.config
    }

    /// Cumulative checker-cache counters for this engine's cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every memoized entailment (counters are kept). Long-lived
    /// services call this to bound memory between unrelated workloads;
    /// benchmarks call it to measure the cold path.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Serves one request: collect traces for the target on the
    /// request's inputs, infer invariants at every reached location,
    /// validate entry/exit pairs with the frame rule.
    pub fn analyze(&self, request: &AnalysisRequest) -> Result<Report, AnalyzeError> {
        if self.program.func(request.target).is_none() {
            return Err(AnalyzeError::UnknownTarget(request.target));
        }
        let config = request.config.as_ref().unwrap_or(&self.config);
        let before = self.cache.stats();
        let ctx = CheckCtx::with_cache(&self.types, &self.preds, config.check, &self.cache);
        let mut report = run_target(&ctx, &self.program, request.target, &request.inputs, config);
        report.cache = self.cache.stats().since(&before);
        Ok(report)
    }

    /// Serves a batch of requests against the shared predicate
    /// environment and checker cache. Targets are validated up front, so
    /// either every request runs or none does.
    pub fn analyze_all<'r, I>(&self, requests: I) -> Result<BatchReport, AnalyzeError>
    where
        I: IntoIterator<Item = &'r AnalysisRequest>,
    {
        let requests: Vec<&AnalysisRequest> = requests.into_iter().collect();
        for request in &requests {
            if self.program.func(request.target).is_none() {
                return Err(AnalyzeError::UnknownTarget(request.target));
            }
        }
        let before = self.cache.stats();
        let mut reports = Vec::with_capacity(requests.len());
        for request in requests {
            reports.push(self.analyze(request)?);
        }
        Ok(BatchReport {
            reports,
            cache: self.cache.stats().since(&before),
        })
    }

    /// Location-level entry point: infers invariants for `target` from
    /// externally collected snapshots, sharing the engine's predicate
    /// environment and cache. This is what benchmarking and replay
    /// tooling use to drive inference without the tracer.
    pub fn infer_at(
        &self,
        target: Symbol,
        location: Location,
        snaps: &[&Snapshot],
    ) -> Result<LocationAnalysis, AnalyzeError> {
        let Some(func) = self.program.func(target) else {
            return Err(AnalyzeError::UnknownTarget(target));
        };
        let param_order: Vec<Symbol> = func.params.iter().map(|p| p.name).collect();
        let ctx = CheckCtx::with_cache(&self.types, &self.preds, self.config.check, &self.cache);
        Ok(infer_location(
            &ctx,
            location,
            snaps,
            &param_order,
            &self.config,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        struct TNode { next: TNode*; data: int; }
        fn id(x: TNode*) -> TNode* { return x; }";

    const PREDS: &str = "
        pred tlist(x: TNode*) := emp & x == nil
           | exists u, d. x -> TNode{next: u, data: d} * tlist(u);";

    #[test]
    fn builder_requires_a_program() {
        let err = Engine::builder().build().unwrap_err();
        assert_eq!(err, BuildError::MissingProgram);
    }

    #[test]
    fn builder_surfaces_parse_errors() {
        let err = Engine::builder().program_source("fn {").unwrap_err();
        assert!(matches!(err, BuildError::Parse(_)), "{err}");
    }

    #[test]
    fn builder_surfaces_type_errors() {
        let err = Engine::builder()
            .program_source("fn f(x: Missing*) { return; }")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Type(_)), "{err}");
    }

    #[test]
    fn builder_surfaces_duplicate_predicates() {
        let err = Engine::builder()
            .predicates_source(PREDS)
            .unwrap()
            .predicates_source(PREDS)
            .unwrap_err();
        assert!(matches!(err, BuildError::Predicate(_)), "{err}");
    }

    #[test]
    fn unknown_target_is_an_error_not_a_panic() {
        let engine = Engine::builder()
            .program_source(SRC)
            .unwrap()
            .predicates_source(PREDS)
            .unwrap()
            .build()
            .unwrap();
        let request = AnalysisRequest::new("missing");
        let err = engine.analyze(&request).unwrap_err();
        assert_eq!(err, AnalyzeError::UnknownTarget(Symbol::intern("missing")));
        assert!(engine.analyze_all([&request]).is_err());
    }

    #[test]
    fn engines_can_share_a_cache() {
        let shared = Arc::new(CheckCache::new());
        let mk = || {
            Engine::builder()
                .program_source(SRC)
                .unwrap()
                .predicates_source(PREDS)
                .unwrap()
                .shared_cache(Arc::clone(&shared))
                .build()
                .unwrap()
        };
        let a = mk();
        let b = mk();
        let request = || {
            AnalysisRequest::new("id").input(Box::new(|heap: &mut sling_lang::RtHeap| {
                let n = heap.alloc(
                    Symbol::intern("TNode"),
                    vec![sling_models::Val::Nil, sling_models::Val::Int(1)],
                );
                vec![sling_models::Val::Addr(n)]
            }))
        };
        let first = a.analyze(&request()).unwrap();
        let second = b.analyze(&request()).unwrap();
        assert!(first.invariant_count() > 0);
        assert!(
            second.cache.hits > 0,
            "second engine must reuse the shared cache: {:?}",
            second.cache
        );
    }
}
