//! Declarative input specifications — describable, replayable test
//! inputs.
//!
//! An [`InputSpec`] describes the argument vector for one traced run of
//! a target function: a seed plus one [`ValueSpec`] per parameter. Specs
//! are plain data — `Clone + Debug + Send + Sync` — so
//! [`AnalysisRequest`](crate::AnalysisRequest)s built from them can be
//! logged, replayed, and fanned out across the threads of a parallel
//! [`Engine::analyze_all`](crate::Engine::analyze_all) batch. All
//! randomness flows through a deterministic PRNG seeded from the spec,
//! so the same spec always materializes the same structure.
//!
//! Structure generation reuses the corpus generators of
//! [`sling_lang`]: [`ListLayout`] / [`TreeLayout`] say which field index
//! plays which structural role, and the shape constructors
//! ([`ValueSpec::sll`], [`ValueSpec::dll`], [`ValueSpec::cyclic`],
//! [`ValueSpec::tree`], ...) say what to build on top of them.
//!
//! Inputs that a spec cannot express — nested structures, aliased
//! arguments, deliberately corrupted shapes — use the
//! [`InputSource::custom`](crate::InputSource::custom) escape hatch,
//! which wraps an arbitrary `Fn(&mut RtHeap) -> Vec<Val> + Send + Sync`
//! closure.
//!
//! # Examples
//!
//! ```
//! use sling::{InputSpec, ValueSpec, ListLayout};
//! use sling_lang::RtHeap;
//! use sling_logic::Symbol;
//!
//! let layout = ListLayout {
//!     ty: Symbol::intern("SNode"),
//!     nfields: 2,
//!     next: 0,
//!     prev: None,
//!     data: Some(1),
//! };
//! // reverse(x) on a random 10-cell list, plus an integer key.
//! let spec = InputSpec::seeded(7)
//!     .arg(ValueSpec::sll(layout, 10))
//!     .arg(ValueSpec::int(42));
//!
//! let mut heap = RtHeap::new();
//! let args = spec.build(&mut heap);
//! assert_eq!(args.len(), 2);
//! assert_eq!(heap.live().len(), 10);
//!
//! // Deterministic: the same spec materializes the same structure.
//! let mut heap2 = RtHeap::new();
//! assert_eq!(spec.build(&mut heap2), args);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sling_lang::{
    gen_circular_list, gen_list, gen_tree, DataOrder, ListLayout, Param, RtHeap, TreeKind,
    TreeLayout, TyExpr,
};
use sling_models::{Loc, StackHeapModel, Val};

/// A declarative description of one function-argument value.
///
/// Built via the shape constructors ([`ValueSpec::nil`],
/// [`ValueSpec::int`], [`ValueSpec::sll`], [`ValueSpec::dll`],
/// [`ValueSpec::cyclic`], [`ValueSpec::tree`], ...); materialized by
/// [`InputSpec::build`] with the spec's seeded PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueSpec {
    /// The null pointer.
    Nil,
    /// A fixed integer.
    Int(i64),
    /// A uniformly random integer in `[lo, hi]` (one PRNG draw).
    IntIn(i64, i64),
    /// A linked list (singly or doubly, per the layout; optionally
    /// circular or with ordered payloads).
    List {
        /// Node layout.
        layout: ListLayout,
        /// Node count (`0` materializes as nil).
        len: usize,
        /// Payload ordering.
        order: DataOrder,
        /// Close the cycle (last node's `next` back to the head).
        circular: bool,
    },
    /// A binary tree.
    Tree {
        /// Node layout.
        layout: TreeLayout,
        /// Node count (`0` materializes as nil).
        size: usize,
        /// Shape discipline (random, BST, balanced, red-black).
        kind: TreeKind,
    },
    /// An exact heap shape, cell by cell — no randomness. Produced by the
    /// CEGIR loop from refutation witnesses ([`InputSpec::from_witness`]);
    /// `cells[0]` is the root, and an empty cell list materializes as nil.
    Exact {
        /// The cells, root first, internal pointers by index.
        cells: Vec<ExactCell>,
    },
}

/// One cell of a [`ValueSpec::Exact`] shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactCell {
    /// Structure type of the cell.
    pub ty: sling_logic::Symbol,
    /// Field values in declaration order.
    pub fields: Vec<ExactVal>,
}

/// A field value of an [`ExactCell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactVal {
    /// The null pointer.
    Nil,
    /// A fixed integer.
    Int(i64),
    /// A pointer to the cell at this index of the shape's cell list.
    Cell(usize),
}

impl ValueSpec {
    /// The null pointer.
    pub fn nil() -> ValueSpec {
        ValueSpec::Nil
    }

    /// The fixed integer `k`.
    pub fn int(k: i64) -> ValueSpec {
        ValueSpec::Int(k)
    }

    /// A random integer in `[lo, hi]`, drawn from the spec's PRNG.
    pub fn int_in(lo: i64, hi: i64) -> ValueSpec {
        ValueSpec::IntIn(lo, hi)
    }

    /// A nil-terminated list of `len` nodes with random payloads
    /// (singly *or* doubly linked — whatever the layout describes; the
    /// conventional name stuck).
    pub fn sll(layout: ListLayout, len: usize) -> ValueSpec {
        ValueSpec::List {
            layout,
            len,
            order: DataOrder::Random,
            circular: false,
        }
    }

    /// A nil-terminated doubly linked list of `len` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no `prev` field.
    pub fn dll(layout: ListLayout, len: usize) -> ValueSpec {
        assert!(
            layout.prev.is_some(),
            "ValueSpec::dll needs a layout with a `prev` field"
        );
        ValueSpec::sll(layout, len)
    }

    /// A circular list of `len` nodes (the last `next` — and the head's
    /// `prev`, for doubly linked layouts — wraps around).
    pub fn cyclic(layout: ListLayout, len: usize) -> ValueSpec {
        ValueSpec::List {
            layout,
            len,
            order: DataOrder::Random,
            circular: true,
        }
    }

    /// A binary tree of `size` nodes with the given shape discipline.
    pub fn tree(layout: TreeLayout, size: usize, kind: TreeKind) -> ValueSpec {
        ValueSpec::Tree { layout, size, kind }
    }

    /// An exact cell-by-cell shape (root first; empty is nil).
    pub fn exact(cells: Vec<ExactCell>) -> ValueSpec {
        ValueSpec::Exact { cells }
    }

    /// Replaces the payload ordering of a list spec (e.g.
    /// [`DataOrder::Sorted`] for sorted-list benchmarks); other specs
    /// are returned unchanged.
    pub fn with_order(mut self, new_order: DataOrder) -> ValueSpec {
        if let ValueSpec::List { ref mut order, .. } = self {
            *order = new_order;
        }
        self
    }

    /// Materializes this value in `heap`, drawing randomness from `rng`.
    pub fn build(&self, heap: &mut RtHeap, rng: &mut StdRng) -> Val {
        match self {
            ValueSpec::Nil => Val::Nil,
            ValueSpec::Int(k) => Val::Int(*k),
            ValueSpec::IntIn(lo, hi) => Val::Int(rng.gen_range(*lo..=*hi)),
            ValueSpec::List {
                layout,
                len,
                order,
                circular,
            } => {
                if *circular {
                    gen_circular_list(heap, layout, *len, *order, rng)
                } else {
                    gen_list(heap, layout, *len, *order, rng)
                }
            }
            ValueSpec::Tree { layout, size, kind } => gen_tree(heap, layout, *size, *kind, rng),
            ValueSpec::Exact { cells } => {
                if cells.is_empty() {
                    return Val::Nil;
                }
                // Two passes: allocate every cell with pointer slots
                // nil'd, then patch the internal references.
                let locs: Vec<Loc> = cells
                    .iter()
                    .map(|c| {
                        let fields = c
                            .fields
                            .iter()
                            .map(|f| match f {
                                ExactVal::Nil | ExactVal::Cell(_) => Val::Nil,
                                ExactVal::Int(k) => Val::Int(*k),
                            })
                            .collect();
                        heap.alloc(c.ty, fields)
                    })
                    .collect();
                for (cell, loc) in cells.iter().zip(&locs) {
                    for (i, f) in cell.fields.iter().enumerate() {
                        if let ExactVal::Cell(target) = f {
                            if let (Some(rt), Some(t)) = (heap.live_mut(*loc), locs.get(*target)) {
                                rt.fields[i] = Val::Addr(*t);
                            }
                        }
                    }
                }
                Val::Addr(locs[0])
            }
        }
    }
}

/// A declarative description of one traced run's argument vector: a PRNG
/// seed plus one [`ValueSpec`] per parameter.
///
/// Plain data (`Clone + Debug + Send + Sync`), so requests built from
/// specs can cross threads, be logged, and be replayed bit-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputSpec {
    seed: u64,
    args: Vec<ValueSpec>,
}

impl InputSpec {
    /// An empty spec with seed 0.
    pub fn new() -> InputSpec {
        InputSpec::default()
    }

    /// An empty spec with the given PRNG seed.
    pub fn seeded(seed: u64) -> InputSpec {
        InputSpec {
            seed,
            args: Vec::new(),
        }
    }

    /// Replaces the PRNG seed.
    pub fn seed(mut self, seed: u64) -> InputSpec {
        self.seed = seed;
        self
    }

    /// Appends one argument.
    pub fn arg(mut self, spec: ValueSpec) -> InputSpec {
        self.args.push(spec);
        self
    }

    /// Appends a batch of arguments.
    pub fn args<I: IntoIterator<Item = ValueSpec>>(mut self, specs: I) -> InputSpec {
        self.args.extend(specs);
        self
    }

    /// The PRNG seed this spec materializes under.
    pub fn prng_seed(&self) -> u64 {
        self.seed
    }

    /// The per-parameter value specs, in argument order.
    pub fn arg_specs(&self) -> &[ValueSpec] {
        &self.args
    }

    /// Materializes the argument vector in `heap`. Arguments are built
    /// left to right from one PRNG seeded with this spec's seed, so the
    /// result is a pure function of the spec.
    pub fn build(&self, heap: &mut RtHeap) -> Vec<Val> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.args.iter().map(|a| a.build(heap, &mut rng)).collect()
    }

    /// Translates a verification countermodel into a targeted input: one
    /// argument per `params` entry, read off the witness stack. Pointer
    /// parameters become [`ValueSpec::Exact`] shapes — the witness cells
    /// reachable from the parameter, breadth-first, so construction order
    /// is deterministic — and integer parameters become their concrete
    /// values. Parameters the witness leaves unbound default to nil / 0.
    ///
    /// Aliasing between two parameters is *not* reproduced (each argument
    /// builds its own copy of the reachable cells): the spec language
    /// builds arguments independently, and a disjoint copy still drives
    /// execution through the same code path the witness describes.
    pub fn from_witness(witness: &StackHeapModel, params: &[Param]) -> InputSpec {
        let args = params.iter().map(|p| {
            let val = witness.stack.get(p.name);
            match (p.ty, val) {
                (TyExpr::Ptr(_), Some(Val::Addr(root))) => exact_from(witness, root),
                (TyExpr::Ptr(_), _) => ValueSpec::nil(),
                (TyExpr::Int, Some(Val::Int(k))) => ValueSpec::int(k),
                (TyExpr::Int, _) | (TyExpr::Bool, _) => ValueSpec::int(0),
                (TyExpr::Void, _) => ValueSpec::nil(),
            }
        });
        InputSpec::seeded(WITNESS_SEED).args(args)
    }
}

/// Fixed seed for witness-derived specs: the shapes are exact, so the
/// PRNG is never drawn from, and a constant keeps equal witnesses equal
/// (the CEGIR loop dedupes refinement inputs by spec equality).
const WITNESS_SEED: u64 = 0xCE61;

/// The cells of `witness` reachable from `root`, BFS over field order.
fn exact_from(witness: &StackHeapModel, root: Loc) -> ValueSpec {
    let mut order: Vec<Loc> = Vec::new();
    let mut index: std::collections::BTreeMap<Loc, usize> = std::collections::BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(loc) = queue.pop_front() {
        if index.contains_key(&loc) || witness.heap.get(loc).is_none() {
            continue;
        }
        index.insert(loc, order.len());
        order.push(loc);
        if let Some(cell) = witness.heap.get(loc) {
            for f in &cell.fields {
                if let Val::Addr(next) = f {
                    queue.push_back(*next);
                }
            }
        }
    }
    if order.is_empty() {
        return ValueSpec::nil();
    }
    let cells = order
        .iter()
        .map(|loc| {
            let cell = witness.heap.get(*loc).expect("loc from BFS over the heap");
            ExactCell {
                ty: cell.ty,
                fields: cell
                    .fields
                    .iter()
                    .map(|f| match f {
                        Val::Nil => ExactVal::Nil,
                        Val::Int(k) => ExactVal::Int(*k),
                        Val::Addr(l) => match index.get(l) {
                            Some(i) => ExactVal::Cell(*i),
                            // Dangling edge (points outside the witness
                            // footprint): ground it out.
                            None => ExactVal::Nil,
                        },
                    })
                    .collect(),
            }
        })
        .collect();
    ValueSpec::exact(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_logic::Symbol;

    fn layout() -> ListLayout {
        ListLayout {
            ty: Symbol::intern("SpecNode"),
            nfields: 2,
            next: 0,
            prev: None,
            data: Some(1),
        }
    }

    #[test]
    fn specs_are_deterministic() {
        let spec = InputSpec::seeded(99)
            .arg(ValueSpec::sll(layout(), 6))
            .arg(ValueSpec::int_in(0, 1000));
        let run = || {
            let mut heap = RtHeap::new();
            let args = spec.build(&mut heap);
            format!("{args:?} {}", heap.live())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seeds_change_the_structure() {
        let mk = |seed| {
            let mut heap = RtHeap::new();
            InputSpec::seeded(seed)
                .arg(ValueSpec::sll(layout(), 5))
                .build(&mut heap);
            format!("{}", heap.live())
        };
        assert_ne!(mk(1), mk(2), "different seeds give different payloads");
    }

    #[test]
    fn nil_int_and_empty_list() {
        let mut heap = RtHeap::new();
        let args = InputSpec::new()
            .args([
                ValueSpec::nil(),
                ValueSpec::int(7),
                ValueSpec::sll(layout(), 0),
            ])
            .build(&mut heap);
        assert_eq!(args, vec![Val::Nil, Val::Int(7), Val::Nil]);
        assert!(heap.live().is_empty());
    }

    #[test]
    fn cyclic_list_wraps() {
        let mut heap = RtHeap::new();
        let args = InputSpec::seeded(3)
            .arg(ValueSpec::cyclic(layout(), 4))
            .build(&mut heap);
        let Val::Addr(head) = args[0] else {
            panic!("non-empty cycle has a head");
        };
        // Walk next pointers: after 4 hops we must be back at the head.
        let mut cur = head;
        for _ in 0..4 {
            let Val::Addr(next) = heap.live().get(cur).unwrap().fields[0] else {
                panic!("cycle must not hit nil");
            };
            cur = next;
        }
        assert_eq!(cur, head);
    }

    #[test]
    #[should_panic(expected = "prev")]
    fn dll_requires_prev_field() {
        let _ = ValueSpec::dll(layout(), 3);
    }

    #[test]
    fn exact_shape_builds_cell_for_cell() {
        let node = Symbol::intern("SpecNode");
        // Two-cell list with a cycle check: 0 -> 1 -> nil, payloads 5, 7.
        let spec = InputSpec::new().arg(ValueSpec::exact(vec![
            ExactCell {
                ty: node,
                fields: vec![ExactVal::Cell(1), ExactVal::Int(5)],
            },
            ExactCell {
                ty: node,
                fields: vec![ExactVal::Nil, ExactVal::Int(7)],
            },
        ]));
        let mut heap = RtHeap::new();
        let args = spec.build(&mut heap);
        let Val::Addr(head) = args[0] else {
            panic!("exact shape with cells has an address root");
        };
        let first = heap.live().get(head).unwrap();
        assert_eq!(first.fields[1], Val::Int(5));
        let Val::Addr(second) = first.fields[0] else {
            panic!("first cell links to the second");
        };
        let second = heap.live().get(second).unwrap();
        assert_eq!(second.fields, vec![Val::Nil, Val::Int(7)]);
        // Determinism: exact shapes never consult the PRNG.
        let mut heap2 = RtHeap::new();
        assert_eq!(spec.seed(99).build(&mut heap2).len(), 1);
        assert_eq!(heap.live().len(), heap2.live().len());
    }

    #[test]
    fn empty_exact_shape_is_nil() {
        let mut heap = RtHeap::new();
        let args = InputSpec::new()
            .arg(ValueSpec::exact(Vec::new()))
            .build(&mut heap);
        assert_eq!(args, vec![Val::Nil]);
    }

    #[test]
    fn witness_translation_reproduces_the_heap_shape() {
        use sling_models::{Heap, HeapCell, Loc, Stack, StackHeapModel};
        let node = Symbol::intern("SpecNode");
        // Witness: x -> 0x08 -> 0x03 -> nil, y unbound, k = 42.
        let mut heap = Heap::new();
        heap.insert(
            Loc::new(8),
            HeapCell::new(node, vec![Val::Addr(Loc::new(3)), Val::Int(1)]),
        );
        heap.insert(
            Loc::new(3),
            HeapCell::new(node, vec![Val::Nil, Val::Int(2)]),
        );
        let mut stack = Stack::new();
        stack.bind(Symbol::intern("x"), Val::Addr(Loc::new(8)));
        stack.bind(Symbol::intern("k"), Val::Int(42));
        let witness = StackHeapModel::new(stack, heap);

        let params = [
            Param {
                name: Symbol::intern("x"),
                ty: TyExpr::Ptr(node),
            },
            Param {
                name: Symbol::intern("y"),
                ty: TyExpr::Ptr(node),
            },
            Param {
                name: Symbol::intern("k"),
                ty: TyExpr::Int,
            },
        ];
        let spec = InputSpec::from_witness(&witness, &params);
        assert_eq!(spec.arg_specs().len(), 3);
        assert_eq!(spec.arg_specs()[1], ValueSpec::Nil);
        assert_eq!(spec.arg_specs()[2], ValueSpec::Int(42));

        let mut rt = RtHeap::new();
        let args = spec.build(&mut rt);
        let Val::Addr(head) = args[0] else {
            panic!("x rebuilt as a two-cell list");
        };
        let first = rt.live().get(head).unwrap();
        assert_eq!(first.fields[1], Val::Int(1));
        let Val::Addr(next) = first.fields[0] else {
            panic!("first links to second");
        };
        assert_eq!(rt.live().get(next).unwrap().fields[0], Val::Nil);
        assert_eq!(rt.live().len(), 2);

        // Equal witnesses translate to equal specs (CEGIR dedup key).
        assert_eq!(spec, InputSpec::from_witness(&witness, &params));
    }

    #[test]
    fn with_order_sorts_payloads() {
        let mut heap = RtHeap::new();
        let args = InputSpec::seeded(11)
            .arg(ValueSpec::sll(layout(), 8).with_order(DataOrder::Sorted))
            .build(&mut heap);
        let mut cur = args[0];
        let mut vals = Vec::new();
        while let Val::Addr(l) = cur {
            let cell = heap.live().get(l).unwrap();
            vals.push(cell.fields[1].as_int().unwrap());
            cur = cell.fields[0];
        }
        assert_eq!(vals.len(), 8);
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{vals:?}");
    }
}
