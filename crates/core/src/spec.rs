//! Declarative input specifications — describable, replayable test
//! inputs.
//!
//! An [`InputSpec`] describes the argument vector for one traced run of
//! a target function: a seed plus one [`ValueSpec`] per parameter. Specs
//! are plain data — `Clone + Debug + Send + Sync` — so
//! [`AnalysisRequest`](crate::AnalysisRequest)s built from them can be
//! logged, replayed, and fanned out across the threads of a parallel
//! [`Engine::analyze_all`](crate::Engine::analyze_all) batch. All
//! randomness flows through a deterministic PRNG seeded from the spec,
//! so the same spec always materializes the same structure.
//!
//! Structure generation reuses the corpus generators of
//! [`sling_lang`]: [`ListLayout`] / [`TreeLayout`] say which field index
//! plays which structural role, and the shape constructors
//! ([`ValueSpec::sll`], [`ValueSpec::dll`], [`ValueSpec::cyclic`],
//! [`ValueSpec::tree`], ...) say what to build on top of them.
//!
//! Inputs that a spec cannot express — nested structures, aliased
//! arguments, deliberately corrupted shapes — use the
//! [`InputSource::custom`](crate::InputSource::custom) escape hatch,
//! which wraps an arbitrary `Fn(&mut RtHeap) -> Vec<Val> + Send + Sync`
//! closure.
//!
//! # Examples
//!
//! ```
//! use sling::{InputSpec, ValueSpec, ListLayout};
//! use sling_lang::RtHeap;
//! use sling_logic::Symbol;
//!
//! let layout = ListLayout {
//!     ty: Symbol::intern("SNode"),
//!     nfields: 2,
//!     next: 0,
//!     prev: None,
//!     data: Some(1),
//! };
//! // reverse(x) on a random 10-cell list, plus an integer key.
//! let spec = InputSpec::seeded(7)
//!     .arg(ValueSpec::sll(layout, 10))
//!     .arg(ValueSpec::int(42));
//!
//! let mut heap = RtHeap::new();
//! let args = spec.build(&mut heap);
//! assert_eq!(args.len(), 2);
//! assert_eq!(heap.live().len(), 10);
//!
//! // Deterministic: the same spec materializes the same structure.
//! let mut heap2 = RtHeap::new();
//! assert_eq!(spec.build(&mut heap2), args);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sling_lang::{
    gen_circular_list, gen_list, gen_tree, DataOrder, ListLayout, RtHeap, TreeKind, TreeLayout,
};
use sling_models::Val;

/// A declarative description of one function-argument value.
///
/// Built via the shape constructors ([`ValueSpec::nil`],
/// [`ValueSpec::int`], [`ValueSpec::sll`], [`ValueSpec::dll`],
/// [`ValueSpec::cyclic`], [`ValueSpec::tree`], ...); materialized by
/// [`InputSpec::build`] with the spec's seeded PRNG.
#[derive(Debug, Clone)]
pub enum ValueSpec {
    /// The null pointer.
    Nil,
    /// A fixed integer.
    Int(i64),
    /// A uniformly random integer in `[lo, hi]` (one PRNG draw).
    IntIn(i64, i64),
    /// A linked list (singly or doubly, per the layout; optionally
    /// circular or with ordered payloads).
    List {
        /// Node layout.
        layout: ListLayout,
        /// Node count (`0` materializes as nil).
        len: usize,
        /// Payload ordering.
        order: DataOrder,
        /// Close the cycle (last node's `next` back to the head).
        circular: bool,
    },
    /// A binary tree.
    Tree {
        /// Node layout.
        layout: TreeLayout,
        /// Node count (`0` materializes as nil).
        size: usize,
        /// Shape discipline (random, BST, balanced, red-black).
        kind: TreeKind,
    },
}

impl ValueSpec {
    /// The null pointer.
    pub fn nil() -> ValueSpec {
        ValueSpec::Nil
    }

    /// The fixed integer `k`.
    pub fn int(k: i64) -> ValueSpec {
        ValueSpec::Int(k)
    }

    /// A random integer in `[lo, hi]`, drawn from the spec's PRNG.
    pub fn int_in(lo: i64, hi: i64) -> ValueSpec {
        ValueSpec::IntIn(lo, hi)
    }

    /// A nil-terminated list of `len` nodes with random payloads
    /// (singly *or* doubly linked — whatever the layout describes; the
    /// conventional name stuck).
    pub fn sll(layout: ListLayout, len: usize) -> ValueSpec {
        ValueSpec::List {
            layout,
            len,
            order: DataOrder::Random,
            circular: false,
        }
    }

    /// A nil-terminated doubly linked list of `len` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no `prev` field.
    pub fn dll(layout: ListLayout, len: usize) -> ValueSpec {
        assert!(
            layout.prev.is_some(),
            "ValueSpec::dll needs a layout with a `prev` field"
        );
        ValueSpec::sll(layout, len)
    }

    /// A circular list of `len` nodes (the last `next` — and the head's
    /// `prev`, for doubly linked layouts — wraps around).
    pub fn cyclic(layout: ListLayout, len: usize) -> ValueSpec {
        ValueSpec::List {
            layout,
            len,
            order: DataOrder::Random,
            circular: true,
        }
    }

    /// A binary tree of `size` nodes with the given shape discipline.
    pub fn tree(layout: TreeLayout, size: usize, kind: TreeKind) -> ValueSpec {
        ValueSpec::Tree { layout, size, kind }
    }

    /// Replaces the payload ordering of a list spec (e.g.
    /// [`DataOrder::Sorted`] for sorted-list benchmarks); other specs
    /// are returned unchanged.
    pub fn with_order(mut self, new_order: DataOrder) -> ValueSpec {
        if let ValueSpec::List { ref mut order, .. } = self {
            *order = new_order;
        }
        self
    }

    /// Materializes this value in `heap`, drawing randomness from `rng`.
    pub fn build(&self, heap: &mut RtHeap, rng: &mut StdRng) -> Val {
        match self {
            ValueSpec::Nil => Val::Nil,
            ValueSpec::Int(k) => Val::Int(*k),
            ValueSpec::IntIn(lo, hi) => Val::Int(rng.gen_range(*lo..=*hi)),
            ValueSpec::List {
                layout,
                len,
                order,
                circular,
            } => {
                if *circular {
                    gen_circular_list(heap, layout, *len, *order, rng)
                } else {
                    gen_list(heap, layout, *len, *order, rng)
                }
            }
            ValueSpec::Tree { layout, size, kind } => gen_tree(heap, layout, *size, *kind, rng),
        }
    }
}

/// A declarative description of one traced run's argument vector: a PRNG
/// seed plus one [`ValueSpec`] per parameter.
///
/// Plain data (`Clone + Debug + Send + Sync`), so requests built from
/// specs can cross threads, be logged, and be replayed bit-identically.
#[derive(Debug, Clone, Default)]
pub struct InputSpec {
    seed: u64,
    args: Vec<ValueSpec>,
}

impl InputSpec {
    /// An empty spec with seed 0.
    pub fn new() -> InputSpec {
        InputSpec::default()
    }

    /// An empty spec with the given PRNG seed.
    pub fn seeded(seed: u64) -> InputSpec {
        InputSpec {
            seed,
            args: Vec::new(),
        }
    }

    /// Replaces the PRNG seed.
    pub fn seed(mut self, seed: u64) -> InputSpec {
        self.seed = seed;
        self
    }

    /// Appends one argument.
    pub fn arg(mut self, spec: ValueSpec) -> InputSpec {
        self.args.push(spec);
        self
    }

    /// Appends a batch of arguments.
    pub fn args<I: IntoIterator<Item = ValueSpec>>(mut self, specs: I) -> InputSpec {
        self.args.extend(specs);
        self
    }

    /// The PRNG seed this spec materializes under.
    pub fn prng_seed(&self) -> u64 {
        self.seed
    }

    /// The per-parameter value specs, in argument order.
    pub fn arg_specs(&self) -> &[ValueSpec] {
        &self.args
    }

    /// Materializes the argument vector in `heap`. Arguments are built
    /// left to right from one PRNG seeded with this spec's seed, so the
    /// result is a pure function of the spec.
    pub fn build(&self, heap: &mut RtHeap) -> Vec<Val> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.args.iter().map(|a| a.build(heap, &mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_logic::Symbol;

    fn layout() -> ListLayout {
        ListLayout {
            ty: Symbol::intern("SpecNode"),
            nfields: 2,
            next: 0,
            prev: None,
            data: Some(1),
        }
    }

    #[test]
    fn specs_are_deterministic() {
        let spec = InputSpec::seeded(99)
            .arg(ValueSpec::sll(layout(), 6))
            .arg(ValueSpec::int_in(0, 1000));
        let run = || {
            let mut heap = RtHeap::new();
            let args = spec.build(&mut heap);
            format!("{args:?} {}", heap.live())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seeds_change_the_structure() {
        let mk = |seed| {
            let mut heap = RtHeap::new();
            InputSpec::seeded(seed)
                .arg(ValueSpec::sll(layout(), 5))
                .build(&mut heap);
            format!("{}", heap.live())
        };
        assert_ne!(mk(1), mk(2), "different seeds give different payloads");
    }

    #[test]
    fn nil_int_and_empty_list() {
        let mut heap = RtHeap::new();
        let args = InputSpec::new()
            .args([
                ValueSpec::nil(),
                ValueSpec::int(7),
                ValueSpec::sll(layout(), 0),
            ])
            .build(&mut heap);
        assert_eq!(args, vec![Val::Nil, Val::Int(7), Val::Nil]);
        assert!(heap.live().is_empty());
    }

    #[test]
    fn cyclic_list_wraps() {
        let mut heap = RtHeap::new();
        let args = InputSpec::seeded(3)
            .arg(ValueSpec::cyclic(layout(), 4))
            .build(&mut heap);
        let Val::Addr(head) = args[0] else {
            panic!("non-empty cycle has a head");
        };
        // Walk next pointers: after 4 hops we must be back at the head.
        let mut cur = head;
        for _ in 0..4 {
            let Val::Addr(next) = heap.live().get(cur).unwrap().fields[0] else {
                panic!("cycle must not hit nil");
            };
            cur = next;
        }
        assert_eq!(cur, head);
    }

    #[test]
    #[should_panic(expected = "prev")]
    fn dll_requires_prev_field() {
        let _ = ValueSpec::dll(layout(), 3);
    }

    #[test]
    fn with_order_sorts_payloads() {
        let mut heap = RtHeap::new();
        let args = InputSpec::seeded(11)
            .arg(ValueSpec::sll(layout(), 8).with_order(DataOrder::Sorted))
            .build(&mut heap);
        let mut cur = args[0];
        let mut vals = Vec::new();
        while let Val::Addr(l) = cur {
            let cell = heap.live().get(l).unwrap();
            vals.push(cell.fields[1].as_int().unwrap());
            cur = cell.fields[0];
        }
        assert_eq!(vals.len(), 8);
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{vals:?}");
    }
}
