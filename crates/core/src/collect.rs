//! Model collection — the paper's `CollectModels` (Algorithm 1, line 1).
//!
//! Runs the program on every test input under the tracer and groups the
//! observed stack-heap models by breakpoint location. A run that faults
//! (seeded bug, non-termination guard) contributes the snapshots recorded
//! *before* the fault — the paper's Red-black-tree `insert` analysis
//! (§5.4) relies on exactly this partial-trace behaviour.

use std::collections::BTreeMap;

use sling_lang::{Location, Program, RtError, Snapshot, TraceConfig, Tracer, Vm, VmConfig};
use sling_logic::Symbol;

use crate::request::InputSource;

/// One traced run of the target function.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Snapshots in execution order.
    pub snapshots: Vec<Snapshot>,
    /// The fault that ended the run early, if any.
    pub error: Option<RtError>,
}

/// All models observed for one target function across a test suite.
#[derive(Debug, Clone, Default)]
pub struct Collected {
    /// Per-run traces.
    pub runs: Vec<RunTrace>,
}

impl Collected {
    /// Snapshots grouped by location (flattened across runs, in run then
    /// execution order).
    pub fn by_location(&self) -> BTreeMap<Location, Vec<&Snapshot>> {
        let mut out: BTreeMap<Location, Vec<&Snapshot>> = BTreeMap::new();
        for run in &self.runs {
            for snap in &run.snapshots {
                out.entry(snap.location).or_default().push(snap);
            }
        }
        out
    }

    /// Total number of snapshots (the paper's "Traces" column).
    pub fn total_snapshots(&self) -> usize {
        self.runs.iter().map(|r| r.snapshots.len()).sum()
    }

    /// Number of runs that faulted.
    pub fn faulted_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.error.is_some()).count()
    }
}

/// Runs `target` once per input source and collects the traces.
pub fn collect_models(
    program: &Program,
    target: Symbol,
    inputs: &[InputSource],
    vm_config: VmConfig,
    trace_config: TraceConfig,
) -> Collected {
    let mut out = Collected::default();
    // Each run's VM numbers activations from 1; offset them so activation
    // ids are unique across the whole collection (the frame-rule
    // validation pairs entry/exit snapshots by activation id).
    let mut base: u64 = 0;
    for input in inputs {
        let mut vm = Vm::new(program, vm_config);
        let args = input.build(&mut vm.heap);
        vm.set_tracer(Tracer::new(target, trace_config));
        let result = vm.call(target, &args);
        let tracer = vm.take_tracer().expect("tracer was installed");
        let mut snapshots = tracer.snapshots;
        let mut max_act = 0;
        for s in &mut snapshots {
            max_act = max_act.max(s.activation);
            s.activation += base;
        }
        base += max_act;
        out.runs.push(RunTrace {
            snapshots,
            error: result.err(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program, RtHeap};
    use sling_models::Val;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    const SUM: &str = "
        struct Cell { next: Cell*; data: int; }
        fn sum(x: Cell*) -> int {
            var total: int = 0;
            while @inv (x != null) { total = total + x->data; x = x->next; }
            return total;
        }";

    fn list_builder(vals: &'static [i64]) -> InputSource {
        InputSource::custom(move |heap: &mut RtHeap| {
            let mut next = Val::Nil;
            for v in vals.iter().rev() {
                let loc = heap.alloc(sym("Cell"), vec![next, Val::Int(*v)]);
                next = Val::Addr(loc);
            }
            vec![next]
        })
    }

    #[test]
    fn collects_across_runs() {
        let p = parse_program(SUM).unwrap();
        check_program(&p).unwrap();
        let inputs = vec![
            list_builder(&[]),
            list_builder(&[1]),
            list_builder(&[1, 2, 3]),
        ];
        let c = collect_models(
            &p,
            sym("sum"),
            &inputs,
            VmConfig::default(),
            TraceConfig::default(),
        );
        assert_eq!(c.runs.len(), 3);
        assert_eq!(c.faulted_runs(), 0);
        let by_loc = c.by_location();
        assert_eq!(by_loc[&Location::Entry].len(), 3);
        // Loop head: 1 + 2 + 4 hits.
        assert_eq!(by_loc[&Location::LoopHead(sym("inv"))].len(), 7);
        assert_eq!(by_loc[&Location::Exit(0)].len(), 3);
        assert_eq!(c.total_snapshots(), 13);
    }

    #[test]
    fn faulting_run_keeps_prefix() {
        let p = parse_program(
            "struct Cell { next: Cell*; data: int; }
             fn bad(x: Cell*) -> int {
                 @before;
                 return x->data;
             }",
        )
        .unwrap();
        check_program(&p).unwrap();
        let inputs = vec![InputSource::custom(|_| vec![Val::Nil])];
        let c = collect_models(
            &p,
            sym("bad"),
            &inputs,
            VmConfig::default(),
            TraceConfig::default(),
        );
        assert_eq!(c.runs.len(), 1);
        assert!(c.runs[0].error.is_some());
        // Entry and @before were recorded before the crash.
        assert_eq!(c.runs[0].snapshots.len(), 2);
    }
}
