//! Model collection — the paper's `CollectModels` (Algorithm 1, line 1).
//!
//! Runs the program on every test input under the tracer and groups the
//! observed stack-heap models by breakpoint location. A run that faults
//! (seeded bug, non-termination guard) contributes the snapshots recorded
//! *before* the fault — the paper's Red-black-tree `insert` analysis
//! (§5.4) relies on exactly this partial-trace behaviour.
//!
//! Collection dispatches through an [`Executor`]: the compiled bytecode
//! tier (`sling_vm`, the default hot path) or the tree-walk interpreter
//! (`sling_lang::Vm`, kept as the differential-testing oracle). Both
//! produce identical snapshot streams and identical faults, so the
//! choice is invisible to everything downstream.

use std::collections::BTreeMap;
use std::fmt;

use sling_lang::{Location, Program, RtError, Snapshot, TraceConfig, Tracer, Vm, VmConfig};
use sling_logic::Symbol;
use sling_vm::{BytecodeVm, CompiledProgram};

use crate::request::InputSource;

/// Which execution tier runs the target program during collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// Compiled bytecode (`sling_vm::BytecodeVm`) — the default.
    #[default]
    Bytecode,
    /// The tree-walk interpreter (`sling_lang::Vm`) — the reference
    /// oracle, selectable via `SLING_EXECUTOR=treewalk` or
    /// `sling-serve --executor treewalk`.
    Treewalk,
}

impl Executor {
    /// Parses an executor name (`"bytecode"` / `"treewalk"`).
    pub fn parse(s: &str) -> Option<Executor> {
        match s {
            "bytecode" => Some(Executor::Bytecode),
            "treewalk" => Some(Executor::Treewalk),
            _ => None,
        }
    }
}

impl fmt::Display for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Executor::Bytecode => f.write_str("bytecode"),
            Executor::Treewalk => f.write_str("treewalk"),
        }
    }
}

/// One traced run of the target function.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Snapshots in execution order.
    pub snapshots: Vec<Snapshot>,
    /// The fault that ended the run early, if any.
    pub error: Option<RtError>,
}

/// All models observed for one target function across a test suite.
#[derive(Debug, Clone, Default)]
pub struct Collected {
    /// Per-run traces.
    pub runs: Vec<RunTrace>,
}

impl Collected {
    /// Snapshots grouped by location (flattened across runs, in run then
    /// execution order).
    pub fn by_location(&self) -> BTreeMap<Location, Vec<&Snapshot>> {
        let mut out: BTreeMap<Location, Vec<&Snapshot>> = BTreeMap::new();
        for run in &self.runs {
            for snap in &run.snapshots {
                out.entry(snap.location).or_default().push(snap);
            }
        }
        out
    }

    /// Total number of snapshots (the paper's "Traces" column).
    pub fn total_snapshots(&self) -> usize {
        self.runs.iter().map(|r| r.snapshots.len()).sum()
    }

    /// Number of runs that faulted.
    pub fn faulted_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.error.is_some()).count()
    }
}

/// Renumbers one run's activation ids into the collection-wide
/// sequence: every id shifts by `base`, and the next run's base comes
/// back. `activations` must be the VM's activation *counter*, not the
/// largest recorded id — an activation that faults before its first
/// snapshot still consumed an id, and offsetting by the recorded
/// maximum would let the next run reuse it (colliding entry/exit pairs
/// in the frame-rule validation).
fn offset_activations(snapshots: &mut [Snapshot], base: u64, activations: u64) -> u64 {
    for s in snapshots {
        s.activation += base;
    }
    base + activations
}

/// Runs `target` once per input source and collects the traces.
///
/// `compiled` is the bytecode form of `program` (see
/// [`sling_vm::Compiler::compile`]); engines compile once and reuse it
/// across every request so compilation amortizes over the whole batch.
pub fn collect_models(
    program: &Program,
    compiled: &CompiledProgram,
    target: Symbol,
    inputs: &[InputSource],
    vm_config: VmConfig,
    trace_config: TraceConfig,
    executor: Executor,
) -> Collected {
    let mut out = Collected::default();
    // Each run's VM numbers activations from 1; offset them so activation
    // ids are unique across the whole collection (the frame-rule
    // validation pairs entry/exit snapshots by activation id).
    let mut base: u64 = 0;
    for input in inputs {
        let (snapshots, error, activations) = match executor {
            Executor::Bytecode => {
                let mut vm = BytecodeVm::new(compiled, vm_config);
                let args = input.build(&mut vm.heap);
                vm.set_tracer(Tracer::new(target, trace_config));
                let result = vm.call(target, &args);
                let tracer = vm.take_tracer().expect("tracer was installed");
                (tracer.snapshots, result.err(), vm.activations())
            }
            Executor::Treewalk => {
                let mut vm = Vm::new(program, vm_config);
                let args = input.build(&mut vm.heap);
                vm.set_tracer(Tracer::new(target, trace_config));
                let result = vm.call(target, &args);
                let tracer = vm.take_tracer().expect("tracer was installed");
                (tracer.snapshots, result.err(), vm.activations())
            }
        };
        let mut snapshots = snapshots;
        base = offset_activations(&mut snapshots, base, activations);
        out.runs.push(RunTrace { snapshots, error });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program, RtHeap};
    use sling_models::{StackHeapModel, Val};
    use sling_vm::Compiler;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    const SUM: &str = "
        struct Cell { next: Cell*; data: int; }
        fn sum(x: Cell*) -> int {
            var total: int = 0;
            while @inv (x != null) { total = total + x->data; x = x->next; }
            return total;
        }";

    fn list_builder(vals: &'static [i64]) -> InputSource {
        InputSource::custom(move |heap: &mut RtHeap| {
            let mut next = Val::Nil;
            for v in vals.iter().rev() {
                let loc = heap.alloc(sym("Cell"), vec![next, Val::Int(*v)]);
                next = Val::Addr(loc);
            }
            vec![next]
        })
    }

    fn collect_with(executor: Executor) -> Collected {
        let p = parse_program(SUM).unwrap();
        check_program(&p).unwrap();
        let compiled = Compiler::compile(&p);
        let inputs = vec![
            list_builder(&[]),
            list_builder(&[1]),
            list_builder(&[1, 2, 3]),
        ];
        collect_models(
            &p,
            &compiled,
            sym("sum"),
            &inputs,
            VmConfig::default(),
            TraceConfig::default(),
            executor,
        )
    }

    #[test]
    fn collects_across_runs() {
        for executor in [Executor::Bytecode, Executor::Treewalk] {
            let c = collect_with(executor);
            assert_eq!(c.runs.len(), 3, "{executor}");
            assert_eq!(c.faulted_runs(), 0, "{executor}");
            let by_loc = c.by_location();
            assert_eq!(by_loc[&Location::Entry].len(), 3);
            // Loop head: 1 + 2 + 4 hits.
            assert_eq!(by_loc[&Location::LoopHead(sym("inv"))].len(), 7);
            assert_eq!(by_loc[&Location::Exit(0)].len(), 3);
            assert_eq!(c.total_snapshots(), 13);
        }
    }

    #[test]
    fn executors_agree_snapshot_for_snapshot() {
        let bc = collect_with(Executor::Bytecode);
        let tw = collect_with(Executor::Treewalk);
        assert_eq!(bc.runs.len(), tw.runs.len());
        for (b, t) in bc.runs.iter().zip(&tw.runs) {
            assert_eq!(b.snapshots, t.snapshots);
            assert_eq!(b.error, t.error);
        }
    }

    #[test]
    fn faulting_run_keeps_prefix() {
        let p = parse_program(
            "struct Cell { next: Cell*; data: int; }
             fn bad(x: Cell*) -> int {
                 @before;
                 return x->data;
             }",
        )
        .unwrap();
        check_program(&p).unwrap();
        let compiled = Compiler::compile(&p);
        for executor in [Executor::Bytecode, Executor::Treewalk] {
            let inputs = vec![InputSource::custom(|_| vec![Val::Nil])];
            let c = collect_models(
                &p,
                &compiled,
                sym("bad"),
                &inputs,
                VmConfig::default(),
                TraceConfig::default(),
                executor,
            );
            assert_eq!(c.runs.len(), 1, "{executor}");
            assert!(c.runs[0].error.is_some(), "{executor}");
            // Entry and @before were recorded before the crash.
            assert_eq!(c.runs[0].snapshots.len(), 2, "{executor}");
        }
    }

    #[test]
    fn executor_names_round_trip() {
        for e in [Executor::Bytecode, Executor::Treewalk] {
            assert_eq!(Executor::parse(&e.to_string()), Some(e));
        }
        assert_eq!(Executor::parse("ast"), None);
        assert_eq!(Executor::default(), Executor::Bytecode);
    }

    /// The collision the old offsetting allowed: a run whose deepest
    /// activation recorded no snapshot (it faulted before reaching a
    /// breakpoint). Offsetting by the largest *recorded* id (2) would
    /// hand the next run a base of 2, reusing activation 3; offsetting
    /// by the VM's counter (3) keeps ids unique.
    #[test]
    fn activation_offset_uses_the_counter_not_the_recorded_max() {
        let snap = |activation: u64| Snapshot {
            location: Location::Entry,
            model: StackHeapModel::default(),
            tainted: false,
            activation,
        };
        // Run 1: activations 1 and 2 snapshotted; activation 3 faulted
        // before its first snapshot, so the counter says 3.
        let mut first = vec![snap(1), snap(2)];
        let base = offset_activations(&mut first, 0, 3);
        assert_eq!(base, 3, "counter, not max recorded id (2)");
        // Run 2: its activation 1 must not collide with run 1's unseen
        // activation 3.
        let mut second = vec![snap(1)];
        let base = offset_activations(&mut second, base, 1);
        assert_eq!(second[0].activation, 4);
        assert_eq!(base, 4);
    }

    /// Cross-run activation ids stay unique (and identical between
    /// executors) even when the first run faults mid-recursion.
    #[test]
    fn faulting_runs_keep_activation_ids_unique() {
        let p = parse_program(
            "struct Cell { next: Cell*; data: int; }
             fn probe(x: Cell*) -> int {
                 if (x->next == null) { return x->data; }
                 return probe(x->next);
             }",
        )
        .unwrap();
        check_program(&p).unwrap();
        let compiled = Compiler::compile(&p);
        for executor in [Executor::Bytecode, Executor::Treewalk] {
            let inputs = vec![
                // Null x: `x->next` null-derefs right after the entry
                // snapshot records activation 1, ending run 1 early.
                InputSource::custom(|_| vec![Val::Nil]),
                InputSource::custom(|heap: &mut RtHeap| {
                    let tail = heap.alloc(sym("Cell"), vec![Val::Nil, Val::Int(7)]);
                    let head = heap.alloc(sym("Cell"), vec![Val::Addr(tail), Val::Int(3)]);
                    vec![Val::Addr(head)]
                }),
            ];
            let c = collect_models(
                &p,
                &compiled,
                sym("probe"),
                &inputs,
                VmConfig::default(),
                TraceConfig::default(),
                executor,
            );
            assert!(c.runs[0].error.is_some(), "{executor}");
            // Run 1 consumed activation 1; run 2's two activations are
            // renumbered 2 and 3 — no reuse across runs.
            let ids: Vec<u64> = c
                .runs
                .iter()
                .flat_map(|r| r.snapshots.iter().map(|s| s.activation))
                .collect();
            assert_eq!(ids[0], 1, "{executor}");
            let run2: Vec<u64> = c.runs[1].snapshots.iter().map(|s| s.activation).collect();
            assert_eq!(run2, vec![2, 3, 3, 2], "{executor}");
        }
    }
}
