//! Atomic-predicate inference — the paper's `InferAtom` (Algorithm 2).
//!
//! Given the sub-models of a root pointer and their common boundary,
//! `InferAtom` searches the predicate set for atomic formulae satisfied by
//! *all* sub-models:
//!
//! 1. **Inductive predicates** — for each predicate with a parameter of
//!    the root's type, enumerate argument tuples: subsets `A` of the
//!    boundary containing the root (ascending size), padded with fresh
//!    existential variables, placed injectively into parameter positions
//!    that are type-consistent (Algorithm 2, line 8). Each candidate
//!    `∃u⃗. p(k1..kn)` is model-checked against every sub-model; accepted
//!    candidates carry their per-model residual heaps and existential
//!    instantiations.
//! 2. **Singleton predicates** — when every sub-model is a single cell at
//!    the root, a points-to atom is built; fields take the common stack
//!    variable (or `nil`) when one exists in *all* models, otherwise a
//!    fresh existential instantiated per model.
//! 3. **`emp`** — the fallback when nothing else matched: the whole
//!    sub-heap becomes residue.

use std::collections::{BTreeMap, BTreeSet};

use sling_checker::{CheckCtx, Instantiation};
use sling_logic::{Expr, FieldAssign, FieldTy, FreshVars, PredDef, SpatialAtom, SymHeap, Symbol};
use sling_models::{Heap, StackHeapModel, Val};

use crate::split::BoundaryItem;

/// Limits for the candidate search.
#[derive(Debug, Clone, Copy)]
pub struct InferConfig {
    /// Maximum accepted atomic formulae per variable (strongest —
    /// smallest total residue — kept first).
    pub max_results_per_var: usize,
    /// Maximum candidate argument tuples tried per predicate.
    pub max_candidates_per_pred: usize,
    /// Reject inductive candidates that cover no cell in any model
    /// (vacuously true base-case matches convey nothing beyond `emp`).
    pub require_nonvacuous: bool,
}

impl Default for InferConfig {
    fn default() -> InferConfig {
        InferConfig {
            max_results_per_var: 4,
            max_candidates_per_pred: 4_096,
            require_nonvacuous: true,
        }
    }
}

/// One accepted atomic formula with its per-model evidence.
#[derive(Debug, Clone)]
pub struct AtomResult {
    /// `∃u⃗. p(...)`, a points-to, or `emp`.
    pub formula: SymHeap,
    /// Per model: the part of the sub-heap *not* covered.
    pub residues: Vec<Heap>,
    /// Per model: values of the formula's existentials.
    pub insts: Vec<Instantiation>,
    /// Total residue size across models (smaller = stronger).
    pub total_residue: usize,
}

/// How a stack variable is typed, derived from observed values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarTy {
    /// Pointer to a known structure.
    Ptr(Symbol),
    /// Integer.
    Int,
    /// Only `nil` observed: compatible with every pointer type.
    NilPtr,
}

impl VarTy {
    fn fits(self, param: FieldTy) -> bool {
        match (self, param) {
            (VarTy::Ptr(a), FieldTy::Ptr(b)) => a == b,
            (VarTy::NilPtr, FieldTy::Ptr(_)) => true,
            (VarTy::Int, FieldTy::Int) => true,
            _ => false,
        }
    }
}

/// Derives variable types from the values observed across models: an
/// address typed by its cell wins over `nil`; integers are `Int`.
pub fn var_types(models: &[StackHeapModel]) -> BTreeMap<Symbol, VarTy> {
    let mut out: BTreeMap<Symbol, VarTy> = BTreeMap::new();
    for m in models {
        for (w, val) in m.stack.iter() {
            match val {
                Val::Int(_) => {
                    out.insert(w, VarTy::Int);
                }
                Val::Addr(loc) => {
                    if let Some(cell) = m.heap.get(loc) {
                        out.insert(w, VarTy::Ptr(cell.ty));
                    } else {
                        out.entry(w).or_insert(VarTy::NilPtr);
                    }
                }
                Val::Nil => {
                    out.entry(w).or_insert(VarTy::NilPtr);
                }
            }
        }
    }
    out
}

/// Runs `InferAtom` for the root variable `v` (Algorithm 2).
///
/// `types` maps stack variables to their observed types (for the
/// `type(ki) <: type(ti)` check); `fresh` supplies existential names
/// shared across the whole location so `u1, u2, ...` never collide.
pub fn infer_atom(
    ctx: &CheckCtx<'_>,
    v: Symbol,
    sub_models: &[StackHeapModel],
    boundary: &BTreeSet<BoundaryItem>,
    types: &BTreeMap<Symbol, VarTy>,
    fresh: &mut FreshVars,
    config: &InferConfig,
) -> Vec<AtomResult> {
    let n_models = sub_models.len();
    assert!(n_models > 0, "InferAtom needs at least one model");

    // Empty sub-heaps in every model: only `emp` is informative.
    if sub_models.iter().all(|m| m.heap.is_empty()) {
        return vec![emp_result(sub_models)];
    }

    let mut results: Vec<AtomResult> = Vec::new();

    // --- Inductive predicates -------------------------------------------
    let root_ty = sub_models.iter().find_map(|m| {
        m.stack
            .get(v)
            .and_then(|val| val.as_addr())
            .and_then(|l| m.heap.get(l))
            .map(|c| c.ty)
    });
    if let Some(root_ty) = root_ty {
        let items: Vec<BoundaryItem> = boundary.iter().copied().collect();
        for pred in ctx.preds.for_root_type(root_ty) {
            infer_inductive(
                ctx,
                v,
                sub_models,
                &items,
                types,
                pred,
                fresh,
                config,
                &mut results,
            );
        }
    }

    // --- Singleton predicate --------------------------------------------
    if let Some(single) = infer_singleton(ctx, v, sub_models, fresh) {
        results.push(single);
    }

    // --- emp fallback -----------------------------------------------------
    if results.is_empty() {
        return vec![emp_result(sub_models)];
    }

    // Keep a *diverse* strongest set. Two rankings matter:
    //  * smallest total residue (covers the most memory), and
    //  * the root variable in the earliest predicate position (the
    //    paper's head-rooted presentation, e.g. `dll(x, u1, u2, tmp)` —
    //    §2.3 keeps it even though its residue is larger than the
    //    tail-rooted alternative when back-pointers reach above `x`).
    // Half the slots go to each ranking; duplicates collapse.
    let k = config.max_results_per_var.max(1);
    let mut ranked = results.clone();
    ranked.sort_by_cached_key(|r| {
        (
            r.total_residue,
            root_position(&r.formula, v),
            r.formula.exists.len(),
            r.formula.to_string(),
        )
    });
    results.sort_by_cached_key(|r| {
        (
            root_position(&r.formula, v),
            r.total_residue,
            r.formula.exists.len(),
            r.formula.to_string(),
        )
    });
    let mut keep: Vec<AtomResult> = Vec::with_capacity(k);
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for r in ranked.into_iter().take(k.div_ceil(2)).chain(results) {
        if keep.len() >= k {
            break;
        }
        if seen.insert(r.formula.to_string()) {
            keep.push(r);
        }
    }
    keep
}

/// Index of the root variable among the first spatial atom's arguments
/// (points-to roots count as position 0; absent roots sort last).
fn root_position(formula: &SymHeap, root: Symbol) -> usize {
    match formula.spatial.first() {
        Some(SpatialAtom::Pred { args, .. }) => args
            .iter()
            .position(|a| a.as_var() == Some(root))
            .unwrap_or(usize::MAX),
        Some(SpatialAtom::PointsTo { .. }) => 0,
        None => usize::MAX,
    }
}

fn emp_result(sub_models: &[StackHeapModel]) -> AtomResult {
    AtomResult {
        formula: SymHeap::emp(),
        residues: sub_models.iter().map(|m| m.heap.clone()).collect(),
        insts: vec![Instantiation::new(); sub_models.len()],
        total_residue: sub_models.iter().map(|m| m.heap.len()).sum(),
    }
}

#[allow(clippy::too_many_arguments)]
fn infer_inductive(
    ctx: &CheckCtx<'_>,
    root: Symbol,
    sub_models: &[StackHeapModel],
    boundary: &[BoundaryItem],
    types: &BTreeMap<Symbol, VarTy>,
    pred: &PredDef,
    fresh: &mut FreshVars,
    config: &InferConfig,
    results: &mut Vec<AtomResult>,
) {
    let n = pred.arity();
    let root_item = BoundaryItem::Var(root);
    let others: Vec<BoundaryItem> = boundary
        .iter()
        .copied()
        .filter(|b| *b != root_item)
        .collect();

    let mut tried = 0usize;

    // Subsets of the boundary that contain the root, ascending size.
    for extra in 0..=others.len().min(n.saturating_sub(1)) {
        for combo in combinations(&others, extra) {
            let mut set = vec![root_item];
            set.extend(combo);
            // Injective placements of `set` into the n positions.
            let placements = placements(&set, n, pred, types);
            for placement in placements {
                tried += 1;
                if tried > config.max_candidates_per_pred {
                    return;
                }
                try_candidate(ctx, sub_models, pred, &placement, fresh, config, results);
            }
        }
    }
}

/// All ways to place the boundary items of `set` injectively into the
/// `n` parameter positions of `pred`, respecting types. Unused positions
/// are `None` (filled with fresh existentials later).
fn placements(
    set: &[BoundaryItem],
    n: usize,
    pred: &PredDef,
    types: &BTreeMap<Symbol, VarTy>,
) -> Vec<Vec<Option<BoundaryItem>>> {
    let mut out = Vec::new();
    let mut current: Vec<Option<BoundaryItem>> = vec![None; n];
    place_rec(set, 0, pred, types, &mut current, &mut out);
    out
}

fn place_rec(
    set: &[BoundaryItem],
    idx: usize,
    pred: &PredDef,
    types: &BTreeMap<Symbol, VarTy>,
    current: &mut Vec<Option<BoundaryItem>>,
    out: &mut Vec<Vec<Option<BoundaryItem>>>,
) {
    if idx == set.len() {
        out.push(current.clone());
        return;
    }
    let item = set[idx];
    for pos in 0..current.len() {
        if current[pos].is_some() {
            continue;
        }
        let param_ty = pred.params[pos].ty;
        let ok = match item {
            BoundaryItem::Nil => matches!(param_ty, FieldTy::Ptr(_)),
            BoundaryItem::Var(w) => match types.get(&w) {
                Some(t) => t.fits(param_ty),
                // Unknown (never-seen) variable: be permissive for
                // pointer positions.
                None => matches!(param_ty, FieldTy::Ptr(_)),
            },
        };
        if !ok {
            continue;
        }
        current[pos] = Some(item);
        place_rec(set, idx + 1, pred, types, current, out);
        current[pos] = None;
    }
}

fn try_candidate(
    ctx: &CheckCtx<'_>,
    sub_models: &[StackHeapModel],
    pred: &PredDef,
    placement: &[Option<BoundaryItem>],
    fresh: &mut FreshVars,
    config: &InferConfig,
    results: &mut Vec<AtomResult>,
) {
    // Build ∃u⃗. p(args): fresh names are *tentative* — they only stick
    // if the candidate is accepted, so rejected candidates do not burn
    // through the u-namespace.
    let mut trial = fresh.clone();
    let mut exists = Vec::new();
    let args: Vec<Expr> = placement
        .iter()
        .map(|slot| match slot {
            Some(item) => item.to_expr(),
            None => {
                let u = trial.next();
                exists.push(u);
                Expr::Var(u)
            }
        })
        .collect();
    let formula = SymHeap {
        exists,
        spatial: vec![SpatialAtom::Pred {
            name: pred.name,
            args,
        }],
        pure: vec![],
    };

    let mut residues = Vec::with_capacity(sub_models.len());
    let mut insts = Vec::with_capacity(sub_models.len());
    let mut covered_any = false;
    for m in sub_models {
        match ctx.check(m, &formula) {
            Some(red) => {
                covered_any |= red.covered > 0;
                residues.push(red.residual);
                insts.push(red.inst);
            }
            None => return,
        }
    }
    if config.require_nonvacuous && !covered_any {
        return;
    }
    *fresh = trial;
    let total_residue = residues.iter().map(|h| h.len()).sum();
    results.push(AtomResult {
        formula,
        residues,
        insts,
        total_residue,
    });
}

/// Singleton inference (Algorithm 2, lines 12–13).
fn infer_singleton(
    ctx: &CheckCtx<'_>,
    v: Symbol,
    sub_models: &[StackHeapModel],
    fresh: &mut FreshVars,
) -> Option<AtomResult> {
    // Applicable only when every sub-model is exactly the root's cell.
    let mut cells = Vec::with_capacity(sub_models.len());
    for m in sub_models {
        if m.heap.len() != 1 {
            return None;
        }
        let loc = m.stack.get(v)?.as_addr()?;
        let cell = m.heap.get(loc)?;
        cells.push((m, cell));
    }
    let ty = cells[0].1.ty;
    if cells.iter().any(|(_, c)| c.ty != ty) {
        return None;
    }
    let def = ctx.types.get(ty)?;

    let mut exists = Vec::new();
    let mut fields = Vec::with_capacity(def.fields.len());
    let mut insts = vec![Instantiation::new(); sub_models.len()];
    for (i, fdef) in def.fields.iter().enumerate() {
        // A common constant value: nil everywhere?
        if cells.iter().all(|(_, c)| c.fields[i] == Val::Nil) {
            fields.push(FieldAssign {
                name: fdef.name,
                value: Expr::Nil,
            });
            continue;
        }
        // A common integer literal?
        if let Val::Int(k) = cells[0].1.fields[i] {
            if cells.iter().all(|(_, c)| c.fields[i] == Val::Int(k)) {
                fields.push(FieldAssign {
                    name: fdef.name,
                    value: Expr::Int(k),
                });
                continue;
            }
        }
        // A stack variable with this value in every model?
        let common_var = cells[0]
            .0
            .stack
            .iter()
            .filter(|(w, _)| *w != v)
            .find(|(w, _)| {
                cells
                    .iter()
                    .all(|(m, c)| m.stack.get(*w) == Some(c.fields[i]))
            })
            .map(|(w, _)| w);
        if let Some(w) = common_var {
            fields.push(FieldAssign {
                name: fdef.name,
                value: Expr::Var(w),
            });
            continue;
        }
        // Fresh existential, instantiated per model.
        let u = fresh.next();
        exists.push(u);
        for (k, (_, c)) in cells.iter().enumerate() {
            insts[k].bind(u, c.fields[i]);
        }
        fields.push(FieldAssign {
            name: fdef.name,
            value: Expr::Var(u),
        });
    }

    Some(AtomResult {
        formula: SymHeap {
            exists,
            spatial: vec![SpatialAtom::PointsTo {
                root: Expr::Var(v),
                ty,
                fields,
            }],
            pure: vec![],
        },
        residues: vec![Heap::new(); sub_models.len()],
        insts,
        total_residue: 0,
    })
}

/// `k`-element combinations of `items`, in deterministic order.
fn combinations<T: Copy>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec<T: Copy>(
        items: &[T],
        k: usize,
        start: usize,
        current: &mut Vec<T>,
        out: &mut Vec<Vec<T>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..items.len() {
            current.push(items[i]);
            rec(items, k, i + 1, current, out);
            current.pop();
        }
    }
    rec(items, k, 0, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_logic::{parse_predicates, FieldDef, PredEnv, StructDef, TypeEnv};
    use sling_models::{Loc, Stack};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn l(n: u64) -> Loc {
        Loc::new(n)
    }

    fn envs() -> (TypeEnv, PredEnv) {
        let mut types = TypeEnv::new();
        let node = sym("Node");
        types
            .define(StructDef {
                name: node,
                fields: vec![
                    FieldDef {
                        name: sym("next"),
                        ty: FieldTy::Ptr(node),
                    },
                    FieldDef {
                        name: sym("prev"),
                        ty: FieldTy::Ptr(node),
                    },
                ],
            })
            .unwrap();
        let mut preds = PredEnv::new();
        for d in parse_predicates(
            "pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
                 emp & hd == nx & pr == tl
               | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx);",
        )
        .unwrap()
        {
            preds.define(d).unwrap();
        }
        (types, preds)
    }

    fn dcell(next: Val, prev: Val) -> sling_models::HeapCell {
        sling_models::HeapCell::new(sym("Node"), vec![next, prev])
    }

    /// Sub-models of x from Figure 3 (iterations 1..=3), with the full
    /// stacks.
    fn fig3_submodels() -> Vec<StackHeapModel> {
        (1..=3u64)
            .map(|i| {
                let mut heap = Heap::new();
                for c in 1..=i {
                    let next = if c < i {
                        Val::Addr(l(c + 1))
                    } else {
                        Val::Addr(l(i + 1))
                    };
                    let prev = if c > 1 { Val::Addr(l(c - 1)) } else { Val::Nil };
                    heap.insert(l(c), dcell(next, prev));
                }
                let mut stack = Stack::new();
                stack.bind(sym("x"), Val::Addr(l(1)));
                stack.bind(sym("tmp"), Val::Addr(l(i + 1)));
                stack.bind(sym("y"), Val::Addr(l(4)));
                stack.bind(sym("res"), Val::Addr(l(1)));
                StackHeapModel::new(stack, heap)
            })
            .collect()
    }

    fn boundary() -> BTreeSet<BoundaryItem> {
        [
            BoundaryItem::Var(sym("x")),
            BoundaryItem::Var(sym("res")),
            BoundaryItem::Nil,
            BoundaryItem::Var(sym("tmp")),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn finds_paper_formula_fx() {
        let (types, preds) = envs();
        let ctx = CheckCtx::new(&types, &preds);
        let models = fig3_submodels();
        let mut fresh = FreshVars::new("u");
        let vt = var_types(&models);
        let results = infer_atom(
            &ctx,
            sym("x"),
            &models,
            &boundary(),
            &vt,
            &mut fresh,
            &InferConfig::default(),
        );
        assert!(!results.is_empty());
        // The strongest results must fully cover every sub-heap.
        assert_eq!(results[0].total_residue, 0);
        // Among accepted formulas there must be a dll rooted at x ending
        // at tmp (the paper's Fx = ∃u1,u2. dll(x, u1, u2, tmp)).
        let found = results.iter().any(|r| {
            let s = r.formula.to_string();
            s.contains("dll(x,") && s.trim_end().ends_with("tmp)")
        });
        assert!(
            found,
            "missing Fx; got: {:?}",
            results
                .iter()
                .map(|r| r.formula.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_submodels_give_emp() {
        let (types, preds) = envs();
        let ctx = CheckCtx::new(&types, &preds);
        let mut stack = Stack::new();
        stack.bind(sym("res"), Val::Addr(l(1)));
        let models = vec![StackHeapModel::new(stack, Heap::new())];
        let mut fresh = FreshVars::new("u");
        let vt = var_types(&models);
        let results = infer_atom(
            &ctx,
            sym("res"),
            &models,
            &BTreeSet::new(),
            &vt,
            &mut fresh,
            &InferConfig::default(),
        );
        assert_eq!(results.len(), 1);
        assert!(results[0].formula.is_emp());
    }

    #[test]
    fn singleton_inferred_for_one_cell() {
        let (types, preds) = envs();
        let ctx = CheckCtx::new(&types, &preds);
        // One cell whose next points to y's address and prev is nil.
        let mut heap = Heap::new();
        heap.insert(l(1), dcell(Val::Addr(l(9)), Val::Nil));
        let mut stack = Stack::new();
        stack.bind(sym("p"), Val::Addr(l(1)));
        stack.bind(sym("q"), Val::Addr(l(9)));
        let models = vec![StackHeapModel::new(stack, heap)];
        let mut fresh = FreshVars::new("u");
        let vt = var_types(&models);
        let results = infer_atom(
            &ctx,
            sym("p"),
            &models,
            &[BoundaryItem::Var(sym("p")), BoundaryItem::Var(sym("q"))]
                .into_iter()
                .collect(),
            &vt,
            &mut fresh,
            &InferConfig::default(),
        );
        let singleton = results
            .iter()
            .find(|r| {
                matches!(
                    r.formula.spatial.first(),
                    Some(SpatialAtom::PointsTo { .. })
                )
            })
            .expect("a singleton result");
        assert_eq!(
            singleton.formula.to_string(),
            "p -> Node{next: q, prev: nil}"
        );
    }

    #[test]
    fn vacuous_candidates_are_rejected() {
        let (types, preds) = envs();
        let ctx = CheckCtx::new(&types, &preds);
        let models = fig3_submodels();
        let mut fresh = FreshVars::new("u");
        let vt = var_types(&models);
        let results = infer_atom(
            &ctx,
            sym("x"),
            &models,
            &boundary(),
            &vt,
            &mut fresh,
            &InferConfig::default(),
        );
        // No accepted inductive formula may be a vacuous base-case match.
        for r in &results {
            assert!(
                r.total_residue < models.iter().map(|m| m.heap.len()).sum::<usize>(),
                "vacuous: {}",
                r.formula
            );
        }
    }

    #[test]
    fn combinations_count() {
        let items = [1, 2, 3, 4];
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 0).len(), 1);
        assert_eq!(combinations(&items, 4).len(), 1);
    }

    #[test]
    fn var_types_from_models() {
        let models = fig3_submodels();
        let vt = var_types(&models);
        assert_eq!(vt.get(&sym("x")), Some(&VarTy::Ptr(sym("Node"))));
        // y = 0x04 is outside every sub-heap, so it stays a bare pointer.
        assert_eq!(vt.get(&sym("y")), Some(&VarTy::NilPtr));
    }
}
