//! The distributed entailment-cache tier: wire productions and the
//! write-through client.
//!
//! A fleet of engines over the same predicate library re-derives the
//! same entailments; `sling-serve --cache-server` turns the memo table
//! into a shared network service. This module owns the engine side:
//!
//! * the `get` / `put` / `sync` productions the tier speaks over the
//!   [`crate::wire`] codec ([`CacheRequest`] / [`CacheResponse`] —
//!   the server in `sling-serve` uses the same types), and
//! * [`RemoteCacheClient`], the write-through hook an engine plugs into
//!   its checker via [`crate::EngineBuilder::remote_cache`].
//!
//! # Protocol
//!
//! ```text
//! client → server   sling7 get <types:u64> <budget:u64> <slack:u64> <text:string>
//! client → server   sling7 put <types:u64> <n:u64> entry*
//! client → server   sling7 sync <types:u64> <since:u64>
//! server → client   sling7 cachehello <entries:u64>          ; banner on accept
//! server → client   sling7 hit entry                          ; get answers
//! server → client   sling7 miss
//! server → client   sling7 entries <watermark:u64> <n:u64> entry*   ; sync answer
//! server → client   sling7 error <message:string>
//! entry  := budget:u64 slack:u64 text:string blob npreds:u64 (name:string fp:u64)* gen:u64
//! blob   := "-" | "x" hex*                                    ; "-" = cached "no" verdict
//! ```
//!
//! Entries are namespaced by the *type-environment* fingerprint and
//! validated per predicate: every entry carries the `(predicate,
//! fingerprint)` pairs of its direct mentions (the v2 snapshot key
//! material, [`sling_checker::EnvProfile::pred_fingerprints`]), and the
//! *client* re-runs the snapshot loader's transitive closure check
//! before trusting a foreign verdict. Engines with partially divergent
//! predicate libraries therefore share exactly the entries whose
//! closures agree — the same rule snapshot loading applies.
//!
//! # Failure semantics
//!
//! A dead or slow cache server must never fail or stall an analysis:
//!
//! * `fetch` uses a non-blocking connection claim — a round trip
//!   already in flight means concurrent workers degrade instantly
//!   rather than queue behind it — and bounded socket timeouts;
//! * any transport error tears the connection down and starts a
//!   reconnect backoff (the shared [`crate::backoff::retry_delay`]
//!   schedule), during which every fetch degrades instantly;
//! * publishes ride a bounded queue drained by a flusher thread;
//!   under backpressure or a down server entries are *dropped*, never
//!   blocked on — the tier is an accelerator, not a store of record;
//! * a periodic anti-entropy thread pulls entries newer than the last
//!   sync watermark and folds them in through the newest-generation-wins
//!   merge, so entries computed by sibling engines arrive even when
//!   this engine never misses on them.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sling_checker::remote::{RemoteCache, RemoteHit, RemoteLookup, RemotePublish, RemoteQuery};
use sling_checker::{remote, CheckCache, EnvProfile, RemoteEntry};

use crate::backoff::{jitter_seed, retry_delay};
use crate::wire::{WireError, WireReader, WireWriter};

/// Bound on the write-behind queue; publishes beyond it are dropped
/// (and counted) rather than blocking the hot path.
const QUEUE_LIMIT: usize = 4096;
/// Entries per `put` frame the flusher uploads at a time.
const FLUSH_BATCH: usize = 256;
/// Budget for establishing a connection to the cache server.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(1000);
/// Budget for any single socket read or write.
const IO_TIMEOUT: Duration = Duration::from_millis(1000);
/// Default period of the anti-entropy sync thread.
pub const DEFAULT_SYNC_INTERVAL: Duration = Duration::from_secs(30);

/// A request to the cache server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheRequest {
    /// Look up one entry by scope and canonical text.
    Get {
        /// Type-environment fingerprint namespacing the store.
        types_tag: u64,
        /// Search-node budget of the query scope.
        node_budget: u64,
        /// Unfolding slack of the query scope.
        fuel_slack: u32,
        /// Canonical query text.
        text: String,
    },
    /// Upload a batch of freshly computed entries (write-behind). The
    /// server stamps arrival generations; entry `generation` fields are
    /// ignored.
    Put {
        /// Type-environment fingerprint namespacing the store.
        types_tag: u64,
        /// The entries.
        entries: Vec<RemoteEntry>,
    },
    /// Pull entries with a generation strictly above `since`
    /// (anti-entropy).
    Sync {
        /// Type-environment fingerprint namespacing the store.
        types_tag: u64,
        /// The client's last sync watermark.
        since: u64,
    },
}

impl CacheRequest {
    /// Encodes the request as one frame line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            CacheRequest::Get {
                types_tag,
                node_budget,
                fuel_slack,
                text,
            } => {
                let mut w = WireWriter::frame("get");
                w.u64(*types_tag);
                w.u64(*node_budget);
                w.u64(u64::from(*fuel_slack));
                w.text(text);
                w.finish()
            }
            CacheRequest::Put { types_tag, entries } => {
                let mut w = WireWriter::frame("put");
                w.u64(*types_tag);
                w.u64(entries.len() as u64);
                for entry in entries {
                    write_entry(&mut w, entry);
                }
                w.finish()
            }
            CacheRequest::Sync { types_tag, since } => {
                let mut w = WireWriter::frame("sync");
                w.u64(*types_tag);
                w.u64(*since);
                w.finish()
            }
        }
    }

    /// Decodes one frame line.
    pub fn decode(line: &str) -> Result<CacheRequest, WireError> {
        let (kind, mut r) = WireReader::frame(line)?;
        let request = match kind {
            "get" => CacheRequest::Get {
                types_tag: r.u64()?,
                node_budget: r.u64()?,
                fuel_slack: read_u32(&mut r)?,
                text: r.text()?,
            },
            "put" => {
                let types_tag = r.u64()?;
                let n = r.u64()?;
                let mut entries = Vec::with_capacity((n as usize).min(1 << 16));
                for _ in 0..n {
                    entries.push(read_entry(&mut r)?);
                }
                CacheRequest::Put { types_tag, entries }
            }
            "sync" => CacheRequest::Sync {
                types_tag: r.u64()?,
                since: r.u64()?,
            },
            other => {
                return Err(WireError::Syntax(format!(
                    "unknown cache request kind {other:?}"
                )))
            }
        };
        r.finish()?;
        Ok(request)
    }
}

/// A cache-server answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheResponse {
    /// Banner sent on accept, before any request.
    Hello {
        /// Entries resident on the server (all namespaces).
        entries: u64,
    },
    /// `get` answer: the entry (key fields echoed back).
    Hit(RemoteEntry),
    /// `get` answer: nothing stored for that key.
    Miss,
    /// `sync` answer: entries newer than the requested watermark, plus
    /// the server's current watermark for the next round.
    Entries {
        /// Highest generation in the namespace after this batch.
        watermark: u64,
        /// The entries.
        entries: Vec<RemoteEntry>,
    },
    /// The server could not serve the request.
    Error {
        /// Operator-facing reason.
        message: String,
    },
}

impl CacheResponse {
    /// Encodes the response as one frame line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            CacheResponse::Hello { entries } => {
                let mut w = WireWriter::frame("cachehello");
                w.u64(*entries);
                w.finish()
            }
            CacheResponse::Hit(entry) => {
                let mut w = WireWriter::frame("hit");
                write_entry(&mut w, entry);
                w.finish()
            }
            CacheResponse::Miss => WireWriter::frame("miss").finish(),
            CacheResponse::Entries { watermark, entries } => {
                let mut w = WireWriter::frame("entries");
                w.u64(*watermark);
                w.u64(entries.len() as u64);
                for entry in entries {
                    write_entry(&mut w, entry);
                }
                w.finish()
            }
            CacheResponse::Error { message } => {
                let mut w = WireWriter::frame("error");
                w.text(message);
                w.finish()
            }
        }
    }

    /// Decodes one frame line.
    pub fn decode(line: &str) -> Result<CacheResponse, WireError> {
        let (kind, mut r) = WireReader::frame(line)?;
        let response = match kind {
            "cachehello" => CacheResponse::Hello { entries: r.u64()? },
            "hit" => CacheResponse::Hit(read_entry(&mut r)?),
            "miss" => CacheResponse::Miss,
            "entries" => {
                let watermark = r.u64()?;
                let n = r.u64()?;
                let mut entries = Vec::with_capacity((n as usize).min(1 << 16));
                for _ in 0..n {
                    entries.push(read_entry(&mut r)?);
                }
                CacheResponse::Entries { watermark, entries }
            }
            "error" => CacheResponse::Error { message: r.text()? },
            other => {
                return Err(WireError::Syntax(format!(
                    "unknown cache response kind {other:?}"
                )))
            }
        };
        r.finish()?;
        Ok(response)
    }
}

fn read_u32(r: &mut WireReader<'_>) -> Result<u32, WireError> {
    u32::try_from(r.u64()?).map_err(|_| WireError::Syntax("u32 payload out of range".into()))
}

fn write_entry(w: &mut WireWriter, entry: &RemoteEntry) {
    w.u64(entry.node_budget);
    w.u64(u64::from(entry.fuel_slack));
    w.text(&entry.text);
    match &entry.value {
        None => w.atom("-"),
        Some(blob) => {
            let mut token = String::with_capacity(1 + 2 * blob.len());
            token.push('x');
            for byte in blob {
                token.push(char::from_digit(u32::from(byte >> 4), 16).expect("hex digit"));
                token.push(char::from_digit(u32::from(byte & 0xf), 16).expect("hex digit"));
            }
            w.atom(&token);
        }
    }
    w.u64(entry.preds.len() as u64);
    for (name, fingerprint) in &entry.preds {
        w.text(name);
        w.u64(*fingerprint);
    }
    w.u64(entry.generation);
}

fn read_entry(r: &mut WireReader<'_>) -> Result<RemoteEntry, WireError> {
    let node_budget = r.u64()?;
    let fuel_slack = read_u32(r)?;
    let text = r.text()?;
    let value = match r.atom()? {
        "-" => None,
        token => {
            let hex = token
                .strip_prefix('x')
                .ok_or_else(|| WireError::Syntax(format!("bad verdict blob {token:?}")))?;
            if hex.len() % 2 != 0 {
                return Err(WireError::Syntax("odd-length verdict blob".into()));
            }
            let mut blob = Vec::with_capacity(hex.len() / 2);
            let bytes = hex.as_bytes();
            for pair in bytes.chunks_exact(2) {
                let hi = (pair[0] as char).to_digit(16);
                let lo = (pair[1] as char).to_digit(16);
                match (hi, lo) {
                    (Some(hi), Some(lo)) => blob.push(((hi << 4) | lo) as u8),
                    _ => return Err(WireError::Syntax("bad hex in verdict blob".into())),
                }
            }
            Some(blob)
        }
    };
    let npreds = r.u64()?;
    let mut preds = Vec::with_capacity((npreds as usize).min(1 << 16));
    for _ in 0..npreds {
        let name = r.text()?;
        let fingerprint = r.u64()?;
        preds.push((name, fingerprint));
    }
    let generation = r.u64()?;
    Ok(RemoteEntry {
        node_budget,
        fuel_slack,
        text,
        value,
        preds,
        generation,
    })
}

/// Counters of one [`RemoteCacheClient`] (transport-level; the
/// per-query hit/miss/degraded counters live in
/// [`crate::CacheStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteClientStats {
    /// Entries uploaded to the server by the write-behind flusher.
    pub published: u64,
    /// Publishes dropped under backpressure or a degraded tier.
    pub dropped: u64,
    /// Entries absorbed from anti-entropy syncs.
    pub synced: u64,
}

/// One connection to the cache server (banner already consumed).
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> io::Result<Conn> {
        let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "cache-server address resolved empty",
            )
        })?;
        let stream = TcpStream::connect_timeout(&sockaddr, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let mut conn = Conn {
            reader: BufReader::new(stream),
        };
        match conn.read_response()? {
            CacheResponse::Hello { .. } => Ok(conn),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a cachehello banner, got {other:?}"),
            )),
        }
    }

    fn send(&mut self, mut line: String) -> io::Result<()> {
        line.push('\n');
        let mut stream = self.reader.get_ref();
        stream.write_all(line.as_bytes())
    }

    fn read_response(&mut self) -> io::Result<CacheResponse> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.trim().is_empty() {
                continue;
            }
            return CacheResponse::decode(trimmed)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
        }
    }

    fn round_trip(&mut self, request: &CacheRequest) -> io::Result<CacheResponse> {
        self.send(request.encode())?;
        self.read_response()
    }
}

/// The fetch connection: ready, or down with a reconnect backoff.
#[derive(Debug)]
enum FetchState {
    Ready(Box<Conn>),
    Down {
        /// Consecutive failed reconnects (drives the backoff schedule;
        /// grows saturating, and the schedule is total at the cap).
        attempt: u32,
        /// Do not reconnect before this instant; `None` retries
        /// immediately (initial state).
        retry_at: Option<Instant>,
    },
}

#[derive(Debug, Default)]
struct PublishQueue {
    entries: VecDeque<RemoteEntry>,
    /// A batch is on the wire (kept out of `entries` so the queue
    /// bound stays honest); `flush` waits for both to clear.
    inflight: bool,
}

#[derive(Debug)]
struct Inner {
    addr: String,
    profile: EnvProfile,
    cache: Arc<CheckCache>,
    fingerprints: BTreeMap<String, u64>,
    fetch: Mutex<FetchState>,
    queue: Mutex<PublishQueue>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    sync_interval: Duration,
    sync_watermark: AtomicU64,
    seed: u64,
    published: AtomicU64,
    dropped: AtomicU64,
    synced: AtomicU64,
}

/// The engine side of the cache tier: a [`RemoteCache`] implementation
/// speaking the `get`/`put`/`sync` productions, with write-behind
/// upload and periodic anti-entropy. Construction never touches the
/// network (connections are lazy), so a dead server at build time
/// costs nothing until the first fetch — which degrades instantly and
/// starts the reconnect backoff.
#[derive(Debug)]
pub struct RemoteCacheClient {
    inner: Arc<Inner>,
    flusher: Option<std::thread::JoinHandle<()>>,
    syncer: Option<std::thread::JoinHandle<()>>,
}

impl RemoteCacheClient {
    /// Creates a client for the cache server at `addr`, publishing into
    /// and absorbing from `cache` under `profile`'s environment.
    /// `sync_interval` paces the anti-entropy thread
    /// ([`DEFAULT_SYNC_INTERVAL`] unless overridden; sub-100ms
    /// intervals are honored but mostly useful in tests).
    pub fn new(
        addr: String,
        profile: EnvProfile,
        cache: Arc<CheckCache>,
        sync_interval: Duration,
    ) -> RemoteCacheClient {
        let fingerprints = profile.pred_fingerprints().into_iter().collect();
        let inner = Arc::new(Inner {
            addr,
            profile,
            cache,
            fingerprints,
            fetch: Mutex::new(FetchState::Down {
                attempt: 0,
                retry_at: None,
            }),
            queue: Mutex::new(PublishQueue::default()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            sync_interval,
            sync_watermark: AtomicU64::new(0),
            seed: jitter_seed(),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            synced: AtomicU64::new(0),
        });
        let flusher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("sling-cache-flush".into())
                .spawn(move || flusher_loop(&inner))
                .ok()
        };
        let syncer = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("sling-cache-sync".into())
                .spawn(move || syncer_loop(&inner))
                .ok()
        };
        RemoteCacheClient {
            inner,
            flusher,
            syncer,
        }
    }

    /// The configured cache-server address.
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// Whether the fetch path is currently degraded (down or in
    /// reconnect backoff). A round trip in flight reports `false`.
    pub fn degraded(&self) -> bool {
        match self.inner.fetch.try_lock() {
            Ok(state) => matches!(*state, FetchState::Down { .. }),
            Err(_) => false,
        }
    }

    /// Transport-level counters.
    pub fn stats(&self) -> RemoteClientStats {
        RemoteClientStats {
            published: self.inner.published.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
            synced: self.inner.synced.load(Ordering::Relaxed),
        }
    }

    /// Blocks until the write-behind queue has fully drained (or
    /// `timeout` elapses); returns whether it drained. Entries dropped
    /// by a degraded flusher count as drained — this waits for the
    /// queue to settle, not for delivery confirmation.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut queue = self.inner.queue.lock().expect("publish queue lock");
        loop {
            if queue.entries.is_empty() && !queue.inflight {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .inner
                .queue_cv
                .wait_timeout(queue, deadline - now)
                .expect("publish queue lock");
            queue = guard;
        }
    }

    /// Runs one anti-entropy round right now (in addition to the
    /// periodic thread): pulls entries above the current watermark and
    /// merges them. Returns the number of entries absorbed, or `None`
    /// when the server was unreachable.
    pub fn sync_now(&self) -> Option<u64> {
        sync_once(&self.inner).ok()
    }
}

impl RemoteCache for RemoteCacheClient {
    fn fetch(&self, query: &RemoteQuery<'_>) -> RemoteLookup {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Relaxed) {
            return RemoteLookup::Degraded;
        }
        // Non-blocking claim: a round trip already in flight means
        // concurrent workers degrade instantly instead of queueing
        // behind a socket (bounded stall, never a pile-up).
        let Ok(mut state) = inner.fetch.try_lock() else {
            return RemoteLookup::Degraded;
        };
        let conn = match &mut *state {
            FetchState::Ready(conn) => conn,
            FetchState::Down { attempt, retry_at } => {
                if let Some(at) = retry_at {
                    if Instant::now() < *at {
                        return RemoteLookup::Degraded;
                    }
                }
                match Conn::open(&inner.addr) {
                    Ok(conn) => {
                        *state = FetchState::Ready(Box::new(conn));
                        match &mut *state {
                            FetchState::Ready(conn) => conn,
                            FetchState::Down { .. } => unreachable!("just set Ready"),
                        }
                    }
                    Err(_) => {
                        let next = attempt.saturating_add(1);
                        *state = FetchState::Down {
                            attempt: next,
                            retry_at: Some(Instant::now() + retry_delay(next, inner.seed)),
                        };
                        return RemoteLookup::Degraded;
                    }
                }
            }
        };
        let request = CacheRequest::Get {
            types_tag: inner.profile.types_tag(),
            node_budget: query.node_budget,
            fuel_slack: query.fuel_slack,
            text: query.text.to_string(),
        };
        match conn.round_trip(&request) {
            Ok(CacheResponse::Hit(entry)) => {
                // The v2 per-predicate fingerprint gate: trust the
                // verdict only when the entry's recorded closure is
                // unchanged under this engine's profile.
                let names: Vec<String> = entry.preds.iter().map(|(name, _)| name.clone()).collect();
                if inner.profile.closure_matches(&entry.preds, &names) {
                    RemoteLookup::Hit(RemoteHit {
                        value: entry.value,
                        preds: names,
                        generation: entry.generation,
                    })
                } else {
                    RemoteLookup::Miss
                }
            }
            Ok(CacheResponse::Miss) => RemoteLookup::Miss,
            Ok(_) | Err(_) => {
                // Protocol violations and transport errors tear the
                // connection down alike; the next fetch reconnects
                // after the backoff.
                *state = FetchState::Down {
                    attempt: 0,
                    retry_at: Some(Instant::now() + retry_delay(0, inner.seed)),
                };
                RemoteLookup::Degraded
            }
        }
    }

    fn publish(&self, entry: RemotePublish) {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Attach the per-predicate fingerprints the entry was computed
        // under; a mention outside the profile cannot be expressed (in
        // practice none is) and is dropped.
        let Some(preds) = entry
            .preds
            .iter()
            .map(|name| inner.fingerprints.get(name).map(|fp| (name.clone(), *fp)))
            .collect::<Option<Vec<(String, u64)>>>()
        else {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let entry = RemoteEntry {
            node_budget: entry.node_budget,
            fuel_slack: entry.fuel_slack,
            text: entry.text,
            value: entry.value,
            preds,
            generation: 0, // the server stamps arrivals
        };
        let mut queue = inner.queue.lock().expect("publish queue lock");
        if queue.entries.len() >= QUEUE_LIMIT {
            drop(queue);
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        queue.entries.push_back(entry);
        drop(queue);
        inner.queue_cv.notify_all();
    }
}

impl Drop for RemoteCacheClient {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.queue_cv.notify_all();
        if let Some(handle) = self.flusher.take() {
            handle.join().ok();
        }
        if let Some(handle) = self.syncer.take() {
            handle.join().ok();
        }
    }
}

/// The write-behind flusher: drains the queue in batches onto its own
/// connection. Failures drop the batch (best-effort tier) and back
/// off; shutdown drains whatever is already queued on a live
/// connection, then exits.
fn flusher_loop(inner: &Inner) {
    let mut conn: Option<Conn> = None;
    let mut attempt: u32 = 0;
    loop {
        let batch: Vec<RemoteEntry> = {
            let mut queue = inner.queue.lock().expect("publish queue lock");
            while queue.entries.is_empty() {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let (guard, _) = inner
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("publish queue lock");
                queue = guard;
            }
            let take = queue.entries.len().min(FLUSH_BATCH);
            queue.inflight = true;
            queue.entries.drain(..take).collect()
        };
        let sent = flush_batch(inner, &mut conn, &batch);
        {
            let mut queue = inner.queue.lock().expect("publish queue lock");
            queue.inflight = false;
        }
        inner.queue_cv.notify_all();
        match sent {
            Ok(()) => {
                attempt = 0;
                inner
                    .published
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                conn = None;
                inner
                    .dropped
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                attempt = attempt.saturating_add(1);
                // Back off, but stay responsive to shutdown.
                let delay = retry_delay(attempt, inner.seed ^ 1);
                let queue = inner.queue.lock().expect("publish queue lock");
                let _ = inner.queue_cv.wait_timeout(queue, delay);
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
        }
    }
}

fn flush_batch(inner: &Inner, conn: &mut Option<Conn>, batch: &[RemoteEntry]) -> io::Result<()> {
    if conn.is_none() {
        *conn = Some(Conn::open(&inner.addr)?);
    }
    let live = conn.as_mut().expect("connection just opened");
    let request = CacheRequest::Put {
        types_tag: inner.profile.types_tag(),
        entries: batch.to_vec(),
    };
    // Writes are fire-and-forget (the server answers nothing for
    // `put`); delivery failures surface as errors on the *next* write,
    // which drops that batch — acceptable for an accelerator tier.
    live.send(request.encode())
}

/// The anti-entropy loop: every `sync_interval`, pull entries above
/// the watermark and fold them in. Sleeps in short steps so shutdown
/// is prompt even with long intervals.
fn syncer_loop(inner: &Inner) {
    let step = Duration::from_millis(50);
    loop {
        let mut slept = Duration::ZERO;
        while slept < inner.sync_interval {
            if inner.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let nap = step.min(inner.sync_interval - slept);
            std::thread::sleep(nap);
            slept += nap;
        }
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let _ = sync_once(inner);
    }
}

/// One anti-entropy round on a transient connection. Returns entries
/// absorbed; errors mean the server was unreachable (the round is
/// simply skipped — the next one retries).
fn sync_once(inner: &Inner) -> io::Result<u64> {
    let mut conn = Conn::open(&inner.addr)?;
    let since = inner.sync_watermark.load(Ordering::Relaxed);
    let request = CacheRequest::Sync {
        types_tag: inner.profile.types_tag(),
        since,
    };
    match conn.round_trip(&request)? {
        CacheResponse::Entries { watermark, entries } => {
            let merged = remote::absorb_remote(&inner.cache, &inner.profile, &entries);
            inner.synced.fetch_add(merged, Ordering::Relaxed);
            inner.sync_watermark.fetch_max(watermark, Ordering::Relaxed);
            Ok(merged)
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected an entries frame, got {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(text: &str, value: Option<Vec<u8>>, generation: u64) -> RemoteEntry {
        RemoteEntry {
            node_budget: 200_000,
            fuel_slack: 24,
            text: text.to_string(),
            value,
            preds: vec![("dll".into(), 0xfeed), ("sll".into(), 7)],
            generation,
        }
    }

    #[test]
    fn cache_requests_round_trip() {
        let frames = [
            CacheRequest::Get {
                types_tag: 0xabc,
                node_budget: 200_000,
                fuel_slack: 24,
                text: "F ⊩ dll(x, u1, u2, \"tmp\")".into(),
            },
            CacheRequest::Put {
                types_tag: 1,
                entries: vec![
                    entry("a", Some(vec![0, 1, 0xfe, 0xff]), 0),
                    entry("b", None, 0),
                ],
            },
            CacheRequest::Sync {
                types_tag: u64::MAX,
                since: 42,
            },
        ];
        for frame in frames {
            let line = frame.encode();
            assert_eq!(CacheRequest::decode(&line).unwrap(), frame, "{line}");
        }
    }

    #[test]
    fn cache_responses_round_trip() {
        let frames = [
            CacheResponse::Hello { entries: 9000 },
            CacheResponse::Hit(entry("shared", Some(vec![0xde, 0xad]), 17)),
            CacheResponse::Miss,
            CacheResponse::Entries {
                watermark: 99,
                entries: vec![entry("x", None, 98), entry("y", Some(vec![]), 99)],
            },
            CacheResponse::Error {
                message: "namespace \"wedged\"\nrestart".into(),
            },
        ];
        for frame in frames {
            let line = frame.encode();
            assert_eq!(CacheResponse::decode(&line).unwrap(), frame, "{line}");
        }
    }

    #[test]
    fn previous_version_frames_are_rejected_as_version_errors() {
        for line in [
            "sling6 get 1 2 3 \"t\"",
            "sling6 cachehello 0",
            "sling5 sync 1 0",
        ] {
            match CacheRequest::decode(line) {
                Err(WireError::Version(tag)) => assert!(tag.starts_with("sling")),
                other => panic!("expected a version error for {line:?}, got {other:?}"),
            }
            assert!(matches!(
                CacheResponse::decode(line),
                Err(WireError::Version(_))
            ));
        }
    }

    #[test]
    fn mangled_blobs_and_kinds_are_syntax_errors() {
        let bad = [
            // Unknown kinds in both directions.
            format!("{} fetch 1 2 3 \"t\"", crate::wire::WIRE_VERSION),
            // Odd-length and non-hex blobs.
            format!("{} hit 1 2 \"t\" xabc 0 5", crate::wire::WIRE_VERSION),
            format!("{} hit 1 2 \"t\" xzz 0 5", crate::wire::WIRE_VERSION),
            // A blob token without the x prefix.
            format!("{} hit 1 2 \"t\" ab12 0 5", crate::wire::WIRE_VERSION),
            // u32 overflow on fuel_slack.
            format!("{} get 1 2 5000000000 \"t\"", crate::wire::WIRE_VERSION),
        ];
        for line in &bad {
            let request = CacheRequest::decode(line);
            let response = CacheResponse::decode(line);
            assert!(
                matches!(request, Err(WireError::Syntax(_)))
                    || matches!(response, Err(WireError::Syntax(_))),
                "expected a syntax error for {line:?}: {request:?} / {response:?}"
            );
        }
    }

    #[test]
    fn degraded_client_fetches_instantly_and_drops_publishes() {
        // No server listening: the first fetch fails fast and starts
        // the backoff; during the backoff window fetches return
        // Degraded without touching the network.
        let (types, preds) = (sling_logic::TypeEnv::new(), sling_logic::PredEnv::new());
        let profile = EnvProfile::new(&types, &preds);
        let cache = Arc::new(CheckCache::new());
        let client = RemoteCacheClient::new(
            "127.0.0.1:1".into(), // reserved port: connection refused
            profile,
            cache,
            Duration::from_secs(3600),
        );
        let query = RemoteQuery {
            node_budget: 1,
            fuel_slack: 1,
            text: "q",
        };
        assert_eq!(client.fetch(&query), RemoteLookup::Degraded);
        assert!(client.degraded());
        let started = Instant::now();
        assert_eq!(client.fetch(&query), RemoteLookup::Degraded);
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "backoff window must answer instantly"
        );
        client.publish(RemotePublish {
            node_budget: 1,
            fuel_slack: 1,
            text: "q".into(),
            value: None,
            preds: Vec::new(),
        });
        assert!(client.flush(Duration::from_secs(5)), "queue must settle");
    }
}
