//! # SLING — dynamic inference of separation-logic invariants
//!
//! A from-scratch Rust reproduction of *"SLING: Using Dynamic Analysis to
//! Infer Program Invariants in Separation Logic"* (Le, Zheng, Nguyen —
//! PLDI 2019).
//!
//! Given a MiniC program, a target function, a set of inductive heap
//! predicate definitions, and test inputs, SLING:
//!
//! 1. **collects stack-heap models** at breakpoints (entry, labels, loop
//!    heads, returns) by running the program under an embedded debugger
//!    ([`collect_models`]);
//! 2. **partitions** each heap into per-variable sub-heaps with their
//!    boundary variables ([`split_heap`], §4.1);
//! 3. **searches** the predicate set for atomic formulae every sub-heap
//!    satisfies, via a symbolic-heap model checker that returns residual
//!    heaps and existential instantiations ([`infer_atom`], §4.2);
//! 4. conjoins the per-variable formulae with `∗`, then infers **pure
//!    equalities** over stack variables, existentials, `nil` and `res`
//!    ([`infer_pure`], §4.3);
//! 5. **validates** entry/exit pairs with the frame rule
//!    ([`validate_frame`], §4.4).
//!
//! The one-call driver is [`analyze`].
//!
//! # Example
//!
//! Infer the paper's `concat` specification (§2):
//!
//! ```
//! use sling::{analyze, InputBuilder, SlingConfig};
//! use sling_lang::{check_program, parse_program, Location, RtHeap};
//! use sling_logic::{parse_predicates, PredEnv, Symbol};
//! use sling_models::Val;
//!
//! let program = parse_program(
//!     "struct Node { next: Node*; prev: Node*; }
//!      fn concat(x: Node*, y: Node*) -> Node* {
//!          if (x == null) { return y; }
//!          var tmp: Node* = concat(x->next, y);
//!          x->next = tmp;
//!          if (tmp != null) { tmp->prev = x; }
//!          return x;
//!      }",
//! )?;
//! check_program(&program)?;
//! let types = program.type_env();
//! let mut preds = PredEnv::new();
//! for d in parse_predicates(
//!     "pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
//!          emp & hd == nx & pr == tl
//!        | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx);",
//! )? {
//!     preds.define(d)?;
//! }
//!
//! // One input: x = 2-node dll, y = 1-node dll.
//! let inputs: Vec<InputBuilder> = vec![Box::new(|heap: &mut RtHeap| {
//!     let node = Symbol::intern("Node");
//!     let b = heap.alloc(node, vec![Val::Nil, Val::Nil]);
//!     let a = heap.alloc(node, vec![Val::Addr(b), Val::Nil]);
//!     heap.live_mut(b).unwrap().fields[1] = Val::Addr(a);
//!     let y = heap.alloc(node, vec![Val::Nil, Val::Nil]);
//!     vec![Val::Addr(a), Val::Addr(y)]
//! })];
//!
//! let outcome = analyze(
//!     &program, Symbol::intern("concat"), &inputs, &types, &preds,
//!     &SlingConfig::default(),
//! );
//! let entry = outcome.at(Location::Entry).expect("entry reached");
//! assert!(!entry.invariants.is_empty());
//! println!("precondition: {}", entry.invariants[0].formula);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod collect;
mod infer;
mod pipeline;
mod pure;
mod split;
mod validate;

pub use collect::{collect_models, Collected, InputBuilder, RunTrace};
pub use infer::{infer_atom, var_types, AtomResult, InferConfig, VarTy};
pub use pipeline::{
    analyze, infer_at_location, AnalysisOutcome, Invariant, InvariantStats, LocationReport,
    SlingConfig,
};
pub use pure::infer_pure;
pub use split::{split_heap, BoundaryItem, Split};
pub use validate::validate_frame;
