//! # SLING — dynamic inference of separation-logic invariants
//!
//! A from-scratch Rust reproduction of *"SLING: Using Dynamic Analysis to
//! Infer Program Invariants in Separation Logic"* (Le, Zheng, Nguyen —
//! PLDI 2019).
//!
//! Given a MiniC program, inductive heap predicate definitions, and test
//! inputs, SLING:
//!
//! 1. **collects stack-heap models** at breakpoints (entry, labels, loop
//!    heads, returns) by running the program under an embedded debugger
//!    ([`collect_models`]);
//! 2. **partitions** each heap into per-variable sub-heaps with their
//!    boundary variables ([`split_heap`], §4.1);
//! 3. **searches** the predicate set for atomic formulae every sub-heap
//!    satisfies, via a symbolic-heap model checker that returns residual
//!    heaps and existential instantiations ([`infer_atom`], §4.2);
//! 4. conjoins the per-variable formulae with `∗`, then infers **pure
//!    equalities** over stack variables, existentials, `nil` and `res`
//!    ([`infer_pure`], §4.3);
//! 5. **validates** entry/exit pairs with the frame rule
//!    ([`validate_frame`], §4.4);
//! 6. optionally **grades** every reported invariant with a static
//!    verification post-pass — bounded-unfolding entailment checking
//!    against the sibling invariants, with refutation witnesses driving
//!    counterexample-guided re-collection rounds
//!    ([`EngineBuilder::verification`], [`InvariantGrade`]).
//!
//! # The engine API
//!
//! The public surface is a long-lived [`Engine`], built once per program
//! and predicate library and reused across many analyses. The engine
//! owns the checked program, its type environment, and the predicate
//! environment, and memoizes model-checker verdicts in a shared,
//! sharded entailment cache ([`CacheStats`] reports its effectiveness
//! per request), so analyzing several functions — or the same structure
//! shape at several locations — does not repeat work.
//!
//! * [`Engine::builder`] → [`EngineBuilder`]: supply the program
//!   (`program` / `program_source`), the predicates (`predicates` /
//!   `predicates_source` / `pred_env`), optionally a [`SlingConfig`], a
//!   shared cache, and a `parallelism` worker count, then `build()`.
//! * [`AnalysisRequest`]: a target function, its test inputs
//!   (declarative [`InputSpec`]s, or custom closures as an escape
//!   hatch), and an optional per-request config override. Requests are
//!   `Send + Sync + Clone + Debug`.
//! * [`Engine::analyze`] serves one request as a [`Report`] — with its
//!   per-location inference fanned out over the engine's worker pool,
//!   so even a single-target request uses every core;
//!   [`Engine::analyze_all`] serves a batch as a [`BatchReport`] —
//!   fanned out over a scoped thread pool, assembled in request order —
//!   and [`Engine::analyze_all_with`] additionally streams each report
//!   to a [`ReportSink`] as it completes.
//! * [`EngineBuilder::cache_path`] makes the entailment cache
//!   persistent: the engine warm-starts from a snapshot saved by an
//!   earlier process ([`Engine::save_cache`]), and
//!   [`CacheStats::warm_hits`] reports what the warm start paid for.
//!   See [`sling_checker::persist`] for the format and its safety
//!   guarantees.
//!
//! # Example
//!
//! Infer the paper's `concat` specification (§2):
//!
//! ```
//! use sling::{AnalysisRequest, Engine, InputSpec, ListLayout, ValueSpec};
//! use sling_lang::Location;
//! use sling_logic::Symbol;
//!
//! let engine = Engine::builder()
//!     .program_source(
//!         "struct Node { next: Node*; prev: Node*; }
//!          fn concat(x: Node*, y: Node*) -> Node* {
//!              if (x == null) { return y; }
//!              var tmp: Node* = concat(x->next, y);
//!              x->next = tmp;
//!              if (tmp != null) { tmp->prev = x; }
//!              return x;
//!          }",
//!     )?
//!     .predicates_source(
//!         "pred dll(hd: Node*, pr: Node*, tl: Node*, nx: Node*) :=
//!              emp & hd == nx & pr == tl
//!            | exists u. hd -> Node{next: u, prev: pr} * dll(u, hd, tl, nx);",
//!     )?
//!     .build()?;
//!
//! // One input: x = 2-node dll, y = 1-node dll — declaratively.
//! let layout = ListLayout {
//!     ty: Symbol::intern("Node"),
//!     nfields: 2,
//!     next: 0,
//!     prev: Some(1),
//!     data: None,
//! };
//! let input = InputSpec::seeded(7)
//!     .arg(ValueSpec::dll(layout, 2))
//!     .arg(ValueSpec::dll(layout, 1));
//!
//! let report = engine.analyze(&AnalysisRequest::new("concat").input(input))?;
//! let entry = report.at(Location::Entry).expect("entry reached");
//! assert!(!entry.invariants.is_empty());
//! println!("precondition: {}", entry.invariants[0].formula);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The same engine serves further requests — other inputs, other target
//! functions of the program — with the entailment cache already warm;
//! see [`Engine::analyze_all`] for batches (parallel by default) and
//! [`Engine::analyze_all_with`] for streaming consumption.

#![warn(missing_docs)]

pub mod backoff;
mod collect;
pub mod engine;
mod fanout;
mod infer;
mod pipeline;
mod pure;
pub mod remote;
pub mod report;
pub mod request;
pub mod spec;
mod split;
mod validate;
pub mod wire;

pub use collect::{collect_models, Collected, Executor, RunTrace};
pub use engine::{
    default_parallelism, AnalyzeError, BuildError, DiscardReports, Engine, EngineBuilder,
    ReportSink,
};
pub use infer::{infer_atom, var_types, AtomResult, InferConfig, VarTy};
pub use pipeline::{SlingConfig, VerifySettings};
pub use pure::infer_pure;
pub use report::{
    BatchReport, Invariant, InvariantGrade, InvariantStats, LocationAnalysis, Report, RunMetrics,
};
pub use request::{AnalysisRequest, InputBuilder, InputSource};
pub use sling_analysis::{
    analyze_program, codes as lint_codes, AnalysisSettings, Diagnostic, Diagnostics,
    ProgramAnalysis, Severity,
};
pub use spec::{ExactCell, ExactVal, InputSpec, ValueSpec};
pub use split::{split_heap, BoundaryItem, Split};
pub use validate::validate_frame;
pub use wire::WireError;

// Re-exported so spec construction, cache persistence, and verification
// need no direct `sling_lang` / `sling_checker` import.
pub use remote::{CacheRequest, CacheResponse, RemoteCacheClient, RemoteClientStats};
pub use sling_checker::{persist, CacheStats, CheckCache, EnvProfile, MergeStats, PersistError};
pub use sling_checker::{Obligation, Prover, UnfoldProver, Verdict, VerifyConfig};
pub use sling_checker::{RemoteCache, RemoteEntry, RemoteHit, RemoteLookup, RemoteQuery};
pub use sling_lang::{DataOrder, ListLayout, TreeKind, TreeLayout};
pub use sling_vm::{BytecodeVm, CompiledProgram, Compiler};
