//! Pure inference — the paper's `InferPure` (§4.3) — and formula
//! simplification.
//!
//! After the heap predicates are found, SLING searches for equality
//! constraints among stack variables, the formula's existential variables
//! (through their per-model instantiations), `nil`, and `res`. Two
//! entities are equal when their values agree in *every* model.
//!
//! Discovered equalities are used two ways, as in the §2.3 walkthrough:
//!
//! * entities that will not stay free in the final invariant —
//!   existentials, and locals that are about to be quantified at function
//!   exits — are *substituted away* by a preferred representative
//!   (`dll(x,u1,u2,tmp)` with `u2 = x` becomes `dll(x,u1,x,tmp)`;
//!   `sll(n) & n == res` becomes `sll(res)`);
//! * equalities among preferred (free) entities are conjoined as pure
//!   atoms (`res = x`).

use std::collections::{BTreeMap, BTreeSet};

use sling_checker::Instantiation;
use sling_logic::{Expr, PureAtom, Subst, SymHeap, Symbol};
use sling_models::{StackHeapModel, Val};

/// One trackable entity. The derived ordering encodes representative
/// preference: `nil`, then preferred stack variables, then other stack
/// variables, then existentials — each tier alphabetical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Entity {
    Nil,
    /// A stack variable allowed to stay free in the final invariant.
    Preferred(Symbol),
    /// A stack variable that will be existentially quantified (local at a
    /// function exit).
    Local(Symbol),
    /// An existential of the formula.
    Exist(Symbol),
}

impl Entity {
    fn expr(self) -> Expr {
        match self {
            Entity::Nil => Expr::Nil,
            Entity::Preferred(s) | Entity::Local(s) | Entity::Exist(s) => Expr::Var(s),
        }
    }
}

/// Infers pure equalities and simplifies `formula` accordingly.
///
/// `models` are the location's stack-heap models, `insts` the per-model
/// instantiations of `formula`'s existentials (same order), and `prefer`
/// the variables that may stay free (parameters and `res` at entries and
/// exits; every stack variable elsewhere).
pub fn infer_pure(
    formula: &SymHeap,
    models: &[StackHeapModel],
    insts: &[Instantiation],
    prefer: &BTreeSet<Symbol>,
) -> SymHeap {
    assert_eq!(models.len(), insts.len());
    if models.is_empty() {
        return formula.clone();
    }

    // Value vector per entity; an entity qualifies only if it has a value
    // in every model.
    let n = models.len();
    let mut vectors: Vec<(Entity, Vec<Val>)> = Vec::new();
    vectors.push((Entity::Nil, vec![Val::Nil; n]));
    for (w, _) in models[0].stack.iter() {
        if models.iter().all(|m| m.stack.get(w).is_some()) {
            let entity = if prefer.contains(&w) {
                Entity::Preferred(w)
            } else {
                Entity::Local(w)
            };
            vectors.push((
                entity,
                models.iter().map(|m| m.stack.get(w).unwrap()).collect(),
            ));
        }
    }
    for u in &formula.exists {
        if insts.iter().all(|i| i.get(*u).is_some()) {
            vectors.push((
                Entity::Exist(*u),
                insts.iter().map(|i| i.get(*u).unwrap()).collect(),
            ));
        }
    }

    // Group by value vector.
    let mut classes: BTreeMap<Vec<Val>, Vec<Entity>> = BTreeMap::new();
    for (e, vec) in vectors {
        classes.entry(vec).or_default().push(e);
    }

    let mut subst = Subst::new();
    let mut killed: Vec<Symbol> = Vec::new();
    let mut equalities: Vec<PureAtom> = Vec::new();
    for members in classes.values() {
        if members.len() < 2 {
            continue;
        }
        let mut sorted = members.clone();
        sorted.sort();
        let rep = sorted[0];
        let rep_expr = rep.expr();
        for other in &sorted[1..] {
            match other {
                // Entities that stay free: state the equality.
                Entity::Preferred(w) => {
                    equalities.push(PureAtom::Eq(Expr::Var(*w), rep_expr.clone()));
                }
                // Entities that get quantified: substitute them away.
                Entity::Local(w) | Entity::Exist(w) => {
                    subst.insert(*w, rep_expr.clone());
                    killed.push(*w);
                }
                Entity::Nil => unreachable!("nil sorts first"),
            }
        }
    }

    // Apply the substitution with *all* binders stripped: the map may
    // send existentials to other existentials of the same formula, so the
    // capture-avoiding substitution would otherwise rename the very
    // binders we are unifying into. With no binders there is nothing to
    // capture; the surviving existentials are re-bound afterwards.
    let mut out = formula.clone();
    let binders = std::mem::take(&mut out.exists);
    out = sling_logic::subst_symheap(&out, &subst);
    let remaining = out.free_vars();
    out.exists = binders
        .into_iter()
        .filter(|u| !killed.contains(u) && remaining.contains(u))
        .collect();
    // Conjoin new equalities, dropping duplicates and trivia.
    for eq in equalities {
        let trivial = matches!(&eq, PureAtom::Eq(a, b) if a == b);
        if !trivial && !out.pure.contains(&eq) {
            out.pure.push(eq);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_logic::parse_formula;
    use sling_models::{Heap, HeapCell, Loc, Stack};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn l(n: u64) -> Loc {
        Loc::new(n)
    }

    fn model(pairs: &[(&str, Val)]) -> StackHeapModel {
        let mut stack = Stack::new();
        for (name, v) in pairs {
            stack.bind(sym(name), *v);
        }
        let mut heap = Heap::new();
        // A token cell so heaps are non-trivial.
        heap.insert(l(99), HeapCell::new(sym("N"), vec![Val::Nil]));
        StackHeapModel::new(stack, heap)
    }

    fn prefer(names: &[&str]) -> BTreeSet<Symbol> {
        names.iter().map(|n| sym(n)).collect()
    }

    #[test]
    fn stack_stack_equality_found() {
        let f = parse_formula("sll(x)").unwrap();
        let models = vec![
            model(&[("x", Val::Addr(l(1))), ("res", Val::Addr(l(1)))]),
            model(&[("x", Val::Addr(l(2))), ("res", Val::Addr(l(2)))]),
        ];
        let insts = vec![Instantiation::new(), Instantiation::new()];
        let out = infer_pure(&f, &models, &insts, &prefer(&["x", "res"]));
        assert!(
            out.pure
                .contains(&PureAtom::Eq(Expr::var("x"), Expr::var("res")))
                || out
                    .pure
                    .contains(&PureAtom::Eq(Expr::var("res"), Expr::var("x"))),
            "res == x expected, got {out}"
        );
    }

    #[test]
    fn local_substituted_by_preferred() {
        // n is a local aliasing res: `sll(n)` should become `sll(res)`.
        let f = parse_formula("sll(n)").unwrap();
        let models = vec![model(&[("n", Val::Addr(l(1))), ("res", Val::Addr(l(1)))])];
        let out = infer_pure(&f, &models, &[Instantiation::new()], &prefer(&["res"]));
        assert_eq!(out.to_string(), "sll(res)");
    }

    #[test]
    fn existential_substituted_by_stack_var() {
        // u2 instantiates to x's value in every model → dll arg becomes x.
        let f = parse_formula("exists u1, u2. dll(x, u1, u2, tmp)").unwrap();
        let models = vec![model(&[("x", Val::Addr(l(1))), ("tmp", Val::Addr(l(2)))])];
        let mut i0 = Instantiation::new();
        i0.bind(sym("u1"), Val::Addr(l(7))); // unrelated value
        i0.bind(sym("u2"), Val::Addr(l(1))); // == x
        let out = infer_pure(&f, &models, &[i0], &prefer(&["x", "tmp"]));
        assert_eq!(out.exists, vec![sym("u1")]);
        assert!(out.to_string().contains("dll(x, u1, x, tmp)"), "{out}");
    }

    #[test]
    fn existential_substituted_by_nil() {
        let f = parse_formula("exists u1. dll(x, u1, x, tmp)").unwrap();
        let models = vec![model(&[("x", Val::Addr(l(1))), ("tmp", Val::Addr(l(2)))])];
        let mut i0 = Instantiation::new();
        i0.bind(sym("u1"), Val::Nil);
        let out = infer_pure(&f, &models, &[i0], &prefer(&["x", "tmp"]));
        assert!(out.exists.is_empty());
        assert!(out.to_string().contains("dll(x, nil, x, tmp)"), "{out}");
    }

    #[test]
    fn existentials_unify_with_each_other() {
        // u3 and u4 share values → one substituted by the other.
        let f = parse_formula("exists u3, u4. lseg(x, u3) * lseg(u4, y)").unwrap();
        let models = vec![model(&[("x", Val::Addr(l(1))), ("y", Val::Addr(l(5)))])];
        let mut i0 = Instantiation::new();
        i0.bind(sym("u3"), Val::Addr(l(3)));
        i0.bind(sym("u4"), Val::Addr(l(3)));
        let out = infer_pure(&f, &models, &[i0], &prefer(&["x", "y"]));
        assert_eq!(out.exists.len(), 1);
        assert!(
            out.to_string().contains("lseg(x, u3) * lseg(u3, y)"),
            "{out}"
        );
    }

    #[test]
    fn no_false_equalities() {
        let f = parse_formula("sll(x)").unwrap();
        let models = vec![
            model(&[("x", Val::Addr(l(1))), ("y", Val::Addr(l(1)))]),
            model(&[("x", Val::Addr(l(2))), ("y", Val::Addr(l(3)))]), // differs here
        ];
        let insts = vec![Instantiation::new(), Instantiation::new()];
        let out = infer_pure(&f, &models, &insts, &prefer(&["x", "y"]));
        assert!(out.pure.is_empty(), "{out}");
    }

    #[test]
    fn var_equal_nil() {
        let f = parse_formula("emp").unwrap();
        let models = vec![model(&[("x", Val::Nil), ("y", Val::Addr(l(1)))])];
        let out = infer_pure(&f, &models, &[Instantiation::new()], &prefer(&["x", "y"]));
        assert!(
            out.pure.contains(&PureAtom::Eq(Expr::var("x"), Expr::Nil)),
            "{out}"
        );
    }

    #[test]
    fn int_equalities() {
        let f = parse_formula("emp").unwrap();
        let models = vec![
            model(&[("n", Val::Int(5)), ("m", Val::Int(5))]),
            model(&[("n", Val::Int(9)), ("m", Val::Int(9))]),
        ];
        let out = infer_pure(
            &f,
            &models,
            &[Instantiation::new(), Instantiation::new()],
            &prefer(&["n", "m"]),
        );
        assert!(
            out.pure
                .contains(&PureAtom::Eq(Expr::var("m"), Expr::var("n")))
                || out
                    .pure
                    .contains(&PureAtom::Eq(Expr::var("n"), Expr::var("m"))),
            "{out}"
        );
    }
}
