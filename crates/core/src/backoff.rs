//! Jittered exponential backoff, shared by every reconnecting client.
//!
//! One schedule serves two callers today: the serve-protocol client's
//! `connect_retry` (racing a just-booted daemon) and the remote
//! entailment-cache client's reconnect loop (riding out a dead or
//! restarting cache server). Both grow `attempt` without bound — a long
//! deadline, or a cache server that stays down for hours, pushes the
//! counter to `u32::MAX` and parks it there — so the math here must be
//! total over the whole `u32` range.

use std::time::Duration;

/// First retry delay of the backoff schedule.
pub const RETRY_BASE: Duration = Duration::from_millis(10);
/// Ceiling on any single retry delay.
pub const RETRY_CAP: Duration = Duration::from_secs(1);

/// The backoff schedule: attempt `k` (0-based) sleeps a jittered delay
/// in `[cap/2, cap]`, where `cap = min(RETRY_BASE << k, RETRY_CAP)` —
/// exponential growth, bounded, with enough jitter (seeded per call)
/// that a stampede of clients racing one just-booted server spreads
/// out instead of reconnecting in lockstep. Pure deadline math, so the
/// schedule is unit-testable without sockets.
///
/// Total over all of `u32`: callers grow `attempt` with
/// `saturating_add`, so a long-lived retry loop eventually pins it at
/// `u32::MAX`, and the delay must stay a plain capped draw rather than
/// overflow. The shift is capped at the `u32` width and the jitter
/// mixing uses wrapping arithmetic throughout.
pub fn retry_delay(attempt: u32, seed: u64) -> Duration {
    // `1 << attempt` saturates once the shift leaves u32 range; capping
    // the shift keeps `checked_shl` meaningful and the cap at RETRY_CAP
    // for every attempt past the crossover.
    let shift = attempt.min(31);
    let cap = RETRY_BASE
        .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX))
        .min(RETRY_CAP);
    let cap_ns = cap.as_nanos() as u64;
    let half = cap_ns / 2;
    // xorshift over (seed, attempt): cheap, deterministic per input,
    // and well-spread across clients with distinct seeds. Widen before
    // the +1 — `attempt + 1` in u32 overflows at the saturated counter.
    let mut x = seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    Duration::from_nanos(half + x % (cap_ns - half).max(1))
}

/// A per-call jitter seed. `RandomState` is the standard library's
/// per-process randomly seeded hasher — no extra dependency, and two
/// clients (or two calls) get different schedules.
pub fn jitter_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delays_grow_exponentially_to_the_cap() {
        let seed = 0xdead_beef;
        for attempt in 0..40 {
            let cap = RETRY_BASE
                .saturating_mul(1u32.checked_shl(attempt.min(31)).unwrap_or(u32::MAX))
                .min(RETRY_CAP);
            let delay = retry_delay(attempt, seed);
            assert!(
                delay >= cap / 2 && delay <= cap,
                "attempt {attempt}: {delay:?} outside [{:?}, {cap:?}]",
                cap / 2
            );
        }
        // The cap binds: far-out attempts never exceed RETRY_CAP.
        assert!(retry_delay(63, seed) <= RETRY_CAP);
        assert!(retry_delay(63, seed) >= RETRY_CAP / 2);
    }

    #[test]
    fn retry_delay_is_total_at_the_saturated_attempt_counter() {
        // Callers grow `attempt` with saturating_add, so a retry loop
        // outlasting its deadline pins the counter at u32::MAX; the next
        // draw used to compute `attempt + 1` in u32 and panic in debug
        // builds. The delay must stay a plain capped draw.
        for seed in [0u64, 7, 42, u64::MAX] {
            let delay = retry_delay(u32::MAX, seed);
            assert!(
                delay >= RETRY_CAP / 2 && delay <= RETRY_CAP,
                "saturated attempt: {delay:?} outside [{:?}, {RETRY_CAP:?}]",
                RETRY_CAP / 2
            );
        }
        // The near-saturated neighborhood draws cleanly too.
        for attempt in [31u32, 32, 63, 64, u32::MAX - 1] {
            let _ = retry_delay(attempt, 1);
        }
    }

    #[test]
    fn retry_delays_are_deterministic_per_seed_and_jittered_across_seeds() {
        assert_eq!(retry_delay(5, 42), retry_delay(5, 42));
        // With the cap at 320ms for attempt 5, distinct seeds landing on
        // the exact same nanosecond would be a broken jitter.
        let distinct: std::collections::HashSet<Duration> = (0..64u64)
            .map(|seed| retry_delay(5, seed * 7 + 1))
            .collect();
        assert!(distinct.len() > 32, "jitter collapsed: {}", distinct.len());
    }

    #[test]
    fn retry_schedule_stays_within_a_deadline_by_clamping() {
        // connect_retry clamps each sleep to the remaining deadline;
        // simulate the same arithmetic: total sleep time never passes
        // the deadline no matter how many attempts fail.
        let deadline = Duration::from_millis(200);
        let mut elapsed = Duration::ZERO;
        let seed = 7;
        for attempt in 0..32 {
            if elapsed >= deadline {
                break;
            }
            let sleep = retry_delay(attempt, seed).min(deadline - elapsed);
            elapsed += sleep;
        }
        assert!(elapsed <= deadline);
        // And the schedule actually reaches the deadline (it does not
        // stall short of it with zero-length sleeps).
        assert!(elapsed >= deadline - Duration::from_nanos(1));
    }

    #[test]
    fn first_retry_is_prompt() {
        // A driver racing a just-booted server should not wait long on
        // its first retry: attempt 0 sleeps at most RETRY_BASE.
        for seed in 0..32 {
            assert!(retry_delay(0, seed) <= RETRY_BASE);
        }
    }
}
