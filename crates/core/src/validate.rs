//! Specification validation via the frame rule (§4.4).
//!
//! A precondition `P` (inferred at entry) and a postcondition `Q`
//! (inferred at an exit) form a valid triple `{P} C {Q}` only if the
//! memory *not* modeled by `P` at entry — the frame — is exactly the
//! memory not modeled by `Q` at the paired exit: the frame rule says `C`
//! must not have touched it. The pairing key is the activation id the
//! tracer stamped on each snapshot.

use std::collections::BTreeMap;

use sling_models::Heap;

use crate::report::Invariant;

/// Checks the frame condition between an entry invariant and an exit
/// invariant: for every activation observed at both locations, the
/// residual heaps must be identical.
///
/// Activations seen at only one side (e.g. an exit on a different branch)
/// do not participate. Returns `false` when no activation pairs up — an
/// unpaired spec cannot be validated.
pub fn validate_frame(pre: &Invariant, post: &Invariant) -> bool {
    let pre_by_act: BTreeMap<u64, &Heap> = pre
        .activations
        .iter()
        .copied()
        .zip(pre.residues.iter())
        .collect();
    let mut paired = 0usize;
    for (act, post_res) in post.activations.iter().zip(post.residues.iter()) {
        let Some(pre_res) = pre_by_act.get(act) else {
            continue;
        };
        paired += 1;
        if *pre_res != post_res {
            return false;
        }
    }
    paired > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::InvariantStats;
    use sling_lang::Location;
    use sling_logic::{SymHeap, Symbol};
    use sling_models::{HeapCell, Loc, Val};

    fn heap(locs: &[u64]) -> Heap {
        let mut h = Heap::new();
        for &n in locs {
            h.insert(
                Loc::new(n),
                HeapCell::new(Symbol::intern("N"), vec![Val::Nil]),
            );
        }
        h
    }

    fn inv(location: Location, pairs: &[(u64, Heap)]) -> Invariant {
        Invariant {
            location,
            formula: SymHeap::emp(),
            residues: pairs.iter().map(|(_, h)| h.clone()).collect(),
            activations: pairs.iter().map(|(a, _)| *a).collect(),
            stats: InvariantStats::default(),
            spurious: false,
            grade: crate::report::InvariantGrade::Ungraded,
        }
    }

    #[test]
    fn equal_frames_validate() {
        let pre = inv(Location::Entry, &[(1, heap(&[])), (2, heap(&[1]))]);
        let post = inv(Location::Exit(0), &[(1, heap(&[])), (2, heap(&[1]))]);
        assert!(validate_frame(&pre, &post));
    }

    #[test]
    fn different_frames_fail() {
        let pre = inv(Location::Entry, &[(1, heap(&[1]))]);
        let post = inv(Location::Exit(0), &[(1, heap(&[2]))]);
        assert!(!validate_frame(&pre, &post));
    }

    #[test]
    fn unpaired_activations_ignored() {
        // Activation 3 exits elsewhere; only activation 1 pairs.
        let pre = inv(Location::Entry, &[(1, heap(&[])), (3, heap(&[1]))]);
        let post = inv(Location::Exit(0), &[(1, heap(&[]))]);
        assert!(validate_frame(&pre, &post));
    }

    #[test]
    fn no_pairs_fails() {
        let pre = inv(Location::Entry, &[(1, heap(&[]))]);
        let post = inv(Location::Exit(0), &[(2, heap(&[]))]);
        assert!(!validate_frame(&pre, &post));
    }

    #[test]
    fn frame_contents_matter() {
        // Same domain, different cell contents: the frame was touched.
        let mut pre_h = Heap::new();
        pre_h.insert(
            Loc::new(1),
            HeapCell::new(Symbol::intern("N"), vec![Val::Nil]),
        );
        let mut post_h = Heap::new();
        post_h.insert(
            Loc::new(1),
            HeapCell::new(Symbol::intern("N"), vec![Val::Addr(Loc::new(2))]),
        );
        let pre = inv(Location::Entry, &[(1, pre_h)]);
        let post = inv(Location::Exit(0), &[(1, post_h)]);
        assert!(!validate_frame(&pre, &post));
    }
}
