//! Shared corpus fixtures for benches, integration tests, and examples.
//!
//! The "batch benchmark corpus" — four list functions (`reverse`,
//! `traverse`, `append`, `last`) over one node type, with `sll`/`lseg`
//! predicates — is used by the batch-throughput and warm-vs-cold
//! benchmarks, the parallel-batch and cache-persistence integration
//! tests, and the `warm_cache` example. [`ListCorpus`] is the single
//! definition they all build from, parameterized by node-type name so
//! concurrent consumers define distinct struct types (interned symbols
//! are global) and entailment caches never alias across fixtures.
//!
//! # Examples
//!
//! ```
//! use sling::Engine;
//! use sling_suite::fixtures::ListCorpus;
//!
//! let corpus = ListCorpus::new("DocNode");
//! let engine = Engine::builder()
//!     .program_source(&corpus.program())?
//!     .predicates_source(&corpus.predicates())?
//!     .build()?;
//! let batch = engine.analyze_all(&corpus.batch(1))?;
//! assert_eq!(batch.reports.len(), 4);
//! assert!(batch.invariant_count() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use sling::{AnalysisRequest, InputSpec, ListLayout, ValueSpec};
use sling_logic::Symbol;

/// The four-function list corpus, parameterized by node-type name.
#[derive(Debug, Clone)]
pub struct ListCorpus {
    node: String,
}

impl ListCorpus {
    /// A corpus over nodes of struct type `node` (pick a name unique to
    /// the consumer: struct types are globally interned).
    pub fn new(node: impl Into<String>) -> ListCorpus {
        ListCorpus { node: node.into() }
    }

    /// The node-type name this corpus was built with.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// MiniC source: `reverse` (loop head `@rev`), `traverse` (loop
    /// head `@walk`), and the recursive `append` and `last`.
    pub fn program(&self) -> String {
        let n = &self.node;
        format!(
            "
    struct {n} {{ next: {n}*; data: int; }}
    fn reverse(x: {n}*) -> {n}* {{
        var r: {n}* = null;
        while @rev (x != null) {{
            var t: {n}* = x->next;
            x->next = r;
            r = x;
            x = t;
        }}
        return r;
    }}
    fn traverse(x: {n}*) -> {n}* {{
        var c: {n}* = x;
        while @walk (c != null) {{
            c = c->next;
        }}
        return x;
    }}
    fn append(x: {n}*, y: {n}*) -> {n}* {{
        if (x == null) {{ return y; }}
        var t: {n}* = append(x->next, y);
        x->next = t;
        return x;
    }}
    fn last(x: {n}*) -> {n}* {{
        if (x == null) {{ return null; }}
        if (x->next == null) {{ return x; }}
        return last(x->next);
    }}"
        )
    }

    /// The predicate library the corpus is analyzed against: `sll` and
    /// `lseg` over the corpus node type.
    pub fn predicates(&self) -> String {
        let n = &self.node;
        format!(
            "
    pred sll(x: {n}*) := emp & x == nil
       | exists u, d. x -> {n}{{next: u, data: d}} * sll(u);
    pred lseg(x: {n}*, y: {n}*) := emp & x == y
       | exists u, d. x -> {n}{{next: u, data: d}} * lseg(u, y);"
        )
    }

    /// The node layout for spec-built inputs.
    pub fn layout(&self) -> ListLayout {
        ListLayout {
            ty: Symbol::intern(&self.node),
            nfields: 2,
            next: 0,
            prev: None,
            data: Some(1),
        }
    }

    /// A seeded one-list input spec (`n` nodes).
    pub fn one(&self, seed: u64, n: usize) -> InputSpec {
        InputSpec::seeded(seed).arg(ValueSpec::sll(self.layout(), n))
    }

    /// A seeded two-list input spec (`n` and `m` nodes).
    pub fn two(&self, seed: u64, n: usize, m: usize) -> InputSpec {
        InputSpec::seeded(seed)
            .arg(ValueSpec::sll(self.layout(), n))
            .arg(ValueSpec::sll(self.layout(), m))
    }

    /// The standard batch: per round, four requests across the four
    /// targets (ten inputs), with round-distinct seeds. One round is
    /// the integration-test workload; two rounds is the benchmark
    /// workload.
    pub fn batch(&self, rounds: u64) -> Vec<AnalysisRequest> {
        let mut out = Vec::new();
        for round in 0..rounds {
            let s = round * 100;
            out.push(AnalysisRequest::new("reverse").inputs([
                self.one(s + 1, 0),
                self.one(s + 2, 4),
                self.one(s + 3, 8),
            ]));
            out.push(
                AnalysisRequest::new("traverse").inputs([self.one(s + 4, 0), self.one(s + 5, 6)]),
            );
            out.push(AnalysisRequest::new("append").inputs([
                self.two(s + 6, 0, 2),
                self.two(s + 7, 3, 0),
                self.two(s + 8, 3, 3),
            ]));
            out.push(
                AnalysisRequest::new("last").inputs([self.one(s + 9, 1), self.one(s + 10, 5)]),
            );
        }
        out
    }
}
