//! Automated inferred-vs-documented property matching.
//!
//! The paper compared SLING's output to documented invariants by hand
//! (§5.3: "matched (syntactically or semantically equivalent) or ... were
//! stronger"). This module automates the decision with a *subsumption
//! matcher*: a documented formula `D` is **found** by an inferred formula
//! `I` when there is an injective assignment of `D`'s existentials to
//! `I`'s terms under which
//!
//! * every spatial atom of `D` matches a distinct spatial atom of `I`
//!   (same predicate / record type, arguments equal modulo `I`'s pure
//!   equalities), and
//! * every pure atom of `D` holds under `I`'s equality closure.
//!
//! Extra atoms in `I` are allowed — "stronger is ok".

use std::collections::BTreeMap;

use sling_logic::{Expr, PureAtom, SpatialAtom, SymHeap, Symbol};

/// A term in the equality closure: variables, nil, or integer literals.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Term {
    Nil,
    Var(Symbol),
    Int(i64),
}

impl Term {
    fn of(e: &Expr) -> Option<Term> {
        match e {
            Expr::Nil => Some(Term::Nil),
            Expr::Var(v) => Some(Term::Var(*v)),
            Expr::Int(k) => Some(Term::Int(*k)),
            _ => None,
        }
    }
}

/// Union-find over terms, seeded from an inferred formula's equalities.
#[derive(Debug, Clone, Default)]
struct Classes {
    parent: BTreeMap<Term, Term>,
}

impl Classes {
    fn find(&self, t: &Term) -> Term {
        let mut cur = t.clone();
        while let Some(p) = self.parent.get(&cur) {
            if *p == cur {
                break;
            }
            cur = p.clone();
        }
        cur
    }

    fn union(&mut self, a: Term, b: Term) {
        let ra = self.find(&a);
        let rb = self.find(&b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn same(&self, a: &Term, b: &Term) -> bool {
        self.find(a) == self.find(b)
    }
}

/// True if the inferred invariant subsumes the documented one.
///
/// # Examples
///
/// ```
/// use sling_logic::parse_formula;
/// use sling_suite::matcher::subsumes;
///
/// let inferred = parse_formula("sll(y) & x == nil & res == y").unwrap();
/// let documented = parse_formula("sll(res) & x == nil").unwrap();
/// assert!(subsumes(&inferred, &documented));
/// // An unrelated list proves nothing about `x`.
/// let unrelated = parse_formula("sll(y)").unwrap();
/// assert!(!subsumes(&unrelated, &parse_formula("sll(x)").unwrap()));
/// ```
pub fn subsumes(inferred: &SymHeap, documented: &SymHeap) -> bool {
    // Equality closure from the inferred pure part.
    let mut classes = Classes::default();
    for p in &inferred.pure {
        if let PureAtom::Eq(a, b) = p {
            if let (Some(ta), Some(tb)) = (Term::of(a), Term::of(b)) {
                classes.union(ta, tb);
            }
        }
    }

    // Candidate terms documented existentials may map to.
    let mut candidates: Vec<Term> = vec![Term::Nil];
    for v in inferred.all_vars() {
        candidates.push(Term::Var(v));
    }

    let doc_exists: Vec<Symbol> = documented.exists.clone();
    let mut binding: BTreeMap<Symbol, Term> = BTreeMap::new();
    let mut used = vec![false; inferred.spatial.len()];
    match_spatial(
        &documented.spatial,
        0,
        inferred,
        &classes,
        &doc_exists,
        &candidates,
        &mut binding,
        &mut used,
    ) && {
        // With the binding from the spatial match, every documented pure
        // atom must hold; remaining unbound existentials make equalities
        // satisfiable trivially only if one side binds the other.
        check_pure(documented, inferred, &classes, &mut binding)
    }
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn match_spatial(
    doc_atoms: &[SpatialAtom],
    idx: usize,
    inferred: &SymHeap,
    classes: &Classes,
    doc_exists: &[Symbol],
    candidates: &[Term],
    binding: &mut BTreeMap<Symbol, Term>,
    used: &mut [bool],
) -> bool {
    if idx == doc_atoms.len() {
        return true;
    }
    let doc = &doc_atoms[idx];
    for (i, inf) in inferred.spatial.iter().enumerate() {
        if used[i] {
            continue;
        }
        let saved = binding.clone();
        if unify_atom(doc, inf, classes, doc_exists, binding) {
            used[i] = true;
            if match_spatial(
                doc_atoms,
                idx + 1,
                inferred,
                classes,
                doc_exists,
                candidates,
                binding,
                used,
            ) {
                return true;
            }
            used[i] = false;
        }
        *binding = saved;
    }
    // Composition lemma: a documented whole-list atom `U(r)` is also
    // entailed by an inferred segment chain `S(r, m) * ... * U(m')` or
    // `S(r, .., nil)` (e.g. `lseg(x, y) * sll(y) ⊨ sll(x)`). The paper's
    // manual comparison accepts such stronger results; segments arise
    // whenever SplitHeap stops at another stack variable.
    if let SpatialAtom::Pred { name, args } = doc {
        if args.len() == 1 {
            if let Some(start) = Term::of(&args[0]) {
                let chains = chain_closures(*name, &classes.find(&start), inferred, classes, used);
                for chain in chains {
                    let mut used2 = used.to_vec();
                    for i in &chain {
                        used2[*i] = true;
                    }
                    if match_spatial(
                        doc_atoms,
                        idx + 1,
                        inferred,
                        classes,
                        doc_exists,
                        candidates,
                        binding,
                        &mut used2,
                    ) {
                        used.copy_from_slice(&used2);
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Finds sets of inferred atom indices forming a segment chain from
/// `start` to `nil` or to a whole-list atom named `unary`. Binary atoms
/// `S(a, b)` are treated as segments (sound for this corpus: every binary
/// predicate is the segment form of its unary sibling over the same
/// record type).
fn chain_closures(
    unary: Symbol,
    start: &Term,
    inferred: &SymHeap,
    classes: &Classes,
    used: &[bool],
) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    // `U(nil)` holds in the empty heap: an inferred `x == nil` witnesses
    // the documented `U(x)` with no atoms consumed.
    if classes.same(start, &Term::Nil) {
        out.push(Vec::new());
    }
    let mut path: Vec<usize> = Vec::new();
    fn rec(
        unary: Symbol,
        at: &Term,
        inferred: &SymHeap,
        classes: &Classes,
        used: &[bool],
        path: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        // Terminator: the chain has reached nil.
        if !path.is_empty() && classes.same(at, &Term::Nil) {
            out.push(path.clone());
            return;
        }
        for (i, atom) in inferred.spatial.iter().enumerate() {
            if used[i] || path.contains(&i) {
                continue;
            }
            if let SpatialAtom::Pred { name, args } = atom {
                // Terminator: a whole-list atom at the current point.
                if *name == unary && args.len() == 1 && !path.is_empty() {
                    if let Some(t) = Term::of(&args[0]) {
                        if classes.same(&t, at) {
                            path.push(i);
                            out.push(path.clone());
                            path.pop();
                        }
                    }
                }
                // Extension: a binary segment starting here.
                if args.len() == 2 {
                    if let (Some(a), Some(b)) = (Term::of(&args[0]), Term::of(&args[1])) {
                        if classes.same(&a, at) {
                            path.push(i);
                            rec(unary, &classes.find(&b), inferred, classes, used, path, out);
                            path.pop();
                        }
                    }
                }
            }
        }
    }
    rec(unary, start, inferred, classes, used, &mut path, &mut out);
    out
}

fn unify_atom(
    doc: &SpatialAtom,
    inf: &SpatialAtom,
    classes: &Classes,
    doc_exists: &[Symbol],
    binding: &mut BTreeMap<Symbol, Term>,
) -> bool {
    match (doc, inf) {
        (
            SpatialAtom::Pred { name: dn, args: da },
            SpatialAtom::Pred {
                name: in_,
                args: ia,
            },
        ) => {
            dn == in_ && da.len() == ia.len() && {
                da.iter()
                    .zip(ia)
                    .all(|(d, i)| unify_arg(d, i, classes, doc_exists, binding))
            }
        }
        (
            SpatialAtom::PointsTo {
                root: dr,
                ty: dt,
                fields: df,
            },
            SpatialAtom::PointsTo {
                root: ir,
                ty: it,
                fields: if_,
            },
        ) => {
            dt == it
                && unify_arg(dr, ir, classes, doc_exists, binding)
                && df.iter().all(|dfa| {
                    if_.iter().any(|ifa| {
                        ifa.name == dfa.name
                            && unify_arg(&dfa.value, &ifa.value, classes, doc_exists, binding)
                    })
                })
        }
        _ => false,
    }
}

fn unify_arg(
    doc: &Expr,
    inf: &Expr,
    classes: &Classes,
    doc_exists: &[Symbol],
    binding: &mut BTreeMap<Symbol, Term>,
) -> bool {
    let (Some(dt), Some(it)) = (Term::of(doc), Term::of(inf)) else {
        return doc == inf; // arithmetic args: require syntactic equality
    };
    match &dt {
        Term::Var(v) if doc_exists.contains(v) => {
            let rep = classes.find(&it);
            match binding.get(v) {
                Some(bound) => classes.same(bound, &rep),
                None => {
                    binding.insert(*v, rep);
                    true
                }
            }
        }
        _ => classes.same(&dt, &it),
    }
}

fn check_pure(
    documented: &SymHeap,
    _inferred: &SymHeap,
    classes: &Classes,
    binding: &mut BTreeMap<Symbol, Term>,
) -> bool {
    let doc_exists = &documented.exists;
    let resolve = |e: &Expr, binding: &BTreeMap<Symbol, Term>| -> Option<Term> {
        let t = Term::of(e)?;
        match &t {
            Term::Var(v) if doc_exists.contains(v) => binding.get(v).cloned(),
            _ => Some(classes.find(&t)),
        }
    };
    for atom in &documented.pure {
        match atom {
            PureAtom::Eq(a, b) => {
                match (resolve(a, binding), resolve(b, binding)) {
                    (Some(ta), Some(tb)) => {
                        if !classes.same(&ta, &tb) {
                            return false;
                        }
                    }
                    // One side is an unbound documented existential:
                    // bind it to the other side's class.
                    (Some(ta), None) => {
                        if let Expr::Var(v) = b {
                            binding.insert(*v, ta);
                        } else {
                            return false;
                        }
                    }
                    (None, Some(tb)) => {
                        if let Expr::Var(v) = a {
                            binding.insert(*v, tb);
                        } else {
                            return false;
                        }
                    }
                    (None, None) => return false,
                }
            }
            // Non-equality documented atoms: accepted only when the
            // documented property is data-aware and the inferred formula
            // carries the same predicate structure; inferred invariants
            // do not produce standalone order atoms, so require nothing.
            PureAtom::Neq(..) | PureAtom::Lt(..) | PureAtom::Le(..) => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_logic::parse_formula;

    fn f(s: &str) -> SymHeap {
        parse_formula(s).unwrap()
    }

    #[test]
    fn identical_formulas_match() {
        assert!(subsumes(&f("sll(x)"), &f("sll(x)")));
    }

    #[test]
    fn equality_closure_bridges_vars() {
        assert!(subsumes(&f("sll(y) & res == y"), &f("sll(res)")));
        assert!(subsumes(
            &f("sll(y) & res == y & x == nil"),
            &f("sll(res) & x == nil")
        ));
    }

    #[test]
    fn missing_atom_fails() {
        assert!(!subsumes(&f("sll(x)"), &f("sll(x) * sll(y)")));
    }

    #[test]
    fn extra_atoms_allowed() {
        assert!(subsumes(&f("sll(x) * sll(y) & res == x"), &f("sll(x)")));
    }

    #[test]
    fn documented_existentials_unify() {
        let inferred = f("exists u1, u2. dll(x, u1, u2, nil) & res == x");
        let documented = f("exists p, u. dll(x, p, u, nil)");
        assert!(subsumes(&inferred, &documented));
    }

    #[test]
    fn existential_consistency_enforced() {
        // Documented reuses `u` in two places; inferred has different
        // values there.
        let inferred = f("exists a, b. lseg(x, a) * lseg(b, y)");
        let documented = f("exists u. lseg(x, u) * lseg(u, y)");
        assert!(!subsumes(&inferred, &documented));
        let inferred_ok = f("exists a. lseg(x, a) * lseg(a, y)");
        assert!(subsumes(&inferred_ok, &documented));
    }

    #[test]
    fn points_to_fields_match_by_name() {
        let inferred = f("p -> Cell{next: q, data: 42}");
        assert!(subsumes(
            &inferred,
            &f("exists u. p -> Cell{next: u, data: 42}")
        ));
        assert!(!subsumes(&inferred, &f("p -> Cell{next: nil, data: 42}")));
    }

    #[test]
    fn wrong_predicate_name_fails() {
        assert!(!subsumes(&f("tree(x)"), &f("sll(x)")));
    }

    #[test]
    fn composition_lemma_accepts_segment_chains() {
        // lseg(x, nil) is exactly a whole list.
        assert!(subsumes(&f("lseg(x, nil)"), &f("sll(x)")));
        // lseg(x, y) * sll(y) composes to sll(x).
        assert!(subsumes(&f("lseg(x, y) * sll(y) & res == x"), &f("sll(x)")));
        // ... and reaches the documented atom through equalities.
        assert!(subsumes(
            &f("lseg(x, y) * sll(y) & res == x"),
            &f("sll(res)")
        ));
        // A segment that stops short is not a whole list.
        assert!(!subsumes(&f("lseg(x, y)"), &f("sll(x)")));
    }

    #[test]
    fn pure_equality_must_hold() {
        assert!(!subsumes(&f("sll(x)"), &f("sll(x) & x == nil")));
        assert!(subsumes(&f("sll(x) & x == nil"), &f("sll(x) & x == nil")));
    }

    #[test]
    fn emp_documented_matches_anything_with_pure() {
        assert!(subsumes(
            &f("emp & x == nil & res == nil"),
            &f("emp & x == nil")
        ));
        assert!(!subsumes(&f("emp & res == nil"), &f("emp & x == nil")));
    }
}
