//! Benchmark program descriptors.
//!
//! Every corpus entry carries its MiniC source, the function SLING
//! analyzes, how to generate test inputs (the paper's §5.2 setup: `nil`
//! plus random size-10 structures, all combinations), its documented
//! ("ground truth") properties for the Table 2 comparison, and the
//! markers Table 1 annotates programs with (seeded bugs `∗`, freeing
//! programs in bold, hard-to-reach locations in italics).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sling::{InputSource, InputSpec, ValueSpec};
use sling_lang::{
    gen_circular_list, gen_list, gen_tree, DataOrder, ListLayout, RtHeap, TreeKind, TreeLayout,
};
use sling_models::Val;

/// Table 1 / Table 2 category (one per row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Standard singly linked lists.
    Sll,
    /// Sorted lists.
    SortedList,
    /// Doubly linked lists.
    Dll,
    /// Circular lists.
    CircularList,
    /// Binary search trees.
    BinarySearchTree,
    /// AVL trees.
    AvlTree,
    /// Priority trees (heap-ordered).
    PriorityTree,
    /// Red-black trees.
    RedBlackTree,
    /// Tree traversals.
    TreeTraversal,
    /// glib GList used doubly.
    GlibDll,
    /// glib GSList (singly linked).
    GlibSll,
    /// OpenBSD queue macros.
    OpenBsdQueue,
    /// Linux-style memory regions.
    MemoryRegion,
    /// Binomial heaps.
    BinomialHeap,
    /// SV-COMP heap programs (master/slave nested lists).
    SvComp,
    /// GRASShopper singly linked, iterative.
    GrasshopperSllIter,
    /// GRASShopper singly linked, recursive.
    GrasshopperSllRec,
    /// GRASShopper doubly linked.
    GrasshopperDll,
    /// GRASShopper sorted lists.
    GrasshopperSorted,
    /// AFWP singly linked.
    AfwpSll,
    /// AFWP doubly linked.
    AfwpDll,
    /// Cyclist benchmarks (Brotherston et al.).
    Cyclist,
}

impl Category {
    /// The Table 1 row label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Sll => "SLL",
            Category::SortedList => "Sorted List",
            Category::Dll => "DLL",
            Category::CircularList => "Circular List",
            Category::BinarySearchTree => "Binary Search Tree",
            Category::AvlTree => "AVL Tree",
            Category::PriorityTree => "Priority Tree",
            Category::RedBlackTree => "Red-black Tree",
            Category::TreeTraversal => "Tree Traversal",
            Category::GlibDll => "glib/glist_DLL",
            Category::GlibSll => "glib/glist_SLL",
            Category::OpenBsdQueue => "OpenBSD Queue",
            Category::MemoryRegion => "Memory Region",
            Category::BinomialHeap => "Binomial Heap",
            Category::SvComp => "SV-COMP",
            Category::GrasshopperSllIter => "GRASShopper_SLL (Iter)",
            Category::GrasshopperSllRec => "GRASShopper_SLL (Rec)",
            Category::GrasshopperDll => "GRASShopper_DLL",
            Category::GrasshopperSorted => "GRASShopper_SortedList",
            Category::AfwpSll => "AFWP_SLL",
            Category::AfwpDll => "AFWP_DLL",
            Category::Cyclist => "Cyclist",
        }
    }

    /// All categories in Table 1 row order.
    pub fn all() -> &'static [Category] {
        &[
            Category::Sll,
            Category::SortedList,
            Category::Dll,
            Category::CircularList,
            Category::BinarySearchTree,
            Category::AvlTree,
            Category::PriorityTree,
            Category::RedBlackTree,
            Category::TreeTraversal,
            Category::GlibDll,
            Category::GlibSll,
            Category::OpenBsdQueue,
            Category::MemoryRegion,
            Category::BinomialHeap,
            Category::SvComp,
            Category::GrasshopperSllIter,
            Category::GrasshopperSllRec,
            Category::GrasshopperDll,
            Category::GrasshopperSorted,
            Category::AfwpSll,
            Category::AfwpDll,
            Category::Cyclist,
        ]
    }
}

/// One candidate value for a function argument.
#[derive(Debug, Clone, Copy)]
pub enum ArgCand {
    /// The null pointer.
    Nil,
    /// A random (possibly sorted) list of the given size.
    List {
        /// Node layout.
        layout: ListLayout,
        /// Payload ordering.
        order: DataOrder,
        /// Node count.
        size: usize,
        /// Close the cycle.
        circular: bool,
    },
    /// A random tree of the given size and kind.
    Tree {
        /// Node layout.
        layout: TreeLayout,
        /// Shape discipline.
        kind: TreeKind,
        /// Node count.
        size: usize,
    },
    /// An integer constant.
    Int(i64),
    /// Custom generator (for nested / bespoke structures).
    Custom(fn(&mut RtHeap, &mut StdRng) -> Val),
}

impl ArgCand {
    fn build(&self, heap: &mut RtHeap, rng: &mut StdRng) -> Val {
        match self {
            ArgCand::Nil => Val::Nil,
            ArgCand::List {
                layout,
                order,
                size,
                circular,
            } => {
                if *circular {
                    gen_circular_list(heap, layout, *size, *order, rng)
                } else {
                    gen_list(heap, layout, *size, *order, rng)
                }
            }
            ArgCand::Tree { layout, kind, size } => gen_tree(heap, layout, *size, *kind, rng),
            ArgCand::Int(k) => Val::Int(*k),
            ArgCand::Custom(f) => f(heap, rng),
        }
    }

    /// The equivalent declarative [`ValueSpec`], when one exists.
    /// [`ArgCand::Custom`] generators have no declarative form. The
    /// mapping draws from the PRNG exactly as [`ArgCand::build`] does,
    /// so spec-built inputs are bit-identical to closure-built ones.
    fn spec(&self) -> Option<ValueSpec> {
        match self {
            ArgCand::Nil => Some(ValueSpec::Nil),
            ArgCand::Int(k) => Some(ValueSpec::Int(*k)),
            ArgCand::List {
                layout,
                order,
                size,
                circular,
            } => Some(ValueSpec::List {
                layout: *layout,
                len: *size,
                order: *order,
                circular: *circular,
            }),
            ArgCand::Tree { layout, kind, size } => Some(ValueSpec::Tree {
                layout: *layout,
                size: *size,
                kind: *kind,
            }),
            ArgCand::Custom(_) => None,
        }
    }
}

/// Candidate sets per parameter; inputs are the cartesian product.
pub type ArgSpec = Vec<Vec<ArgCand>>;

/// The paper's default structure size.
pub const DEFAULT_SIZE: usize = 10;

/// Shorthand: `nil` plus random structures of sizes 1 and
/// [`DEFAULT_SIZE`].
pub fn nil_or(make: fn(usize) -> ArgCand) -> Vec<ArgCand> {
    vec![ArgCand::Nil, make(1), make(DEFAULT_SIZE)]
}

/// Shorthand: random structures of sizes 1 and [`DEFAULT_SIZE`] (no nil).
pub fn nonnil(make: fn(usize) -> ArgCand) -> Vec<ArgCand> {
    vec![make(1), make(DEFAULT_SIZE)]
}

/// Shorthand: a few integer key candidates.
pub fn int_keys() -> Vec<ArgCand> {
    vec![ArgCand::Int(0), ArgCand::Int(7), ArgCand::Int(55)]
}

/// A documented ("ground truth") property, used as Table 2's Total
/// column and by the matcher.
#[derive(Debug, Clone)]
pub enum Property {
    /// Function specification: the precondition (entry) and one
    /// postcondition per exit (index = exit id; programs document the
    /// relevant exits only).
    Spec {
        /// Formula expected at entry.
        pre: &'static str,
        /// `(exit index, formula)` pairs.
        posts: &'static [(usize, &'static str)],
    },
    /// Loop invariant at the named loop head.
    LoopInv {
        /// The loop label.
        label: &'static str,
        /// Formula expected at every head visit.
        formula: &'static str,
    },
}

/// Why a Table 1 program is marked `∗` (produces no/partial traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugKind {
    /// Crashes with a memory fault on (nearly) every input.
    Segfault,
    /// Loops forever on some inputs.
    NonTermination,
}

/// One corpus program.
#[derive(Debug, Clone)]
pub struct Bench {
    /// `category/name` identifier.
    pub name: &'static str,
    /// Table 1 row.
    pub category: Category,
    /// MiniC source text.
    pub source: &'static str,
    /// Function analyzed by SLING.
    pub target: &'static str,
    /// Input candidates per parameter.
    pub args: ArgSpec,
    /// Documented properties (Table 2 ground truth).
    pub properties: Vec<Property>,
    /// Seeded bug marker (the `∗` programs).
    pub bug: Option<BugKind>,
    /// The program frees memory its callers can still reach (bold rows:
    /// the LLDB quirk makes their invariants spurious).
    pub frees: bool,
    /// Some locations are unreachable under random inputs (italic rows).
    pub hard_to_reach: bool,
}

impl Bench {
    /// Creates a descriptor with no properties or markers.
    pub fn new(
        name: &'static str,
        category: Category,
        source: &'static str,
        target: &'static str,
        args: ArgSpec,
    ) -> Bench {
        Bench {
            name,
            category,
            source,
            target,
            args,
            properties: Vec::new(),
            bug: None,
            frees: false,
            hard_to_reach: false,
        }
    }

    /// Adds a spec property.
    pub fn spec(mut self, pre: &'static str, posts: &'static [(usize, &'static str)]) -> Bench {
        self.properties.push(Property::Spec { pre, posts });
        self
    }

    /// Adds a loop-invariant property.
    pub fn loop_inv(mut self, label: &'static str, formula: &'static str) -> Bench {
        self.properties.push(Property::LoopInv { label, formula });
        self
    }

    /// Marks a seeded bug.
    pub fn bug(mut self, kind: BugKind) -> Bench {
        self.bug = Some(kind);
        self
    }

    /// Marks the program as freeing reachable memory.
    pub fn frees(mut self) -> Bench {
        self.frees = true;
        self
    }

    /// Marks locations as hard to reach with random inputs.
    pub fn hard_to_reach(mut self) -> Bench {
        self.hard_to_reach = true;
        self
    }

    /// Lines of MiniC code (non-empty, non-comment), the Table 1 LoC
    /// column.
    pub fn loc(&self) -> usize {
        self.source
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count()
    }

    /// Materializes the test inputs: the cartesian product of the
    /// argument candidates, each built with a deterministic RNG derived
    /// from `seed`. Combinations whose candidates all have a declarative
    /// form become [`InputSpec`]s (describable, replayable, `Send`);
    /// combinations involving [`ArgCand::Custom`] fall back to an
    /// equivalent custom closure. Both paths draw from the same seeded
    /// PRNG stream, so the generated structures are identical.
    pub fn inputs(&self, seed: u64) -> Vec<InputSource> {
        let mut combos: Vec<Vec<ArgCand>> = vec![Vec::new()];
        for cands in &self.args {
            let mut next = Vec::with_capacity(combos.len() * cands.len());
            for combo in &combos {
                for cand in cands {
                    let mut c = combo.clone();
                    c.push(*cand);
                    next.push(c);
                }
            }
            combos = next;
        }
        combos
            .into_iter()
            .enumerate()
            .map(|(i, combo)| {
                let combo_seed = seed.wrapping_add(i as u64 * 7919);
                match combo.iter().map(ArgCand::spec).collect::<Option<Vec<_>>>() {
                    Some(args) => InputSpec::seeded(combo_seed).args(args).into(),
                    None => InputSource::custom(move |heap: &mut RtHeap| {
                        let mut rng = StdRng::seed_from_u64(combo_seed);
                        combo.iter().map(|c| c.build(heap, &mut rng)).collect()
                    }),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_logic::Symbol;

    fn layout() -> ListLayout {
        ListLayout {
            ty: Symbol::intern("SNode"),
            nfields: 1,
            next: 0,
            prev: None,
            data: None,
        }
    }

    #[test]
    fn cartesian_inputs() {
        let b = Bench::new(
            "t/x",
            Category::Sll,
            "struct SNode { next: SNode*; } fn id(x: SNode*) -> SNode* { return x; }",
            "id",
            vec![
                vec![
                    ArgCand::Nil,
                    ArgCand::List {
                        layout: layout(),
                        order: DataOrder::Random,
                        size: 3,
                        circular: false,
                    },
                ],
                vec![ArgCand::Int(1), ArgCand::Int(2), ArgCand::Int(3)],
            ],
        );
        let inputs = b.inputs(42);
        assert_eq!(inputs.len(), 6);
        assert!(
            inputs.iter().all(|i| matches!(i, InputSource::Spec(_))),
            "declarative candidates become specs"
        );
        let mut heap = RtHeap::new();
        let args = inputs[1].build(&mut heap);
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn loc_counts_nonempty() {
        let b = Bench::new(
            "t/x",
            Category::Sll,
            "line1\n\n// comment\nline2\n",
            "id",
            vec![],
        );
        assert_eq!(b.loc(), 2);
    }

    #[test]
    fn builders_are_deterministic() {
        let b = Bench::new(
            "t/x",
            Category::Sll,
            "struct SNode { next: SNode*; }",
            "id",
            vec![vec![ArgCand::List {
                layout: layout(),
                order: DataOrder::Random,
                size: 5,
                circular: false,
            }]],
        );
        let mk = || {
            let mut heap = RtHeap::new();
            let v = b.inputs(7)[0].build(&mut heap);
            format!("{:?} {}", v, heap.live())
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn custom_candidates_fall_back_to_closures() {
        let b = Bench::new(
            "t/x",
            Category::Sll,
            "struct SNode { next: SNode*; }",
            "id",
            vec![vec![ArgCand::Custom(|_, _| Val::Int(9))]],
        );
        let inputs = b.inputs(0);
        assert!(matches!(inputs[0], InputSource::Custom(_)));
        let mut heap = RtHeap::new();
        assert_eq!(inputs[0].build(&mut heap), vec![Val::Int(9)]);
    }
}
