//! Priority-tree (heap-ordered tree) programs (Table 1 row
//! "Priority Tree", 4 programs).

use rand::Rng;

use sling_lang::RtHeap;
use sling_logic::Symbol;
use sling_models::Val;

use crate::program::{int_keys, ArgCand, Bench, Category};

/// Builds a heap-ordered tree: every child key ≤ its parent's.
fn gen_ptree(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng) -> Val {
    fn build(heap: &mut RtHeap, rng: &mut rand::rngs::StdRng, top: i64, size: usize) -> Val {
        if size == 0 {
            return Val::Nil;
        }
        let key = rng.gen_range(0..=top);
        let left_n = rng.gen_range(0..size);
        let right_n = size - 1 - left_n;
        let l = build(heap, rng, key, left_n);
        let r = build(heap, rng, key, right_n);
        Val::Addr(heap.alloc(Symbol::intern("PNode"), vec![l, r, Val::Int(key)]))
    }
    build(heap, rng, 100, 8)
}

fn ptree_inputs() -> Vec<ArgCand> {
    vec![ArgCand::Nil, ArgCand::Custom(gen_ptree)]
}

const DEL: &str = r#"
struct PNode { left: PNode*; right: PNode*; data: int; }
fn meld(a: PNode*, b: PNode*) -> PNode* {
    if (a == null) {
        return b;
    }
    if (b == null) {
        return a;
    }
    if (a->data >= b->data) {
        a->right = meld(a->right, b);
        return a;
    }
    b->right = meld(a, b->right);
    return b;
}
fn del(t: PNode*, k: int) -> PNode* {
    if (t == null) {
        return null;
    }
    if (t->data == k) {
        var merged: PNode* = meld(t->left, t->right);
        free(t);
        return merged;
    }
    t->left = del(t->left, k);
    t->right = del(t->right, k);
    return t;
}
"#;

const FIND: &str = r#"
struct PNode { left: PNode*; right: PNode*; data: int; }
fn find(t: PNode*, k: int) -> PNode* {
    if (t == null) {
        return null;
    }
    if (t->data == k) {
        return t;
    }
    if (t->data < k) {
        return null;
    }
    var l: PNode* = find(t->left, k);
    if (l != null) {
        return l;
    }
    return find(t->right, k);
}
"#;

const INSERT: &str = r#"
struct PNode { left: PNode*; right: PNode*; data: int; }
fn insert(t: PNode*, k: int) -> PNode* {
    var n: PNode* = new PNode { data: k };
    if (t == null) {
        return n;
    }
    if (k >= t->data) {
        n->left = t;
        return n;
    }
    t->left = insert(t->left, k);
    return t;
}
"#;

const RM_ROOT: &str = r#"
struct PNode { left: PNode*; right: PNode*; data: int; }
fn meld(a: PNode*, b: PNode*) -> PNode* {
    if (a == null) {
        return b;
    }
    if (b == null) {
        return a;
    }
    if (a->data >= b->data) {
        a->right = meld(a->right, b);
        return a;
    }
    b->right = meld(a, b->right);
    return b;
}
fn rmRoot(t: PNode*) -> PNode* {
    if (t == null) {
        return null;
    }
    var merged: PNode* = meld(t->left, t->right);
    free(t);
    return merged;
}
"#;

/// The four priority-tree benchmarks.
pub fn benches() -> Vec<Bench> {
    vec![
        Bench::new(
            "priority/del",
            Category::PriorityTree,
            DEL,
            "del",
            vec![ptree_inputs(), int_keys()],
        )
        .spec(
            "exists top. ptree(t, top)",
            &[(0, "emp & t == nil & res == nil")],
        )
        .frees(),
        Bench::new(
            "priority/find",
            Category::PriorityTree,
            FIND,
            "find",
            vec![ptree_inputs(), int_keys()],
        )
        .spec(
            "exists top. ptree(t, top)",
            &[
                (0, "emp & t == nil & res == nil"),
                (1, "exists top. ptree(t, top) & res == t"),
            ],
        ),
        Bench::new(
            "priority/insert",
            Category::PriorityTree,
            INSERT,
            "insert",
            vec![ptree_inputs(), int_keys()],
        )
        .spec(
            "exists top. ptree(t, top)",
            &[(
                0,
                "exists d. res -> PNode{left: nil, right: nil, data: d} & t == nil",
            )],
        ),
        Bench::new(
            "priority/rmRoot",
            Category::PriorityTree,
            RM_ROOT,
            "rmRoot",
            vec![ptree_inputs()],
        )
        .spec(
            "exists top. ptree(t, top)",
            &[(0, "emp & t == nil & res == nil")],
        )
        .frees(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_lang::{check_program, parse_program};

    #[test]
    fn sources_compile() {
        for b in benches() {
            let p =
                parse_program(b.source).unwrap_or_else(|e| panic!("{}: parse error: {e}", b.name));
            check_program(&p).unwrap_or_else(|e| panic!("{}: type error: {e}", b.name));
        }
    }

    #[test]
    fn count_matches_table1() {
        assert_eq!(benches().len(), 4);
    }

    #[test]
    fn ptree_generator_is_heap_ordered() {
        use rand::SeedableRng;
        let mut heap = RtHeap::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let root = gen_ptree(&mut heap, &mut rng);
        fn check(heap: &RtHeap, v: Val, top: i64) {
            if let Val::Addr(l) = v {
                let c = heap.live().get(l).unwrap();
                let k = c.fields[2].as_int().unwrap();
                assert!(k <= top);
                check(heap, c.fields[0], k);
                check(heap, c.fields[1], k);
            }
        }
        check(&heap, root, 100);
    }
}
